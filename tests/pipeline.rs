//! End-to-end integration tests: workload generation → deadline
//! distribution → list scheduling → lateness analysis, across metrics,
//! estimation strategies, system sizes and seeds.

use platform::{Pinning, Platform, ProcessorId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{BusModel, LatenessReport, ListScheduler};
use slicing::{CommEstimate, MetricKind, Slicer};
use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
use taskgraph::TaskGraph;

fn paper_graph(seed: u64, variation: ExecVariation) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&WorkloadSpec::paper(variation), &mut rng).expect("valid spec")
}

#[test]
fn full_pipeline_is_sound_for_every_metric_and_estimate() {
    let metrics = [
        MetricKind::norm(),
        MetricKind::pure(),
        MetricKind::thres(1.0),
        MetricKind::thres(4.0),
        MetricKind::adapt(),
    ];
    let estimates = [CommEstimate::Ccne, CommEstimate::Ccaa];
    for seed in 0..4 {
        let graph = paper_graph(seed, ExecVariation::Mdet);
        for nproc in [2, 5, 16] {
            let platform = Platform::paper(nproc).unwrap();
            for metric in metrics {
                for estimate in &estimates {
                    let assignment = Slicer::new(metric)
                        .with_estimate(estimate.clone())
                        .distribute(&graph, &platform)
                        .unwrap();
                    // Structural soundness is guaranteed whenever no path
                    // window was inverted; inversions only occur on
                    // overconstrained instances (e.g. extreme surplus
                    // factors on tight deadlines) and are reported.
                    let report = assignment.validate(&graph);
                    assert!(
                        report.is_ok() || assignment.inverted_paths() > 0,
                        "seed {seed} nproc {nproc} {} {}: {report}",
                        metric.label(),
                        estimate.label()
                    );
                    let schedule = ListScheduler::new()
                        .schedule(&graph, &platform, &assignment, &Pinning::new())
                        .unwrap();
                    let violations = schedule.validate(&graph, &platform, &Pinning::new(), false);
                    assert!(
                        violations.is_empty(),
                        "seed {seed} nproc {nproc} {}: {violations:?}",
                        metric.label()
                    );
                    // Lateness analysis is total and self-consistent.
                    let lateness = LatenessReport::new(&graph, &assignment, &schedule);
                    assert_eq!(
                        lateness.lateness(lateness.critical_subtask()),
                        lateness.max_lateness()
                    );
                }
            }
        }
    }
}

#[test]
fn windows_partition_end_to_end_deadlines_on_critical_paths() {
    // Along every edge the producer's window ends no later than the
    // consumer's begins whenever the instance was not overconstrained
    // (no inverted path windows); most paper workloads are in that regime.
    let mut inversion_free = 0;
    let total = 8;
    for seed in 0..total {
        let graph = paper_graph(seed, ExecVariation::Hdet);
        let platform = Platform::paper(4).unwrap();
        let assignment = Slicer::ast_adapt().distribute(&graph, &platform).unwrap();
        if assignment.inverted_paths() > 0 {
            continue;
        }
        inversion_free += 1;
        for eid in graph.edge_ids() {
            let e = graph.edge(eid);
            assert!(
                assignment.absolute_deadline(e.src()) <= assignment.release(e.dst()),
                "seed {seed} edge {eid}"
            );
        }
    }
    assert!(
        inversion_free * 2 >= total,
        "most paper workloads must distribute without inverted windows \
         ({inversion_free}/{total})"
    );
}

#[test]
fn strict_locality_baseline_reproduces_bst_setting() {
    // With a total pinning and the KNOWN estimation strategy, the distributor
    // sees real communication costs — the original BST setting. The
    // resulting schedule must still be sound, and local messages must be
    // free (no materialized windows for same-processor pairs).
    let graph = paper_graph(13, ExecVariation::Ldet);
    let platform = Platform::paper(4).unwrap();

    // Pin every subtask round-robin: locality constraints are fully strict.
    let mut pins = Pinning::new();
    for (i, id) in graph.subtask_ids().enumerate() {
        pins.pin(id, ProcessorId::new((i % 4) as u32)).unwrap();
    }
    assert!(pins.is_total_for(&graph));

    let assignment = Slicer::bst_pure()
        .with_estimate(CommEstimate::Known(pins.clone()))
        .distribute(&graph, &platform)
        .unwrap();
    assert!(assignment.validate(&graph).is_ok() || assignment.inverted_paths() > 0);

    for eid in graph.edge_ids() {
        let e = graph.edge(eid);
        let same = pins.processor_for(e.src()) == pins.processor_for(e.dst());
        if same {
            assert!(
                assignment.comm_window(eid).is_none(),
                "local message {eid} must be transparent"
            );
        } else {
            assert!(
                assignment.comm_window(eid).is_some(),
                "remote message {eid} must be windowed"
            );
        }
    }

    let schedule = ListScheduler::new()
        .schedule(&graph, &platform, &assignment, &pins)
        .unwrap();
    assert!(schedule
        .validate(&graph, &platform, &pins, false)
        .is_empty());
    // Every subtask sits on its pinned processor.
    for id in graph.subtask_ids() {
        assert_eq!(Some(schedule.processor(id)), pins.processor_for(id));
    }
}

#[test]
fn contention_model_produces_exclusive_bus_schedules() {
    for seed in [3, 17] {
        let graph = paper_graph(seed, ExecVariation::Mdet);
        let platform = Platform::paper(3).unwrap();
        let assignment = Slicer::bst_pure().distribute(&graph, &platform).unwrap();
        let schedule = ListScheduler::new()
            .with_bus_model(BusModel::Contention)
            .schedule(&graph, &platform, &assignment, &Pinning::new())
            .unwrap();
        let violations = schedule.validate(&graph, &platform, &Pinning::new(), true);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

#[test]
fn pipeline_is_deterministic() {
    let graph = paper_graph(29, ExecVariation::Mdet);
    let platform = Platform::paper(6).unwrap();
    let run = || {
        let assignment = Slicer::ast_adapt().distribute(&graph, &platform).unwrap();
        let schedule = ListScheduler::new()
            .schedule(&graph, &platform, &assignment, &Pinning::new())
            .unwrap();
        (assignment, schedule)
    };
    let (a1, s1) = run();
    let (a2, s2) = run();
    assert_eq!(a1, a2);
    assert_eq!(s1, s2);
}

#[test]
fn more_processors_never_hurt_the_time_driven_schedule_much() {
    // Monotone improvement is not guaranteed per-instance, but across a
    // batch the average must improve from 2 to 16 processors (the paper's
    // headline curve shape).
    let mut small_sum = 0.0;
    let mut large_sum = 0.0;
    let runs = 8;
    for seed in 0..runs {
        let graph = paper_graph(seed, ExecVariation::Mdet);
        for (nproc, sum) in [(2usize, &mut small_sum), (16, &mut large_sum)] {
            let platform = Platform::paper(nproc).unwrap();
            let assignment = Slicer::bst_pure().distribute(&graph, &platform).unwrap();
            let schedule = ListScheduler::new()
                .schedule(&graph, &platform, &assignment, &Pinning::new())
                .unwrap();
            *sum += LatenessReport::new(&graph, &assignment, &schedule)
                .max_lateness()
                .as_f64();
        }
    }
    assert!(
        large_sum / runs as f64 <= small_sum / runs as f64,
        "16 processors must not be worse on average: {large_sum} vs {small_sum}"
    );
}

#[test]
fn work_conserving_scheduler_is_also_sound() {
    let graph = paper_graph(41, ExecVariation::Hdet);
    let platform = Platform::paper(4).unwrap();
    let assignment = Slicer::bst_norm().distribute(&graph, &platform).unwrap();
    let schedule = ListScheduler::new()
        .with_respect_release(false)
        .schedule(&graph, &platform, &assignment, &Pinning::new())
        .unwrap();
    assert!(schedule
        .validate(&graph, &platform, &Pinning::new(), false)
        .is_empty());
}
