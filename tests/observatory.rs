//! Integration coverage of the sweep observatory: histogram percentile
//! correctness against an exact sorted-vector reference, snapshot
//! merge/delta algebra, registry reset/serde completeness (exhaustive
//! destructures that fail to compile when a field is added but not
//! covered), and the runner's progress + `metrics.json` surface.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use feast::progress::METRICS_SCHEMA;
use feast::telemetry::{percentile_reference, MetricsSnapshot, Registry, Stage, StageSnapshot};
use feast::{MetricsFile, ProgressTracker, Runner, Scenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, WorkloadSpec};

/// Strategy: a non-empty vector of microsecond-scale duration samples
/// spanning seven orders of magnitude (the vendored proptest shim has no
/// collection strategies, so the vector is derived from a drawn seed).
fn duration_samples() -> impl Strategy<Value = Vec<u64>> {
    (1usize..200, 0u64..u64::MAX).prop_map(|(len, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(0..10_000_000u64)).collect()
    })
}

/// The log2 bucket a microsecond value falls into, clamped to the
/// histogram's top bucket — the resolution unit of the percentile
/// guarantee.
fn log2_bucket(us: u64) -> u32 {
    (64 - us.leading_zeros()).min(31)
}

/// Records `samples` (as microsecond durations) into one stage of a fresh
/// registry and returns that stage's snapshot.
fn snapshot_of(samples: &[u64]) -> StageSnapshot {
    let registry = Registry::default();
    for &us in samples {
        registry.record_stage(Stage::Schedule, Duration::from_micros(us));
    }
    registry.snapshot().schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The histogram's percentile estimate always lands in the same log2
    /// bucket as the exact nearest-rank order statistic of the recorded
    /// samples, for any sample set and any probe probability.
    #[test]
    fn histogram_percentiles_match_reference_within_one_bucket(
        samples in duration_samples(),
        probe in 0.01f64..1.0,
    ) {
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [probe, 0.50, 0.90, 0.99] {
            let estimate = snap.percentile_us(p);
            let exact = percentile_reference(&sorted, p);
            prop_assert_eq!(log2_bucket(estimate), log2_bucket(exact));
            prop_assert!(estimate <= snap.max_us);
        }
        prop_assert_eq!(snap.max_us, *sorted.last().unwrap());
        prop_assert_eq!(snap.count, sorted.len() as u64);
    }

    /// Merging two snapshots is indistinguishable from recording both
    /// sample sets into a single histogram, and the delta of a later
    /// snapshot against an earlier one of the same histogram recovers the
    /// later samples' counts and totals.
    #[test]
    fn snapshot_merge_and_delta_match_single_histogram(
        a in duration_samples(),
        b in duration_samples(),
    ) {
        let combined: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(snapshot_of(&a).merge(&snapshot_of(&b)), snapshot_of(&combined));

        // Delta: record `a`, snapshot, record `b` on top, snapshot again.
        let registry = Registry::default();
        for &us in &a {
            registry.record_stage(Stage::Schedule, Duration::from_micros(us));
        }
        let earlier = registry.snapshot().schedule;
        for &us in &b {
            registry.record_stage(Stage::Schedule, Duration::from_micros(us));
        }
        let delta = registry.snapshot().schedule.delta(&earlier);
        prop_assert_eq!(delta.count, b.len() as u64);
        prop_assert_eq!(delta.total_us, b.iter().sum::<u64>());
    }
}

/// Asserts every field of `snap` satisfies `check`. The destructures are
/// exhaustive (no `..`), so adding a field to `MetricsSnapshot` or
/// `StageSnapshot` without extending this helper — and therefore the
/// reset/round-trip coverage below — is a compile error.
fn for_every_field(snap: &MetricsSnapshot, check: impl Fn(&str, u64)) {
    let MetricsSnapshot {
        graphs_generated,
        schedules_built,
        feasibility_failures,
        structural_violations,
        window_violations,
        schedule_violations,
        replications_failed,
        checkpoint_retries,
        delta_cache_hits,
        delta_cache_misses,
        delta_dirty_nodes,
        delta_scanned_nodes,
        admissions_admitted,
        admissions_rejected,
        admissions_shed,
        admissions_worker_failed,
        admissions_evicted,
        admissions_structural_fallbacks,
        admissions_prefiltered,
        admission_log_retries,
        admission_log_failures,
        slice_cache_hits,
        slice_cache_misses,
        slice_cache_evictions,
        admission,
        admission_sojourn,
        generate,
        distribute,
        redistribute,
        schedule,
        audit,
    } = snap;
    for (name, value) in [
        ("graphs_generated", *graphs_generated),
        ("schedules_built", *schedules_built),
        ("feasibility_failures", *feasibility_failures),
        ("structural_violations", *structural_violations),
        ("window_violations", *window_violations),
        ("schedule_violations", *schedule_violations),
        ("replications_failed", *replications_failed),
        ("checkpoint_retries", *checkpoint_retries),
        ("delta_cache_hits", *delta_cache_hits),
        ("delta_cache_misses", *delta_cache_misses),
        ("delta_dirty_nodes", *delta_dirty_nodes),
        ("delta_scanned_nodes", *delta_scanned_nodes),
        ("admissions_admitted", *admissions_admitted),
        ("admissions_rejected", *admissions_rejected),
        ("admissions_shed", *admissions_shed),
        ("admissions_worker_failed", *admissions_worker_failed),
        ("admissions_evicted", *admissions_evicted),
        (
            "admissions_structural_fallbacks",
            *admissions_structural_fallbacks,
        ),
        ("admissions_prefiltered", *admissions_prefiltered),
        ("admission_log_retries", *admission_log_retries),
        ("admission_log_failures", *admission_log_failures),
        ("slice_cache_hits", *slice_cache_hits),
        ("slice_cache_misses", *slice_cache_misses),
        ("slice_cache_evictions", *slice_cache_evictions),
    ] {
        check(name, value);
    }
    for (stage, snap) in [
        ("admission", admission),
        ("admission_sojourn", admission_sojourn),
        ("generate", generate),
        ("distribute", distribute),
        ("redistribute", redistribute),
        ("schedule", schedule),
        ("audit", audit),
    ] {
        let StageSnapshot {
            count,
            total_us,
            mean_us,
            p50_us,
            p90_us,
            p99_us,
            max_us,
            buckets,
        } = snap;
        for (field, value) in [
            ("count", *count),
            ("total_us", *total_us),
            ("mean_us", *mean_us),
            ("p50_us", *p50_us),
            ("p90_us", *p90_us),
            ("p99_us", *p99_us),
            ("max_us", *max_us),
            ("buckets_len", buckets.len() as u64),
        ] {
            check(&format!("{stage}.{field}"), value);
        }
    }
}

/// A registry with every counter and every stage histogram non-zero.
fn populated_registry() -> Registry {
    let registry = Registry::default();
    for stage in Stage::ALL {
        registry.record_stage(stage, Duration::from_micros(123));
    }
    registry.count_graph();
    registry.count_schedule(false, 3);
    registry.count_audit(2, 1);
    registry.count_failed_replication();
    registry.count_checkpoint_retry();
    registry.count_redistribute(&slicing::RedistributeStats {
        cache_hits: 5,
        cache_misses: 2,
        dirty_nodes: 4,
        scanned_nodes: 40,
        fell_back: false,
    });
    registry.record_admission(true, Duration::from_micros(45));
    registry.record_admission(false, Duration::from_micros(60));
    registry.record_admission_sojourn(Duration::from_micros(90));
    registry.count_admission_shed();
    registry.count_admission_worker_failed();
    registry.count_admission_evicted();
    registry.count_admission_structural_fallback();
    registry.count_admission_log_retry();
    registry.count_admission_log_failure();
    registry.count_admission_prefiltered();
    registry.count_slice_cache_hit();
    registry.count_slice_cache_miss();
    registry.count_slice_cache_eviction();
    registry
}

#[test]
fn registry_reset_clears_every_field() {
    let registry = populated_registry();
    // Guard the guard: the populated registry must touch every field, or
    // the cleared-after-reset assertion below would pass vacuously.
    for_every_field(&registry.snapshot(), |name, value| {
        assert!(value > 0, "populated registry left `{name}` at zero");
    });
    registry.reset();
    for_every_field(&registry.snapshot(), |name, value| {
        assert_eq!(value, 0, "reset left `{name}` at {value}");
    });
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let snap = populated_registry().snapshot();
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
    assert_eq!(snap, back);
    // The exhaustive walk also pins the deserialized copy field by field,
    // so a field silently dropped by serde plumbing cannot hide behind a
    // (then equally incomplete) PartialEq.
    for_every_field(&back, |name, value| {
        assert!(value > 0, "round trip lost `{name}`");
    });
}

/// A unique temp path removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("feast-observatory-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir creates");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn runner_feeds_progress_and_writes_metrics_file() {
    let dir = TempDir::new("runner");
    let metrics_path = dir.0.join("metrics.json");
    let scenario = Scenario::paper(
        "OBS/IT",
        WorkloadSpec::paper(ExecVariation::Mdet),
        MetricKind::pure(),
        CommEstimate::Ccne,
    )
    .with_replications(4)
    .with_system_sizes(vec![2, 4]);

    let tracker = Arc::new(ProgressTracker::new());
    let result = Runner::new(scenario)
        .threads(2)
        .progress(Arc::clone(&tracker))
        .metrics_out(&metrics_path)
        .run()
        .expect("sweep completes");
    assert_eq!(result.points.len(), 2);

    // The shared tracker saw the whole run: 4 replications × 2 sizes.
    let snap = tracker.snapshot();
    assert_eq!(snap.total, 8);
    assert_eq!(snap.done, 8);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.outcome.as_deref(), Some("complete"));
    assert_eq!(snap.eta_s, 0.0);
    assert!((snap.fraction_done() - 1.0).abs() < 1e-12);

    // The at-exit metrics.json reflects the same terminal state and a
    // consistent telemetry section (global registry: `>=` because other
    // tests in this binary may run pipelines concurrently).
    let text = std::fs::read_to_string(&metrics_path).expect("metrics.json written");
    let file: MetricsFile = serde_json::from_str(&text).expect("metrics.json parses");
    assert_eq!(file.schema, METRICS_SCHEMA);
    assert_eq!(file.progress.done, 8);
    assert_eq!(file.progress.outcome.as_deref(), Some("complete"));
    assert!(file.metrics.schedule.count >= 8);
    assert!(file.metrics.audit.count >= 8);
    assert!(file.metrics.schedule.p99_us >= file.metrics.schedule.p50_us);
    assert!(file.metrics.schedule.max_us >= file.metrics.schedule.p99_us);
    assert!(
        !metrics_path.with_extension("json.tmp").exists(),
        "atomic write must not leave its temp file behind"
    );
}
