//! Fault-matrix integration tests (require `--features fault-inject`).
//!
//! Each fault class gets the same treatment the CI fault matrix gives it:
//! inject it deterministically, then assert the engine either *recovers
//! bit-identically* to a fault-free run (transient faults inside the
//! retry budget) or *degrades to typed, exactly-counted outcomes*
//! (permanent faults), never silently corrupting statistics.

#![cfg(feature = "fault-inject")]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use feast::{FaultPlan, FaultSite, FaultSpec, RunError, Runner, Scenario};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, WorkloadSpec};

const REPS: usize = 8;
const SIZES: [usize; 2] = [2, 4];

fn scenario() -> Scenario {
    Scenario::paper(
        "PURE/CCNE",
        WorkloadSpec::paper(ExecVariation::Mdet),
        MetricKind::pure(),
        CommEstimate::Ccne,
    )
    .with_replications(REPS)
    .with_system_sizes(SIZES.to_vec())
}

/// A fresh temp-file path; the file is removed by [`TempPath`]'s Drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TempPath(std::env::temp_dir().join(format!(
            "feast-fault-{tag}-{}-{n}.jsonl",
            std::process::id()
        )))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

#[test]
fn transient_checkpoint_io_faults_recover_bit_identically() {
    let fault_free = Runner::new(scenario()).threads(2).run().unwrap();

    // Every cell's first two append attempts fail; the retry budget
    // (CHECKPOINT_RETRY_LIMIT) absorbs them.
    const { assert!(2 < Runner::CHECKPOINT_RETRY_LIMIT as u64) };
    let checkpoint = TempPath::new("transient-io");
    let plan =
        FaultPlan::new(0xFA).with_fault(FaultSpec::new(FaultSite::CheckpointIo, 1.0).transient(2));
    let faulted = Runner::new(scenario())
        .threads(2)
        .checkpoint(&checkpoint.0)
        .faults(plan)
        .run()
        .unwrap();
    assert_eq!(faulted, fault_free, "recovered run must be bit-identical");

    // The retried appends must actually have landed: a fault-free replay
    // of the checkpoint recomputes nothing and still matches.
    let replayed = Runner::new(scenario())
        .threads(2)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    assert_eq!(replayed, fault_free);
}

#[test]
fn permanent_checkpoint_io_faults_abort_with_a_typed_io_error() {
    let checkpoint = TempPath::new("permanent-io");
    let plan = FaultPlan::new(1).with_fault(FaultSpec::new(FaultSite::CheckpointIo, 1.0));
    let err = Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .faults(plan)
        .run()
        .unwrap_err();
    assert!(matches!(err, RunError::Io(_)), "got {err:?}");
    assert!(err
        .to_string()
        .contains("injected checkpoint write failure"));
}

#[test]
fn corrupted_checkpoint_records_are_rejected_on_resume() {
    let checkpoint = TempPath::new("corrupt");
    // Corruption is silent at write time (that is the point of the
    // fault): the run itself succeeds.
    let plan = FaultPlan::new(2).with_fault(FaultSpec::new(FaultSite::CheckpointCorrupt, 1.0));
    Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .faults(plan)
        .run()
        .unwrap();

    // Resume detects the per-record CRC mismatch and refuses the file —
    // corruption is rejected, never folded into statistics.
    let err = Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap_err();
    match err {
        RunError::CheckpointCorrupt { detail, .. } => {
            assert!(detail.contains("checksum"), "unexpected detail: {detail}");
        }
        other => panic!("expected CheckpointCorrupt, got {other:?}"),
    }
}

#[test]
fn worker_panics_degrade_to_exactly_the_planned_failed_cells() {
    let plan = FaultPlan::new(0xBEEF).with_fault(FaultSpec::new(FaultSite::WorkerPanic, 0.4));
    let expected: Vec<(usize, usize)> = SIZES
        .iter()
        .flat_map(|&size| (0..REPS).map(move |rep| (size, rep)))
        .filter(|&(size, rep)| plan.should_fire(FaultSite::WorkerPanic, size, rep, 0))
        .collect();
    assert!(
        !expected.is_empty(),
        "seed must fault at least one cell for the test to bite"
    );

    let partial = Runner::new(scenario())
        .threads(2)
        .faults(plan)
        .run_partial()
        .unwrap();
    let mut failed_cells: Vec<(usize, usize)> = partial
        .failed
        .iter()
        .map(|f| (f.system_size, f.replication))
        .collect();
    failed_cells.sort_unstable();
    assert_eq!(
        failed_cells, expected,
        "failed cells must match the plan exactly"
    );
    for f in &partial.failed {
        assert_eq!(f.stage, "panic");
        assert!(
            f.error.contains("injected worker panic"),
            "got {:?}",
            f.error
        );
    }
    assert_eq!(
        partial.records.len() + partial.failed.len(),
        SIZES.len() * REPS,
        "every cell is accounted for, as a record or a typed failure"
    );
}

#[test]
fn degraded_replications_reach_the_installed_event_sink_without_teardown() {
    use feast::telemetry;

    // Unique label: while the global sink is installed, concurrent tests'
    // events also stream into this file, so assertions filter on it.
    const LABEL: &str = "GLOBAL-SINK/FLUSH";
    let events = TempPath::new("global-sink");
    telemetry::install(telemetry::EventSink::create(&events.0).unwrap());

    let plan = FaultPlan::new(0xBEEF).with_fault(FaultSpec::new(FaultSite::WorkerPanic, 0.4));
    let expected = SIZES
        .iter()
        .flat_map(|&size| (0..REPS).map(move |rep| (size, rep)))
        .filter(|&(size, rep)| plan.should_fire(FaultSite::WorkerPanic, size, rep, 0))
        .count();
    assert!(expected > 0, "seed must fault at least one cell");

    let scenario = Scenario::paper(
        LABEL,
        WorkloadSpec::paper(ExecVariation::Mdet),
        MetricKind::pure(),
        CommEstimate::Ccne,
    )
    .with_replications(REPS)
    .with_system_sizes(SIZES.to_vec());
    Runner::new(scenario)
        .threads(2)
        .faults(plan)
        .run_partial()
        .unwrap();

    // Read the live file WITHOUT flushing or uninstalling the sink: the
    // runner itself must have pushed the degraded replications to disk
    // (it flushes the installed sink after each failure and at exit).
    let text = std::fs::read_to_string(&events.0).unwrap();
    let failed = text
        .lines()
        .filter(|l| l.contains("ReplicationFailed") && l.contains(LABEL))
        .count();
    assert_eq!(
        failed, expected,
        "events.jsonl must hold every degraded replication before teardown"
    );
    telemetry::uninstall();
}

#[test]
fn fail_fast_turns_a_worker_panic_into_an_aborting_error() {
    let plan = FaultPlan::new(0xBEEF).with_fault(FaultSpec::new(FaultSite::WorkerPanic, 0.4));
    let err = Runner::new(scenario())
        .threads(2)
        .faults(plan)
        .fail_fast(true)
        .run_partial()
        .unwrap_err();
    assert!(matches!(err, RunError::WorkerPanic(_)), "got {err:?}");
}

#[test]
fn transient_generation_rejections_recover_bit_identically() {
    let fault_free = Runner::new(scenario()).threads(2).run().unwrap();

    // Injected rejections are virtual: they burn retry budget without
    // advancing the seed sub-stream, so once the fault clears the draw
    // reproduces the fault-free graph exactly.
    const { assert!(3 < Runner::MAX_GENERATE_ATTEMPTS) };
    let plan =
        FaultPlan::new(3).with_fault(FaultSpec::new(FaultSite::GenerateReject, 1.0).transient(3));
    let faulted = Runner::new(scenario())
        .threads(2)
        .faults(plan)
        .run()
        .unwrap();
    assert_eq!(faulted, fault_free);
}

#[test]
fn permanent_generation_rejections_degrade_every_swept_size() {
    let plan = FaultPlan::new(4).with_fault(FaultSpec::new(FaultSite::GenerateReject, 1.0));
    let partial = Runner::new(scenario())
        .threads(2)
        .faults(plan.clone())
        .run_partial()
        .unwrap();
    assert!(partial.records.is_empty());
    assert_eq!(
        partial.failed.len(),
        SIZES.len() * REPS,
        "a rejected replication fails at every swept system size"
    );
    for f in &partial.failed {
        assert_eq!(f.stage, "generate");
    }

    let err = Runner::new(scenario())
        .threads(2)
        .faults(plan)
        .fail_fast(true)
        .run_partial()
        .unwrap_err();
    assert!(
        matches!(err, RunError::GenerateRejected { .. }),
        "got {err:?}"
    );
}

#[test]
fn cancel_races_leave_a_resumable_checkpoint() {
    let fault_free = Runner::new(scenario()).threads(2).run().unwrap();

    let checkpoint = TempPath::new("cancel-race");
    let plan = FaultPlan::new(5).with_fault(FaultSpec::new(FaultSite::CancelRace, 1.0));
    let err = Runner::new(scenario())
        .threads(2)
        .checkpoint(&checkpoint.0)
        .faults(plan)
        .run()
        .unwrap_err();
    assert!(matches!(err, RunError::Cancelled), "got {err:?}");

    // The racing cancellation landed *after* the checkpoint append: the
    // completed cells survive and a fault-free resume finishes the sweep
    // bit-identically.
    let resumed = Runner::new(scenario())
        .threads(2)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    assert_eq!(resumed, fault_free);
}
