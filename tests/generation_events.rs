//! Workload generation fans out over worker threads, but the telemetry
//! stream must stay deterministic: `GraphGenerated` events are required to
//! appear in replication order no matter how the workers interleave.
//!
//! The runner under test uses a per-run event sink (`Runner::events`), so
//! captures cannot be polluted by other tests in the same process; the
//! process-global stream path is covered separately below.

use feast::telemetry::{EventSink, RunEvent};
use feast::{Runner, Scenario};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, WorkloadSpec};

fn scenario() -> Scenario {
    Scenario::paper(
        "events-order",
        WorkloadSpec::paper(ExecVariation::Mdet),
        MetricKind::pure(),
        CommEstimate::Ccne,
    )
    .with_replications(16)
    .with_system_sizes(vec![2])
}

fn captured_generation_order(path: &std::path::Path) -> Vec<usize> {
    let text = std::fs::read_to_string(path).expect("events written");
    text.lines()
        .filter_map(|line| match serde_json::from_str::<RunEvent>(line) {
            Ok(RunEvent::GraphGenerated { replication, .. }) => Some(replication),
            _ => None,
        })
        .collect()
}

#[test]
fn graph_generated_events_stay_ordered_under_parallel_generation() {
    let dir = std::env::temp_dir().join(format!("feast-events-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("events.jsonl");

    let result = Runner::new(scenario())
        .threads(4)
        .events(EventSink::create(&path).expect("create sink"))
        .run()
        .expect("scenario runs");

    assert_eq!(
        captured_generation_order(&path),
        (0..16).collect::<Vec<_>>(),
        "GraphGenerated events must be ordered by replication index"
    );

    // Parallel generation must not change the measurements either.
    let serial = Runner::new(scenario())
        .threads(1)
        .run()
        .expect("scenario runs");
    assert_eq!(serial, result);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_runs_skip_checkpointed_generation_work() {
    let dir = std::env::temp_dir().join(format!("feast-events-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let checkpoint = dir.join("checkpoint.jsonl");
    let path = dir.join("events.jsonl");

    // Complete half the sweep, then resume the rest with a fresh sink.
    Runner::new(scenario())
        .threads(2)
        .shard(feast::ShardSpec::new(0, 2))
        .checkpoint(&checkpoint)
        .run_partial()
        .expect("shard runs");

    Runner::new(scenario())
        .threads(2)
        .events(EventSink::create(&path).expect("create sink"))
        .checkpoint(&checkpoint)
        .run()
        .expect("resume runs");

    // The resumed run generates workloads only for the missing (odd)
    // replications, still in ascending order, and announces the resume.
    assert_eq!(
        captured_generation_order(&path),
        (0..16).filter(|r| r % 2 == 1).collect::<Vec<_>>()
    );
    let text = std::fs::read_to_string(&path).expect("events written");
    let loaded = text.lines().any(|line| {
        matches!(
            serde_json::from_str::<RunEvent>(line),
            Ok(RunEvent::CheckpointLoaded { records: 8, .. })
        )
    });
    assert!(loaded, "resume must emit CheckpointLoaded");

    let _ = std::fs::remove_dir_all(&dir);
}
