//! Workload generation fans out over worker threads, but the telemetry
//! stream must stay deterministic: `GraphGenerated` events are required to
//! appear in replication order no matter how the workers interleave.
//!
//! This lives in its own integration-test binary because the event sink is
//! process-global; sharing a process with other tests that run scenarios
//! would interleave their events into the capture.

use feast::telemetry::{self, EventSink, RunEvent};
use feast::{run_scenario_with_threads, Scenario};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, WorkloadSpec};

#[test]
fn graph_generated_events_stay_ordered_under_parallel_generation() {
    let scenario = Scenario::paper(
        "events-order",
        WorkloadSpec::paper(ExecVariation::Mdet),
        MetricKind::pure(),
        CommEstimate::Ccne,
    )
    .with_replications(16)
    .with_system_sizes(vec![2]);

    let dir = std::env::temp_dir().join(format!("feast-events-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("events.jsonl");
    telemetry::install(EventSink::create(&path).expect("create sink"));
    let result = run_scenario_with_threads(&scenario, 4).expect("scenario runs");
    telemetry::uninstall();

    let text = std::fs::read_to_string(&path).expect("events written");
    let reps: Vec<usize> = text
        .lines()
        .filter_map(|line| match serde_json::from_str::<RunEvent>(line) {
            Ok(RunEvent::GraphGenerated { replication, .. }) => Some(replication),
            _ => None,
        })
        .collect();
    assert_eq!(
        reps,
        (0..16).collect::<Vec<_>>(),
        "GraphGenerated events must be ordered by replication index"
    );

    // Parallel generation must not change the measurements either.
    let serial = run_scenario_with_threads(&scenario, 1).expect("scenario runs");
    assert_eq!(serial, result);

    let _ = std::fs::remove_dir_all(&dir);
}
