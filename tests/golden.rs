//! Golden pin of one `ScenarioPoint`: the fig2 PURE/CCNE scenario at paper
//! settings (128 replications, base seed 0xFEA57, MDET workloads, shared
//! bus), evaluated at system size 8.
//!
//! The values below were produced by the pre-optimization implementation;
//! the hot-path rework of the critical-path search (epoch-stamped DP, CSR
//! adjacency, reachability pruning) must keep `run_scenario` byte-identical,
//! so any drift here means an optimization changed observable behaviour.

use feast::{run_scenario_sequential, Scenario};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, WorkloadSpec};

#[test]
fn fig2_pure_ccne_point_matches_golden_values() {
    let scenario = Scenario::paper(
        "PURE/CCNE",
        WorkloadSpec::paper(ExecVariation::Mdet),
        MetricKind::pure(),
        CommEstimate::Ccne,
    )
    .with_system_sizes(vec![8]);
    let result = run_scenario_sequential(&scenario).expect("scenario runs");
    assert_eq!(result.points.len(), 1);
    let p = &result.points[0];

    assert_eq!(p.system_size, 8);
    assert_eq!(p.violations, 0);
    assert_eq!(p.max_lateness.count, 128);

    // Exact float equality is intentional: the pipeline is deterministic and
    // the optimized search must reproduce it bit for bit.
    assert_eq!(p.max_lateness.mean, -28.1875);
    assert_eq!(p.max_lateness.std_dev, 5.223734447194186);
    assert_eq!(p.max_lateness.min, -39.0);
    assert_eq!(p.max_lateness.max, -16.0);
    assert_eq!(p.end_to_end_lateness.mean, -35.9296875);
    assert_eq!(p.end_to_end_lateness.std_dev, 3.507435507401765);
    assert_eq!(p.makespan.mean, 583.0234375);
    assert_eq!(p.makespan.std_dev, 81.77205352500847);
    assert_eq!(p.makespan.min, 419.0);
    assert_eq!(p.makespan.max, 746.0);
    assert_eq!(p.feasible_fraction, 1.0);
}
