//! Golden pins of the deterministic experiment engine.
//!
//! Two layers are pinned to exact values:
//!
//! * the **seed-stream derivation** (`stream_seed` / `sub_stream` /
//!   `stream_label`) — any drift here silently changes every workload the
//!   repository generates;
//! * one full **`ScenarioPoint`**: the fig2 PURE/CCNE scenario at paper
//!   settings (128 replications, base seed 0xFEA57, MDET workloads,
//!   shared bus), evaluated at system size 8.
//!
//! The point values were produced by the per-replication seed-stream
//! engine (`Runner`); earlier sequential-walk (`base_seed + i`) values are
//! obsolete. Optimizations and refactors must keep these byte-identical —
//! any drift means a change in observable behaviour.

use feast::{Runner, Scenario};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{stream_label, stream_seed, sub_stream, ExecVariation, WorkloadSpec};

#[test]
fn seed_stream_derivation_matches_golden_values() {
    // SplitMix64-chained coordinates: pinned so the derivation can never
    // drift without failing loudly.
    assert_eq!(stream_seed(0, 0, 0, 0), 0x2130_748A_AAC8_0268);
    assert_eq!(stream_seed(0xFEA57, 1, 0, 0), 0x8791_BA11_FAA2_0448);
    assert_eq!(stream_seed(0xFEA57, 1, 0, 1), 0xD4FD_C9BE_EB82_6764);

    // Retry attempt 0 is the identity; attempt k re-mixes.
    assert_eq!(sub_stream(0xDEAD_BEEF, 0), 0xDEAD_BEEF);
    assert_eq!(sub_stream(0xDEAD_BEEF, 3), 0x8E27_0763_5974_DFC6);

    // FNV-1a labels, including the empty-string offset basis.
    assert_eq!(stream_label(b""), 0xCBF2_9CE4_8422_2325);
    assert_eq!(stream_label(b"paper"), 0x1E2F_E8A7_AC3F_B5F9);
}

#[test]
fn fig2_pure_ccne_point_matches_golden_values() {
    let scenario = Scenario::paper(
        "PURE/CCNE",
        WorkloadSpec::paper(ExecVariation::Mdet),
        MetricKind::pure(),
        CommEstimate::Ccne,
    )
    .with_system_sizes(vec![8]);
    let result = Runner::new(scenario)
        .threads(1)
        .run()
        .expect("scenario runs");
    assert_eq!(result.points.len(), 1);
    let p = &result.points[0];

    assert_eq!(p.system_size, 8);
    assert_eq!(p.violations, 0);
    assert_eq!(p.max_lateness.count, 128);

    // Exact float equality is intentional: the pipeline is deterministic
    // and every execution strategy (threads, shards, resume) must
    // reproduce it bit for bit.
    assert_eq!(p.max_lateness.mean, -29.9296875);
    assert_eq!(p.max_lateness.std_dev, 5.154592163694015);
    assert_eq!(p.max_lateness.min, -40.0);
    assert_eq!(p.max_lateness.max, -16.0);
    assert_eq!(p.end_to_end_lateness.mean, -35.9453125);
    assert_eq!(p.end_to_end_lateness.std_dev, 3.7296610509693924);
    assert_eq!(p.makespan.mean, 581.9453125);
    assert_eq!(p.makespan.std_dev, 81.29864344915744);
    assert_eq!(p.makespan.min, 412.0);
    assert_eq!(p.makespan.max, 755.0);
    assert_eq!(p.feasible_fraction, 1.0);
}
