//! Qualitative shape checks for the paper's figures, run at reduced scale.
//!
//! These tests assert the *relationships* the paper reports (who wins,
//! where), not absolute values: the full-scale regeneration lives in the
//! `figures` binary and the `bench` crate, and EXPERIMENTS.md records the
//! measured curves.

use feast::experiments::{ext_shapes, fig2, fig5, ExperimentConfig};
use feast::ExperimentResult;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        // High enough that the qualitative orderings below sit outside
        // replication noise (at 24 reps the ADAPT/PURE ratio on 2
        // processors still swings by ±0.1 across RNG streams).
        replications: 96,
        base_seed: 0xFEA57,
        system_sizes: vec![2, 4, 16],
        threads: 0,
    }
}

fn mean_at(result: &ExperimentResult, panel: &str, series: &str, size: usize) -> f64 {
    result
        .series(panel, series)
        .unwrap_or_else(|| panic!("missing series {series} in {panel}"))
        .points
        .iter()
        .find(|&&(n, _)| n == size)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("missing size {size} in {panel}/{series}"))
}

#[test]
fn fig2_shapes_hold() {
    let r = fig2(&cfg()).unwrap();

    for panel in ["LDET", "MDET", "HDET"] {
        // Lateness decreases (improves) with system size for the best
        // configuration.
        let small = mean_at(&r, panel, "PURE/CCNE", 2);
        let large = mean_at(&r, panel, "PURE/CCNE", 16);
        assert!(large < small, "{panel}: no improvement with system size");

        // CCNE beats (or at worst matches) CCAA once parallelism is
        // exploitable: all slack stays with the computation subtasks.
        let ccne = mean_at(&r, panel, "PURE/CCNE", 16);
        let ccaa = mean_at(&r, panel, "PURE/CCAA", 16);
        assert!(
            ccne <= ccaa + 1e-9,
            "{panel}: CCNE ({ccne}) should beat CCAA ({ccaa}) at 16 procs"
        );
    }

    // NORM degrades sharply as execution-time variation grows: at high
    // variation its best-case lateness is far worse than PURE's because
    // short subtasks receive almost no slack.
    let pure_hdet = mean_at(&r, "HDET", "PURE/CCNE", 16);
    let norm_hdet = mean_at(&r, "HDET", "NORM/CCNE", 16);
    assert!(
        pure_hdet < norm_hdet,
        "HDET at 16 procs: PURE ({pure_hdet}) must beat NORM ({norm_hdet})"
    );
}

#[test]
fn fig5_shapes_hold() {
    let r = fig5(&cfg()).unwrap();

    let mut pure_total_small = 0.0;
    let mut adapt_total_small = 0.0;
    for panel in ["LDET", "MDET", "HDET"] {
        // On the smallest system, ADAPT must track or beat PURE on every
        // panel (within replication noise), and beat it in aggregate (the
        // assertion after this loop).
        let pure2 = mean_at(&r, panel, "PURE", 2);
        let adapt2 = mean_at(&r, panel, "ADAPT", 2);
        pure_total_small += pure2;
        adapt_total_small += adapt2;
        assert!(
            adapt2 <= pure2 + 0.10 * pure2.abs(),
            "{panel}: ADAPT ({adapt2}) must track PURE ({pure2}) on 2 processors"
        );

        // On large systems ADAPT converges towards PURE (the paper's
        // Figure 5 even shows it saturating slightly *worse* under HDET).
        let pure16 = mean_at(&r, panel, "PURE", 16);
        let adapt16 = mean_at(&r, panel, "ADAPT", 16);
        assert!(
            (pure16 - adapt16).abs() <= 0.15 * pure16.abs(),
            "{panel}: ADAPT ({adapt16}) must converge to PURE ({pure16}) at 16 processors"
        );

        // THRES with a fixed surplus trails PURE once parallelism is
        // exploitable (lateness is less negative).
        let thres16 = mean_at(&r, panel, "THRES d=1", 16);
        if panel != "LDET" {
            assert!(
                thres16 > pure16,
                "{panel}: THRES ({thres16}) must trail PURE ({pure16}) at 16 processors"
            );
        }
    }

    // Aggregate direction over the three panels: ADAPT wins on the small
    // system.
    assert!(
        adapt_total_small <= pure_total_small,
        "ADAPT ({adapt_total_small}) must beat PURE ({pure_total_small}) at 2 processors in aggregate"
    );
}

#[test]
fn structured_graphs_run_cleanly() {
    let cfg = ExperimentConfig {
        replications: 6,
        base_seed: 7,
        system_sizes: vec![2, 8],
        threads: 0,
    };
    let r = ext_shapes(&cfg).unwrap();
    assert_eq!(r.panels.len(), 3);
    for panel in &r.panels {
        for series in &panel.series {
            assert_eq!(series.points.len(), 2, "{}/{}", panel.title, series.label);
            for &(_, v) in &series.points {
                assert!(v.is_finite());
            }
        }
    }
}
