//! Mutation-based oracle tests for the always-on schedule audit.
//!
//! Each test takes a known-good schedule from the real pipeline, applies
//! one targeted mutation, and asserts `Schedule::validate` reports exactly
//! the expected `ScheduleViolation` variant — proving the oracle detects
//! each violation class, not merely that clean schedules pass.

use platform::{Pinning, Platform, ProcessorId};
use sched::{ListScheduler, Schedule, ScheduleViolation};
use slicing::Slicer;
use taskgraph::{Subtask, TaskGraph, Time};

/// A two-processor pipeline whose schedule contains a remote transfer:
/// a -> b with the consumer pinned away from the producer.
fn remote_pipeline() -> (TaskGraph, Platform, Pinning, Schedule) {
    let mut b = TaskGraph::builder();
    let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
    let z = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(100)));
    b.add_edge(a, z, 4).unwrap();
    let graph = b.build().unwrap();
    let platform = Platform::paper(2).unwrap();
    let mut pinning = Pinning::new();
    pinning.pin(a, ProcessorId::new(0)).unwrap();
    pinning.pin(z, ProcessorId::new(1)).unwrap();
    let assignment = Slicer::bst_pure().distribute(&graph, &platform).unwrap();
    let schedule = ListScheduler::new()
        .schedule(&graph, &platform, &assignment, &pinning)
        .unwrap();
    (graph, platform, pinning, schedule)
}

/// Validates with the bus-exclusivity check on (the strictest oracle).
fn audit(
    graph: &TaskGraph,
    platform: &Platform,
    pinning: &Pinning,
    schedule: &Schedule,
) -> Vec<ScheduleViolation> {
    schedule.validate(graph, platform, pinning, true)
}

#[test]
fn unmutated_schedule_is_clean() {
    let (graph, platform, pinning, schedule) = remote_pipeline();
    assert_eq!(audit(&graph, &platform, &pinning, &schedule), vec![]);
    assert!(schedule.message(graph.edge_ids().next().unwrap()).is_some());
}

#[test]
fn shrunk_interval_is_reported_as_wrong_duration() {
    let (graph, platform, pinning, schedule) = remote_pipeline();
    let mut entries = schedule.entries().to_vec();
    entries[0].finish -= Time::new(1);
    let mutant = Schedule::from_parts(
        entries,
        schedule.messages().to_vec(),
        schedule.processor_count(),
    );
    let violations = audit(&graph, &platform, &pinning, &mutant);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::WrongDuration(id) if id.index() == 0)),
        "expected WrongDuration, got {violations:?}"
    );
}

#[test]
fn colocated_overlap_is_reported_as_processor_overlap() {
    let (graph, platform, _, schedule) = remote_pipeline();
    // Pull the consumer onto the producer's processor at the same start
    // time: the audit must flag the overlap (and the precedence break).
    let mut entries = schedule.entries().to_vec();
    entries[1].processor = entries[0].processor;
    entries[1].start = entries[0].start;
    entries[1].finish = entries[0].start + Time::new(10);
    let mut messages = schedule.messages().to_vec();
    messages[0] = None; // co-located: local message
    let mutant = Schedule::from_parts(entries, messages, schedule.processor_count());
    let violations = audit(&graph, &platform, &Pinning::new(), &mutant);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::ProcessorOverlap(_, _))),
        "expected ProcessorOverlap, got {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::PrecedenceViolated(_))),
        "expected PrecedenceViolated alongside the overlap, got {violations:?}"
    );
}

#[test]
fn dropped_transfer_is_reported_as_missing_transfer() {
    let (graph, platform, pinning, schedule) = remote_pipeline();
    let mut messages = schedule.messages().to_vec();
    messages[0] = None; // cross-processor edge with no recorded transfer
    let mutant = Schedule::from_parts(
        schedule.entries().to_vec(),
        messages,
        schedule.processor_count(),
    );
    let violations = audit(&graph, &platform, &pinning, &mutant);
    assert_eq!(
        violations,
        vec![ScheduleViolation::MissingTransfer(
            graph.edge_ids().next().unwrap()
        )]
    );
}

#[test]
fn early_consumer_is_reported_as_precedence_violation() {
    let (graph, platform, pinning, schedule) = remote_pipeline();
    // Start the consumer before its input arrives.
    let mut entries = schedule.entries().to_vec();
    entries[1].start = Time::ZERO;
    entries[1].finish = Time::new(10);
    let mutant = Schedule::from_parts(
        entries,
        schedule.messages().to_vec(),
        schedule.processor_count(),
    );
    let violations = audit(&graph, &platform, &pinning, &mutant);
    assert_eq!(
        violations,
        vec![ScheduleViolation::PrecedenceViolated(
            graph.edge_ids().next().unwrap()
        )]
    );
}

#[test]
fn unpinned_placement_is_reported_as_pin_ignored() {
    let (graph, platform, pinning, schedule) = remote_pipeline();
    // Move the producer off its pinned processor; keep everything else
    // consistent (transfer endpoints follow the move so only the pin trips).
    let mut entries = schedule.entries().to_vec();
    entries[0].processor = ProcessorId::new(1);
    let mut messages = schedule.messages().to_vec();
    let slot = messages[0].as_mut().unwrap();
    slot.from = ProcessorId::new(1);
    let mutant = Schedule::from_parts(entries, messages, schedule.processor_count());
    let violations = audit(&graph, &platform, &pinning, &mutant);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::PinIgnored(id) if id.index() == 0)),
        "expected PinIgnored, got {violations:?}"
    );
}

#[test]
fn overlapping_bus_slots_are_reported_as_bus_overlap() {
    // Two disjoint producer/consumer pairs, both crossing processors, with
    // their transfers forced onto the same bus interval.
    let mut b = TaskGraph::builder();
    let a1 = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
    let z1 = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(200)));
    let a2 = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
    let z2 = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(200)));
    b.add_edge(a1, z1, 4).unwrap();
    b.add_edge(a2, z2, 4).unwrap();
    let graph = b.build().unwrap();
    let platform = Platform::paper(2).unwrap();
    let mut pinning = Pinning::new();
    pinning.pin(a1, ProcessorId::new(0)).unwrap();
    pinning.pin(z1, ProcessorId::new(1)).unwrap();
    pinning.pin(a2, ProcessorId::new(0)).unwrap();
    pinning.pin(z2, ProcessorId::new(1)).unwrap();
    let assignment = Slicer::bst_pure().distribute(&graph, &platform).unwrap();
    let schedule = ListScheduler::new()
        .with_bus_model(sched::BusModel::Contention)
        .schedule(&graph, &platform, &assignment, &pinning)
        .unwrap();
    assert_eq!(audit(&graph, &platform, &pinning, &schedule), vec![]);

    // Force the second transfer to depart inside the first's slot, keeping
    // its nominal duration and its consumer start consistent so only the
    // bus-exclusivity invariant trips.
    let mut messages = schedule.messages().to_vec();
    let first = messages[0].unwrap();
    let second = messages[1].as_mut().unwrap();
    let duration = second.arrive - second.depart;
    second.depart = first.depart;
    second.arrive = first.depart + duration;
    let mutant = Schedule::from_parts(
        schedule.entries().to_vec(),
        messages,
        schedule.processor_count(),
    );
    let violations = audit(&graph, &platform, &pinning, &mutant);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::BusOverlap(_, _))),
        "expected BusOverlap, got {violations:?}"
    );
    // The same mutant passes the non-exclusive audit: the overlap is a
    // contention-model invariant, not a precedence one.
    assert!(mutant
        .validate(&graph, &platform, &pinning, false)
        .iter()
        .all(|v| !matches!(v, ScheduleViolation::BusOverlap(_, _))));
}
