//! Integration tests of the sharded, resumable experiment engine: shard
//! merging and checkpoint resumption must reproduce a monolithic run
//! bit for bit, cancellation must be clean and resumable, and every
//! failure path must surface as a typed [`RunError`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use feast::{
    PartialResult, ReplicationRecord, RunError, Runner, Scenario, ScenarioError, ShardSpec,
};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, WorkloadSpec};

fn scenario() -> Scenario {
    Scenario::paper(
        "PURE/CCNE",
        WorkloadSpec::paper(ExecVariation::Mdet),
        MetricKind::pure(),
        CommEstimate::Ccne,
    )
    .with_replications(12)
    .with_system_sizes(vec![2, 8])
}

/// A fresh temp-file path; the file is removed by [`TempPath`]'s Drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TempPath(std::env::temp_dir().join(format!(
            "feast-engine-{tag}-{}-{n}.jsonl",
            std::process::id()
        )))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

#[test]
fn sharded_and_merged_equals_monolithic() {
    let monolithic = Runner::new(scenario()).threads(2).run().unwrap();
    let parts: Vec<PartialResult> = (0..4)
        .map(|i| {
            Runner::new(scenario())
                .threads(2)
                .shard(ShardSpec::new(i, 4))
                .run_partial()
                .unwrap()
        })
        .collect();
    // Each shard owns a quarter of the 12 replications at both sizes.
    for part in &parts {
        assert_eq!(part.records.len(), 2 * 3);
    }
    let merged = PartialResult::merge(&parts).unwrap();
    // Bit-identical f64 statistics, not approximately equal.
    assert_eq!(merged, monolithic);
}

#[test]
fn merge_order_does_not_matter() {
    let mut parts: Vec<PartialResult> = (0..3)
        .map(|i| {
            Runner::new(scenario())
                .threads(1)
                .shard(ShardSpec::new(i, 3))
                .run_partial()
                .unwrap()
        })
        .collect();
    let forward = PartialResult::merge(&parts).unwrap();
    parts.reverse();
    let backward = PartialResult::merge(&parts).unwrap();
    assert_eq!(forward, backward);
}

#[test]
fn resumed_run_equals_uninterrupted_run() {
    let checkpoint = TempPath::new("resume");
    let uninterrupted = Runner::new(scenario()).threads(2).run().unwrap();

    // First pass: compute only shard 0 of 2 into the checkpoint, as if the
    // sweep had been killed partway through.
    let partial = Runner::new(scenario())
        .threads(2)
        .shard(ShardSpec::new(0, 2))
        .checkpoint(&checkpoint.0)
        .run_partial()
        .unwrap();
    assert!(partial.records.len() < 2 * 12);

    // Second pass: a full run against the same checkpoint resumes — it
    // recomputes only the missing cells and must match exactly.
    let resumed = Runner::new(scenario())
        .threads(2)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    assert_eq!(resumed, uninterrupted);

    // Third pass: everything is checkpointed now, nothing to compute.
    let replayed = Runner::new(scenario())
        .threads(2)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    assert_eq!(replayed, uninterrupted);
}

#[test]
fn cancelled_run_preserves_checkpoint_for_resumption() {
    let checkpoint = TempPath::new("cancel");
    let runner = Runner::new(scenario()).threads(1).checkpoint(&checkpoint.0);
    let token = runner.cancel_token();
    token.cancel();
    assert!(matches!(runner.run(), Err(RunError::Cancelled)));

    // The checkpoint was created with a valid header; resuming completes
    // the sweep and matches an uninterrupted run.
    let resumed = Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    let uninterrupted = Runner::new(scenario()).threads(1).run().unwrap();
    assert_eq!(resumed, uninterrupted);
}

#[test]
fn checkpoint_of_different_scenario_is_rejected() {
    let checkpoint = TempPath::new("mismatch");
    Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();

    let other = scenario().with_base_seed(1);
    let err = Runner::new(other)
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap_err();
    assert!(matches!(err, RunError::CheckpointMismatch { .. }));
}

#[test]
fn checkpoint_without_header_is_corrupt() {
    let checkpoint = TempPath::new("corrupt");
    std::fs::write(&checkpoint.0, "not json\n").unwrap();
    let err = Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap_err();
    assert!(matches!(err, RunError::CheckpointCorrupt { .. }));
}

#[test]
fn checkpoint_tolerates_torn_trailing_line() {
    let checkpoint = TempPath::new("torn");
    Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    // Simulate a write torn by a kill: append half a JSON record.
    let mut text = std::fs::read_to_string(&checkpoint.0).unwrap();
    text.push_str("{\"Record\":{\"system_size\":2,\"repl");
    std::fs::write(&checkpoint.0, text).unwrap();

    let resumed = Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    let uninterrupted = Runner::new(scenario()).threads(1).run().unwrap();
    assert_eq!(resumed, uninterrupted);
}

#[test]
fn checkpoint_survives_extending_the_sweep() {
    // A checkpoint's fingerprint covers the scenario physics, not the sweep
    // shape: extending replications or sizes reuses the completed cells.
    let checkpoint = TempPath::new("extend");
    Runner::new(scenario().with_replications(6))
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    let extended = Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    let uninterrupted = Runner::new(scenario()).threads(1).run().unwrap();
    assert_eq!(extended, uninterrupted);
}

#[test]
fn merge_rejects_mismatched_and_incomplete_parts() {
    let part0 = Runner::new(scenario())
        .threads(1)
        .shard(ShardSpec::new(0, 2))
        .run_partial()
        .unwrap();
    let part1 = Runner::new(scenario())
        .threads(1)
        .shard(ShardSpec::new(1, 2))
        .run_partial()
        .unwrap();

    assert!(matches!(
        PartialResult::merge(&[]),
        Err(RunError::MergeMismatch(_))
    ));
    assert!(matches!(
        PartialResult::merge(std::slice::from_ref(&part0)),
        Err(RunError::MergeIncomplete { missing: 12 })
    ));

    let foreign = Runner::new(scenario().with_base_seed(7))
        .threads(1)
        .shard(ShardSpec::new(1, 2))
        .run_partial()
        .unwrap();
    assert!(matches!(
        PartialResult::merge(&[part0.clone(), foreign]),
        Err(RunError::MergeMismatch(_))
    ));

    let mut renamed = part1.clone();
    renamed.label = "OTHER".to_owned();
    assert!(matches!(
        PartialResult::merge(&[part0.clone(), renamed]),
        Err(RunError::MergeMismatch(_))
    ));

    // Overlapping parts are fine: determinism makes duplicates identical.
    let whole = Runner::new(scenario()).threads(1).run().unwrap();
    let merged = PartialResult::merge(&[part0.clone(), part1.clone(), part0]).unwrap();
    assert_eq!(merged, whole);
    drop(part1);
}

#[test]
fn partial_result_round_trips_through_json() {
    let part = Runner::new(scenario())
        .threads(1)
        .shard(ShardSpec::new(0, 3))
        .run_partial()
        .unwrap();
    let json = serde_json::to_string(&part).unwrap();
    let back: PartialResult = serde_json::from_str(&json).unwrap();
    // Exact f64 round-trip: the merge of serialized parts must still be
    // bit-identical, which is what shard workers on other machines rely on.
    assert_eq!(part, back);
}

#[test]
fn replication_record_round_trips_through_json() {
    let record = ReplicationRecord {
        system_size: 8,
        replication: 3,
        max_lateness: -28.062_5,
        end_to_end: -35.929_687_5,
        makespan: 583.023_437_5,
        feasible: true,
        violations: 0,
        window_violations: Some(0),
        schedule_violations: Some(0),
    };
    let json = serde_json::to_string(&record).unwrap();
    let back: ReplicationRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(record, back);

    // Records written before the audit split carry no counters; they must
    // still deserialize (as None) rather than fail the checkpoint load.
    let legacy = "{\"system_size\":8,\"replication\":3,\"max_lateness\":-28.0625,\
                  \"end_to_end\":-35.9296875,\"makespan\":583.0234375,\
                  \"feasible\":true,\"violations\":0}";
    let back: ReplicationRecord = serde_json::from_str(legacy).unwrap();
    assert_eq!(back.window_violations, None);
    assert_eq!(back.schedule_violations, None);
    assert_eq!(back.violations, 0);
}

#[test]
fn checkpoint_rejects_mid_file_corruption() {
    let checkpoint = TempPath::new("midfile");
    Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    // Flip one digit in a sealed mid-file record: the line still parses,
    // so only the per-record checksum can notice.
    let text = std::fs::read_to_string(&checkpoint.0).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 3, "expected header + several records");
    let target = lines[2];
    let digit = target
        .char_indices()
        .rfind(|(_, c)| c.is_ascii_digit())
        .expect("record has digits");
    let mut corrupted = target.to_owned();
    corrupted.replace_range(digit.0..digit.0 + 1, if digit.1 == '9' { "0" } else { "9" });
    assert_ne!(corrupted, target);
    let mut rewritten: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
    rewritten[2] = corrupted;
    std::fs::write(&checkpoint.0, rewritten.join("\n") + "\n").unwrap();

    let err = Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap_err();
    match err {
        RunError::CheckpointCorrupt { detail, .. } => {
            assert!(
                detail.contains("checksum"),
                "expected a checksum complaint, got: {detail}"
            );
        }
        other => panic!("expected CheckpointCorrupt, got {other:?}"),
    }
}

#[test]
fn checkpoint_reads_legacy_unsealed_records() {
    // Checkpoints written before per-record checksums used a bare `Record`
    // line. Rewrite a fresh checkpoint into that shape and resume from it.
    let checkpoint = TempPath::new("legacy");
    Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    let text = std::fs::read_to_string(&checkpoint.0).unwrap();
    let mut rewritten = String::new();
    for line in text.lines() {
        let value: serde::Value = serde_json::from_str(line).unwrap();
        let is_sealed = matches!(
            &value,
            serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == "Sealed")
        );
        if is_sealed {
            let serde::Value::Object(entries) = value else {
                unreachable!()
            };
            let sealed = entries.into_iter().find(|(k, _)| k == "Sealed").unwrap().1;
            let serde::Value::Object(fields) = sealed else {
                panic!("Sealed is an object")
            };
            let record = fields.into_iter().find(|(k, _)| k == "record").unwrap().1;
            let legacy = serde::Value::Object(vec![("Record".to_owned(), record)]);
            rewritten.push_str(&serde_json::to_string(&legacy).unwrap());
            rewritten.push('\n');
        } else {
            rewritten.push_str(line);
            rewritten.push('\n');
        }
    }
    assert!(rewritten.contains("\"Record\""));
    std::fs::write(&checkpoint.0, rewritten).unwrap();

    let resumed = Runner::new(scenario())
        .threads(1)
        .checkpoint(&checkpoint.0)
        .run()
        .unwrap();
    let uninterrupted = Runner::new(scenario()).threads(1).run().unwrap();
    assert_eq!(resumed, uninterrupted);
}

#[test]
fn validation_errors_are_typed() {
    let err = Runner::new(scenario().with_replications(0))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        RunError::Scenario(ScenarioError::NoReplications)
    ));

    let err = Runner::new(scenario().with_system_sizes(vec![]))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        RunError::Scenario(ScenarioError::NoSystemSizes)
    ));

    let err = Runner::new(scenario().with_system_sizes(vec![2, 0]))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        RunError::Scenario(ScenarioError::ZeroSystemSize)
    ));

    let err = Runner::new(scenario())
        .shard(ShardSpec::new(5, 2))
        .run_partial()
        .unwrap_err();
    assert!(matches!(err, RunError::InvalidShard { index: 5, count: 2 }));

    let err = Runner::new(scenario())
        .shard(ShardSpec::new(0, 2))
        .run()
        .unwrap_err();
    assert!(matches!(err, RunError::ShardedRun { count: 2 }));
}
