//! Integration coverage of the admission service: the determinism
//! contract (a concurrent service's transcript replays bit-identically
//! through a sequential controller, for arbitrary request mixes), the
//! reject-leaves-no-trace invariant, crash durability (write-ahead log
//! recovery after an arbitrarily torn tail), staleness-aware shedding
//! accounting, and the unified `feast::Error` surface over the admission
//! path.

use feast::{
    AdmissionController, AdmissionService, AdmitConfig, AdmitError, AdmitRequest, Error, Scenario,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slicing::{CommEstimate, DeltaOp, GraphDelta, MetricKind};
use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
use taskgraph::{SubtaskId, TaskGraph, Time};

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fresh temp-file path; the file is removed by Drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TempPath(std::env::temp_dir().join(format!(
            "feast-admission-it-{tag}-{}-{n}.jsonl",
            std::process::id()
        )))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn spec() -> WorkloadSpec {
    WorkloadSpec::paper(ExecVariation::Mdet)
}

fn config(size: usize) -> AdmitConfig {
    let scenario = Scenario::paper("ADM/IT", spec(), MetricKind::adapt(), CommEstimate::Ccne);
    AdmitConfig::new(scenario, size)
}

/// Generates the first paper workload at or after `seed` (generation can
/// reject a stream; admission callers retry on the next one, so do we).
fn graph(seed: u64) -> Arc<TaskGraph> {
    Arc::new(
        (seed..seed + 16)
            .find_map(|s| generate_seeded(&spec(), s).ok())
            .expect("a paper workload generates within 16 seed attempts"),
    )
}

/// A randomized request mix: admits at non-decreasing origins, with
/// occasional amendments of previously submitted ids (resident or not —
/// both outcomes must replay identically).
fn request_mix(seed: u64, len: usize) -> Vec<AdmitRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::with_capacity(len);
    let mut origin = 0i64;
    for id in 0..len as u64 {
        if id > 0 && rng.gen_range(0..4u32) == 0 {
            let target = rng.gen_range(0..id);
            let delta = GraphDelta::new().push(DeltaOp::SetWcet {
                subtask: SubtaskId::new(rng.gen_range(0..8u32)),
                wcet: Time::new(rng.gen_range(1..40i64)),
            });
            requests.push(AdmitRequest::Amend { id: target, delta });
        } else {
            origin += rng.gen_range(0..1_500i64);
            requests.push(AdmitRequest::Admit {
                id,
                graph: graph(seed.wrapping_add(id).wrapping_mul(2654435761) % 10_000),
                origin: Time::new(origin),
            });
        }
    }
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole's determinism contract: any request mix pushed
    /// through the concurrent service (parallel slicers, out-of-order
    /// completion, reorder buffer) produces the byte-identical verdict
    /// sequence and final committed state as a fresh sequential
    /// controller handling the same requests one by one.
    #[test]
    fn service_transcript_replays_bit_identically(
        seed in 0u64..1_000,
        workers in 1usize..4,
        len in 4usize..12,
    ) {
        let config = config(8).with_workers(workers).with_queue_depth(64);
        let requests = request_mix(seed, len);

        let service = AdmissionService::new(config.clone()).expect("service starts");
        for request in &requests {
            service.submit(request.clone()).expect("queue is deep enough");
        }
        let log = service.shutdown().expect("service drains and stops");
        prop_assert_eq!(log.outcomes.len(), requests.len());
        prop_assert_eq!(&log.requests, &requests);

        let replayed = log.replay(&config).expect("replay controller builds");
        prop_assert!(
            log.matches(&replayed),
            "service verdicts diverged from sequential replay at seed {}",
            seed
        );
    }

    /// Crash durability: tear an arbitrary number of bytes off the final
    /// write-ahead-log line (as a crash mid-append would) and recovery
    /// must land on exactly the state of the sealed prefix — the torn
    /// record behaves as if the request was never concluded.
    #[test]
    fn recovery_after_a_torn_tail_matches_the_sealed_prefix(
        seed in 0u64..500,
        cut in 1usize..200,
    ) {
        let wal = TempPath::new("torn");
        let requests = request_mix(seed, 6);
        let mut durable =
            AdmissionController::new(config(8).durable(&wal.0)).expect("controller builds");
        for request in &requests {
            let _ = durable.handle(request);
        }
        drop(durable);

        let text = std::fs::read_to_string(&wal.0).expect("wal exists");
        let body = text.trim_end_matches('\n');
        let final_len = body.len() - body.rfind('\n').map_or(0, |p| p + 1);
        // Clamp the tear inside the final record (+1 for its newline), so
        // exactly one record is at stake.
        let cut = cut.min(final_len + 1);
        std::fs::write(&wal.0, &text[..text.len() - cut]).expect("torn wal written");

        // cut == 1 removes only the trailing newline: the final record is
        // still complete. Any deeper cut tears it.
        let expected = if cut == 1 { requests.len() } else { requests.len() - 1 };
        let (recovered, log) =
            AdmissionController::recover(config(8), &wal.0).expect("recovery succeeds");
        prop_assert_eq!(log.outcomes.len(), expected);

        let mut fresh = AdmissionController::new(config(8)).expect("controller builds");
        for request in requests.iter().take(expected) {
            let _ = fresh.handle(request);
        }
        prop_assert_eq!(recovered.digest(), fresh.digest());
        prop_assert_eq!(recovered.residents(), fresh.residents());
    }
}

#[test]
fn rejects_and_failed_amends_leave_no_trace() {
    let mut controller = AdmissionController::new(config(4)).unwrap();

    // Saturate the small platform at a single origin.
    let mut id = 0;
    let rejected = loop {
        let verdict = controller.admit(id, graph(id + 1), Time::ZERO).unwrap();
        if !verdict.admitted {
            break verdict;
        }
        id += 1;
        assert!(id < 64, "4 processors never saturated");
    };
    assert!(!rejected.admitted);
    let digest = controller.digest();
    let residents = controller.residents();

    // A rejected admit left no reservation behind...
    let verdict = controller.admit(99, graph(123), Time::ZERO).unwrap();
    assert!(!verdict.admitted, "saturated platform keeps rejecting");
    assert_eq!(controller.digest(), digest);
    assert_eq!(controller.residents(), residents);

    // ...and an amendment that inflates a resident beyond feasibility is
    // rejected with the original reservation restored bit-identically.
    let inflate = GraphDelta::new().push(DeltaOp::SetWcet {
        subtask: SubtaskId::new(0),
        wcet: Time::new(1_000_000),
    });
    let amended = controller.amend(0, &inflate).unwrap();
    assert!(!amended.admitted, "absurd WCET cannot stay admitted");
    assert_eq!(controller.digest(), digest);
    assert_eq!(controller.residents(), residents);
}

/// The consolidated error surface: admission failures flow through
/// `AdmitError` into the crate-wide `feast::Error` with `?` alone, and
/// the chain preserves the typed variants.
#[test]
fn admission_errors_flow_through_the_unified_error() {
    fn drive() -> Result<(), Error> {
        let mut controller = AdmissionController::new(config(4))?;
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(0),
            wcet: Time::new(5),
        });
        controller.amend(42, &delta)?;
        Ok(())
    }

    let err = drive().expect_err("amending an empty service must fail");
    assert!(matches!(
        err,
        Error::Admit(AdmitError::NoResident { id: 42 })
    ));
    assert!(err.to_string().contains("42"));
    let source = std::error::Error::source(&err).expect("Admit wraps its cause");
    assert!(source.to_string().contains("no resident"));

    // A zero-processor platform is a pipeline error, not a panic.
    let err = AdmissionController::new(config(0)).expect_err("zero processors");
    assert!(matches!(err, AdmitError::Trial(_)));

    // Submitting to a service whose queue has been shut down is
    // impossible by construction (submit consumes &self and shutdown
    // consumes self), so the remaining refusal is backpressure:
    let service = AdmissionService::new(config(4).with_queue_depth(1).with_workers(1)).unwrap();
    let mut saw_full = false;
    for id in 0..64 {
        match service.submit(AdmitRequest::Admit {
            id,
            graph: graph(7),
            origin: Time::ZERO,
        }) {
            Ok(()) => {}
            Err(AdmitError::QueueFull { depth: 1 }) => {
                saw_full = true;
                break;
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert!(saw_full, "rendezvous queue must exert backpressure");
    service.shutdown().unwrap();
}

/// Staleness-aware shedding accounting: every shed request is concluded
/// with a typed outcome, appears in the transcript, is sealed to the WAL,
/// and leaves no trace in committed state — recovery and replay both
/// reproduce the run with the shed requests' (never-run) trials skipped.
#[test]
fn shed_requests_are_accounted_sealed_and_leave_no_trace() {
    let wal = TempPath::new("shed");
    let svc_config = config(8)
        .with_workers(2)
        .with_decision_budget(Duration::ZERO)
        .durable(&wal.0);
    let service = AdmissionService::new(svc_config.clone()).unwrap();
    for id in 0..5 {
        service
            .submit(AdmitRequest::Admit {
                id,
                graph: graph(id + 1),
                origin: Time::ZERO,
            })
            .unwrap();
    }
    let log = service.shutdown().unwrap();
    assert_eq!(log.outcomes.len(), 5, "every request concluded");
    assert_eq!(log.shed(), 5, "zero budget sheds everything");
    assert_eq!(log.admitted() + log.rejected(), 0, "no trial ever ran");
    assert_eq!(log.residents, 0);

    // No trace: the final state is the idle state.
    let idle = AdmissionController::new(config(8)).unwrap();
    assert_eq!(log.digest, idle.digest());

    // The shed outcomes were sealed; recovery adopts them verbatim and
    // lands on the same (idle) digest.
    let (recovered, recovered_log) = AdmissionController::recover(config(8), &wal.0).unwrap();
    assert_eq!(recovered_log.outcomes.len(), 5);
    assert_eq!(recovered_log.shed(), 5);
    assert_eq!(recovered.digest(), idle.digest());
    assert!(log.matches(&recovered_log), "recovered transcript diverged");

    // And the in-memory replay agrees too.
    let replayed = log.replay(&svc_config).unwrap();
    assert!(log.matches(&replayed));
}

/// A service with a generous budget sheds nothing: the budget bounds
/// latency without distorting an unloaded run.
#[test]
fn generous_budget_sheds_nothing() {
    let svc_config = config(8)
        .with_workers(2)
        .with_decision_budget(Duration::from_secs(3600));
    let service = AdmissionService::new(svc_config.clone()).unwrap();
    for id in 0..5 {
        service
            .submit(AdmitRequest::Admit {
                id,
                graph: graph(id + 1),
                origin: Time::new(i64::try_from(id).unwrap() * 700),
            })
            .unwrap();
    }
    let log = service.shutdown().unwrap();
    assert_eq!(log.shed(), 0);
    assert_eq!(log.outcomes.len(), 5);
    assert_eq!(log.admitted() + log.rejected(), 5);
    let replayed = log.replay(&svc_config).unwrap();
    assert!(log.matches(&replayed));
}

/// The durable service: a full service run seals every verdict, and
/// recovery from the WAL is bit-identical to the live transcript.
#[test]
fn durable_service_run_recovers_bit_identically() {
    let wal = TempPath::new("service");
    let svc_config = config(8).with_workers(3).durable(&wal.0);
    let service = AdmissionService::new(svc_config.clone()).unwrap();
    let requests = request_mix(17, 10);
    for request in &requests {
        service.submit(request.clone()).unwrap();
    }
    let log = service.shutdown().unwrap();
    assert_eq!(log.outcomes.len(), requests.len());

    let (recovered, recovered_log) = AdmissionController::recover(config(8), &wal.0).unwrap();
    assert!(log.matches(&recovered_log), "WAL transcript diverged");
    assert_eq!(recovered.digest(), log.digest);
    assert_eq!(recovered.residents(), log.residents);
}

/// Origin-shifted admissions onto an idle platform predict the same
/// lateness as the offline pipeline at time zero: the service is the
/// paper's pipeline, re-anchored — not a different algorithm.
#[test]
fn online_verdicts_match_the_offline_pipeline() {
    let graph = graph(42);
    let platform = platform::Platform::paper(8).unwrap();
    let scenario = config(8).scenario;

    let mut pipeline = feast::Pipeline::new(&scenario);
    let offline = pipeline
        .slice(&graph, &platform)
        .unwrap()
        .trial(&platform)
        .unwrap();

    let mut controller = AdmissionController::new(config(8)).unwrap();
    let online = controller
        .admit(1, Arc::clone(&graph), Time::new(777_777))
        .unwrap();

    assert_eq!(online.admitted, offline.admit);
    assert_eq!(online.max_lateness, offline.max_lateness);
    assert_eq!(online.end_to_end, offline.end_to_end);
    assert_eq!(online.makespan, offline.makespan + Time::new(777_777));
}
