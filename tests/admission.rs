//! Integration coverage of the admission service: the determinism
//! contract (a concurrent service's transcript replays bit-identically
//! through a sequential controller, for arbitrary request mixes), the
//! reject-leaves-no-trace invariant, crash durability (write-ahead log
//! recovery after an arbitrarily torn tail), staleness-aware shedding
//! accounting, and the unified `feast::Error` surface over the admission
//! path.

use feast::{
    AdmissionController, AdmissionService, AdmitConfig, AdmitError, AdmitOutcome, AdmitRequest,
    Error, Scenario,
};
use platform::Platform;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slicing::PrefilterReject;
use slicing::{CommEstimate, DeltaOp, GraphDelta, MetricKind};
use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
use taskgraph::{Subtask, SubtaskId, TaskGraph, TaskGraphBuilder, Time};

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fresh temp-file path; the file is removed by Drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TempPath(std::env::temp_dir().join(format!(
            "feast-admission-it-{tag}-{}-{n}.jsonl",
            std::process::id()
        )))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn spec() -> WorkloadSpec {
    WorkloadSpec::paper(ExecVariation::Mdet)
}

fn config(size: usize) -> AdmitConfig {
    let scenario = Scenario::paper("ADM/IT", spec(), MetricKind::adapt(), CommEstimate::Ccne);
    AdmitConfig::new(scenario, size)
}

/// Generates the first paper workload at or after `seed` (generation can
/// reject a stream; admission callers retry on the next one, so do we).
fn graph(seed: u64) -> Arc<TaskGraph> {
    Arc::new(
        (seed..seed + 16)
            .find_map(|s| generate_seeded(&spec(), s).ok())
            .expect("a paper workload generates within 16 seed attempts"),
    )
}

/// A provably infeasible two-subtask chain: 200 time units of serial
/// WCET against an end-to-end deadline of 50, so both the pre-filter's
/// chain bound and the full slice + trial path must refuse it.
fn infeasible_graph() -> Arc<TaskGraph> {
    let mut b = TaskGraphBuilder::new();
    let head = b.add_subtask(Subtask::new(Time::new(100)).released_at(Time::ZERO));
    let tail = b.add_subtask(Subtask::new(Time::new(100)).due_at(Time::new(50)));
    b.add_edge(head, tail, 1).unwrap();
    Arc::new(b.build().unwrap())
}

/// The platform an [`AdmissionController`] at `size` trials against,
/// derived from the same scenario knobs the controller uses.
fn controller_platform(size: usize) -> Platform {
    let scenario = config(size).scenario;
    Platform::homogeneous(size, scenario.topology.build(size, scenario.cost_per_item)).unwrap()
}

/// A randomized request mix like [`request_mix`], but admits draw from a
/// pool of 3 template graphs so the cross-request slice cache sees
/// repeats (and, at capacity 2, eviction churn).
fn templated_mix(seed: u64, len: usize) -> Vec<AdmitRequest> {
    let templates: Vec<Arc<TaskGraph>> = (0..3)
        .map(|slot| graph((seed % 64) * 31 + slot * 17 + 1))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e3);
    let mut requests = Vec::with_capacity(len);
    let mut origin = 0i64;
    for id in 0..len as u64 {
        if id > 0 && rng.gen_range(0..4u32) == 0 {
            let target = rng.gen_range(0..id);
            let delta = GraphDelta::new().push(DeltaOp::SetWcet {
                subtask: SubtaskId::new(rng.gen_range(0..8u32)),
                wcet: Time::new(rng.gen_range(1..40i64)),
            });
            requests.push(AdmitRequest::Amend { id: target, delta });
        } else {
            origin += rng.gen_range(0..1_500i64);
            requests.push(AdmitRequest::Admit {
                id,
                graph: Arc::clone(&templates[rng.gen_range(0..templates.len())]),
                origin: Time::new(origin),
            });
        }
    }
    requests
}

/// A randomized request mix: admits at non-decreasing origins, with
/// occasional amendments of previously submitted ids (resident or not —
/// both outcomes must replay identically).
fn request_mix(seed: u64, len: usize) -> Vec<AdmitRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::with_capacity(len);
    let mut origin = 0i64;
    for id in 0..len as u64 {
        if id > 0 && rng.gen_range(0..4u32) == 0 {
            let target = rng.gen_range(0..id);
            let delta = GraphDelta::new().push(DeltaOp::SetWcet {
                subtask: SubtaskId::new(rng.gen_range(0..8u32)),
                wcet: Time::new(rng.gen_range(1..40i64)),
            });
            requests.push(AdmitRequest::Amend { id: target, delta });
        } else {
            origin += rng.gen_range(0..1_500i64);
            requests.push(AdmitRequest::Admit {
                id,
                graph: graph(seed.wrapping_add(id).wrapping_mul(2654435761) % 10_000),
                origin: Time::new(origin),
            });
        }
    }
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole's determinism contract: any request mix pushed
    /// through the concurrent service (parallel slicers, out-of-order
    /// completion, reorder buffer) produces the byte-identical verdict
    /// sequence and final committed state as a fresh sequential
    /// controller handling the same requests one by one.
    #[test]
    fn service_transcript_replays_bit_identically(
        seed in 0u64..1_000,
        workers in 1usize..4,
        len in 4usize..12,
    ) {
        let config = config(8).with_workers(workers).with_queue_depth(64);
        let requests = request_mix(seed, len);

        let service = AdmissionService::new(config.clone()).expect("service starts");
        for request in &requests {
            service.submit(request.clone()).expect("queue is deep enough");
        }
        let log = service.shutdown().expect("service drains and stops");
        prop_assert_eq!(log.outcomes.len(), requests.len());
        prop_assert_eq!(&log.requests, &requests);

        let replayed = log.replay(&config).expect("replay controller builds");
        prop_assert!(
            log.matches(&replayed),
            "service verdicts diverged from sequential replay at seed {}",
            seed
        );
    }

    /// Crash durability: tear an arbitrary number of bytes off the final
    /// write-ahead-log line (as a crash mid-append would) and recovery
    /// must land on exactly the state of the sealed prefix — the torn
    /// record behaves as if the request was never concluded.
    #[test]
    fn recovery_after_a_torn_tail_matches_the_sealed_prefix(
        seed in 0u64..500,
        cut in 1usize..200,
    ) {
        let wal = TempPath::new("torn");
        let requests = request_mix(seed, 6);
        let mut durable =
            AdmissionController::new(config(8).durable(&wal.0)).expect("controller builds");
        for request in &requests {
            let _ = durable.handle(request);
        }
        drop(durable);

        let text = std::fs::read_to_string(&wal.0).expect("wal exists");
        let body = text.trim_end_matches('\n');
        let final_len = body.len() - body.rfind('\n').map_or(0, |p| p + 1);
        // Clamp the tear inside the final record (+1 for its newline), so
        // exactly one record is at stake.
        let cut = cut.min(final_len + 1);
        std::fs::write(&wal.0, &text[..text.len() - cut]).expect("torn wal written");

        // cut == 1 removes only the trailing newline: the final record is
        // still complete. Any deeper cut tears it.
        let expected = if cut == 1 { requests.len() } else { requests.len() - 1 };
        let (recovered, log) =
            AdmissionController::recover(config(8), &wal.0).expect("recovery succeeds");
        prop_assert_eq!(log.outcomes.len(), expected);

        let mut fresh = AdmissionController::new(config(8)).expect("controller builds");
        for request in requests.iter().take(expected) {
            let _ = fresh.handle(request);
        }
        prop_assert_eq!(recovered.digest(), fresh.digest());
        prop_assert_eq!(recovered.residents(), fresh.residents());
    }

    /// Slice-cache transparency: for any templated admit/amend mix, the
    /// transcript (every outcome, the final digest, the resident count)
    /// is bit-identical with the cache off, with the default cache, and
    /// with a capacity-2 cache under eviction churn — the cache can make
    /// admission faster, never different. Amendments of cache-hit
    /// residents exercise the memoized-`SliceMemo` repair path.
    #[test]
    fn slice_cache_is_transcript_invisible(
        seed in 0u64..1_000,
        len in 6usize..14,
    ) {
        let requests = templated_mix(seed, len);
        let drive = |cache: usize| {
            let mut controller =
                AdmissionController::new(config(8).with_slice_cache(cache)).unwrap();
            let outcomes: Vec<AdmitOutcome> = requests
                .iter()
                .map(|request| AdmitOutcome::of(&controller.handle(request)))
                .collect();
            (outcomes, controller.digest(), controller.residents())
        };
        let off = drive(0);
        let tiny = drive(2);
        let on = drive(64);
        // A differing transcript at capacity 2 means eviction churn leaked
        // into outcomes; at 64 it means hits did.
        prop_assert_eq!(&off, &tiny);
        prop_assert_eq!(&off, &on);
    }

    /// Chain-bound conservativeness: whenever the pre-filter's critical-
    /// path bound refuses a random chain, the full slice + trial path —
    /// against the most permissive (empty) state — also refuses it.
    #[test]
    fn prefilter_chain_bound_is_conservative(
        len in 2usize..6,
        wcet_seed in 0u64..10_000,
        deadline in 1i64..400,
    ) {
        let mut rng = StdRng::seed_from_u64(wcet_seed);
        let wcets: Vec<i64> = (0..len).map(|_| rng.gen_range(1i64..120)).collect();
        let mut b = TaskGraphBuilder::new();
        let mut prev = None;
        let last = wcets.len() - 1;
        for (i, &w) in wcets.iter().enumerate() {
            let mut subtask = Subtask::new(Time::new(w));
            if i == 0 {
                subtask = subtask.released_at(Time::ZERO);
            }
            if i == last {
                subtask = subtask.due_at(Time::new(deadline));
            }
            let id = b.add_subtask(subtask);
            if let Some(p) = prev {
                b.add_edge(p, id, 1).unwrap();
            }
            prev = Some(id);
        }
        let graph = Arc::new(b.build().unwrap());

        let pipeline = feast::Pipeline::new(&config(2).scenario);
        if let Some(reject) = pipeline.prefilter(&graph, &controller_platform(2)) {
            let chain_kind = matches!(reject, PrefilterReject::ChainBound { .. });
            prop_assert!(chain_kind, "a pure chain can only trip the chain bound");
            let mut full =
                AdmissionController::new(config(2).with_prefilter(false)).unwrap();
            let admitted = match full.admit(0, graph, Time::ZERO) {
                Ok(verdict) => verdict.admitted,
                Err(_) => false,
            };
            prop_assert!(
                !admitted,
                "chain bound refused a graph the full path admits (wcets {:?}, deadline {})",
                wcets,
                deadline
            );
        }
    }

    /// Capacity-bound conservativeness: whenever the pre-filter's total-
    /// demand bound refuses a random fork graph (one source fanning out
    /// to parallel sinks, so the chain bound stays quiet), the full
    /// slice + trial path against an empty state also refuses it.
    #[test]
    fn prefilter_capacity_bound_is_conservative(
        branches in 3usize..10,
        wcet_seed in 0u64..10_000,
        processors in 1usize..3,
        slack in 0i64..40,
    ) {
        let mut rng = StdRng::seed_from_u64(wcet_seed ^ 0xcafe);
        let branch_wcets: Vec<i64> = (0..branches).map(|_| rng.gen_range(5i64..60)).collect();
        let source_wcet = 5i64;
        // Every root-to-sink chain fits the window, so only the demand
        // bound can fire.
        let deadline = source_wcet
            + branch_wcets.iter().copied().max().unwrap()
            + slack;
        let mut b = TaskGraphBuilder::new();
        let source = b.add_subtask(
            Subtask::new(Time::new(source_wcet)).released_at(Time::ZERO),
        );
        for &w in &branch_wcets {
            let sink =
                b.add_subtask(Subtask::new(Time::new(w)).due_at(Time::new(deadline)));
            b.add_edge(source, sink, 1).unwrap();
        }
        let graph = Arc::new(b.build().unwrap());

        let pipeline = feast::Pipeline::new(&config(processors).scenario);
        if let Some(reject) = pipeline.prefilter(&graph, &controller_platform(processors)) {
            if matches!(reject, PrefilterReject::CapacityBound { .. }) {
                let mut full = AdmissionController::new(
                    config(processors).with_prefilter(false),
                )
                .unwrap();
                let admitted = match full.admit(0, graph, Time::ZERO) {
                    Ok(verdict) => verdict.admitted,
                    Err(_) => false,
                };
                prop_assert!(
                    !admitted,
                    "capacity bound refused a graph the full path admits \
                     (branches {:?}, {} processors, deadline {})",
                    branch_wcets,
                    processors,
                    deadline
                );
            }
        }
    }
}

/// Mixed-schema WAL compatibility: logs written before the pre-filter
/// existed (or with it disabled) seal infeasible graphs as rejecting
/// verdicts, while pre-filter-enabled sessions seal them as typed
/// refusals. Recovery replays each record under the schema it was sealed
/// with, so either kind of log recovers bit-identically under either
/// config.
#[test]
fn mixed_schema_wal_recovers_across_prefilter_generations() {
    // Old schema → new config: the sealed record stays a verdict.
    let wal = TempPath::new("mixed-old");
    let mut old =
        AdmissionController::new(config(8).with_prefilter(false).durable(&wal.0)).unwrap();
    old.admit(0, graph(3), Time::ZERO).unwrap();
    let verdict = old.admit(1, infeasible_graph(), Time::new(100)).unwrap();
    assert!(
        !verdict.admitted,
        "full path must reject the infeasible chain"
    );
    old.admit(2, graph(9), Time::new(200)).unwrap();
    let digest = old.digest();
    drop(old);

    let (recovered, log) = AdmissionController::recover(config(8).with_prefilter(true), &wal.0)
        .expect("pre-pre-filter WAL recovers under a pre-filter-enabled config");
    assert_eq!(log.outcomes.len(), 3);
    assert_eq!(recovered.digest(), digest);
    assert_eq!(
        log.prefilter_rejected(),
        0,
        "the sealed reject verdict must not be rewritten into a refusal"
    );
    assert!(matches!(&log.outcomes[1], AdmitOutcome::Verdict(v) if !v.admitted));

    // New schema → old config: the sealed pre-filter refusal replays
    // through the pre-filter even though the session has it disabled.
    let wal = TempPath::new("mixed-new");
    let mut new = AdmissionController::new(config(8).with_prefilter(true).durable(&wal.0)).unwrap();
    new.admit(0, graph(3), Time::ZERO).unwrap();
    let refused = new.admit(1, infeasible_graph(), Time::new(100));
    assert!(matches!(refused, Err(AdmitError::Prefilter(_))));
    new.admit(2, graph(9), Time::new(200)).unwrap();
    let digest = new.digest();
    drop(new);

    let (recovered, log) = AdmissionController::recover(config(8).with_prefilter(false), &wal.0)
        .expect("pre-filter-refusal WAL recovers under a pre-filter-off config");
    assert_eq!(log.outcomes.len(), 3);
    assert_eq!(recovered.digest(), digest);
    assert_eq!(log.prefilter_rejected(), 1);
}

#[test]
fn rejects_and_failed_amends_leave_no_trace() {
    let mut controller = AdmissionController::new(config(4)).unwrap();

    // Saturate the small platform at a single origin.
    let mut id = 0;
    let rejected = loop {
        let verdict = controller.admit(id, graph(id + 1), Time::ZERO).unwrap();
        if !verdict.admitted {
            break verdict;
        }
        id += 1;
        assert!(id < 64, "4 processors never saturated");
    };
    assert!(!rejected.admitted);
    let digest = controller.digest();
    let residents = controller.residents();

    // A rejected admit left no reservation behind...
    let verdict = controller.admit(99, graph(123), Time::ZERO).unwrap();
    assert!(!verdict.admitted, "saturated platform keeps rejecting");
    assert_eq!(controller.digest(), digest);
    assert_eq!(controller.residents(), residents);

    // ...and an amendment that inflates a resident beyond feasibility is
    // rejected with the original reservation restored bit-identically.
    let inflate = GraphDelta::new().push(DeltaOp::SetWcet {
        subtask: SubtaskId::new(0),
        wcet: Time::new(1_000_000),
    });
    let amended = controller.amend(0, &inflate).unwrap();
    assert!(!amended.admitted, "absurd WCET cannot stay admitted");
    assert_eq!(controller.digest(), digest);
    assert_eq!(controller.residents(), residents);
}

/// The consolidated error surface: admission failures flow through
/// `AdmitError` into the crate-wide `feast::Error` with `?` alone, and
/// the chain preserves the typed variants.
#[test]
fn admission_errors_flow_through_the_unified_error() {
    fn drive() -> Result<(), Error> {
        let mut controller = AdmissionController::new(config(4))?;
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(0),
            wcet: Time::new(5),
        });
        controller.amend(42, &delta)?;
        Ok(())
    }

    let err = drive().expect_err("amending an empty service must fail");
    assert!(matches!(
        err,
        Error::Admit(AdmitError::NoResident { id: 42 })
    ));
    assert!(err.to_string().contains("42"));
    let source = std::error::Error::source(&err).expect("Admit wraps its cause");
    assert!(source.to_string().contains("no resident"));

    // A zero-processor platform is a pipeline error, not a panic.
    let err = AdmissionController::new(config(0)).expect_err("zero processors");
    assert!(matches!(err, AdmitError::Trial(_)));

    // Submitting to a service whose queue has been shut down is
    // impossible by construction (submit consumes &self and shutdown
    // consumes self), so the remaining refusal is backpressure:
    let service = AdmissionService::new(config(4).with_queue_depth(1).with_workers(1)).unwrap();
    let mut saw_full = false;
    for id in 0..64 {
        match service.submit(AdmitRequest::Admit {
            id,
            graph: graph(7),
            origin: Time::ZERO,
        }) {
            Ok(()) => {}
            Err(AdmitError::QueueFull { depth: 1 }) => {
                saw_full = true;
                break;
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert!(saw_full, "rendezvous queue must exert backpressure");
    service.shutdown().unwrap();
}

/// Staleness-aware shedding accounting: every shed request is concluded
/// with a typed outcome, appears in the transcript, is sealed to the WAL,
/// and leaves no trace in committed state — recovery and replay both
/// reproduce the run with the shed requests' (never-run) trials skipped.
#[test]
fn shed_requests_are_accounted_sealed_and_leave_no_trace() {
    let wal = TempPath::new("shed");
    let svc_config = config(8)
        .with_workers(2)
        .with_decision_budget(Duration::ZERO)
        .durable(&wal.0);
    let service = AdmissionService::new(svc_config.clone()).unwrap();
    for id in 0..5 {
        service
            .submit(AdmitRequest::Admit {
                id,
                graph: graph(id + 1),
                origin: Time::ZERO,
            })
            .unwrap();
    }
    let log = service.shutdown().unwrap();
    assert_eq!(log.outcomes.len(), 5, "every request concluded");
    assert_eq!(log.shed(), 5, "zero budget sheds everything");
    assert_eq!(log.admitted() + log.rejected(), 0, "no trial ever ran");
    assert_eq!(log.residents, 0);

    // No trace: the final state is the idle state.
    let idle = AdmissionController::new(config(8)).unwrap();
    assert_eq!(log.digest, idle.digest());

    // The shed outcomes were sealed; recovery adopts them verbatim and
    // lands on the same (idle) digest.
    let (recovered, recovered_log) = AdmissionController::recover(config(8), &wal.0).unwrap();
    assert_eq!(recovered_log.outcomes.len(), 5);
    assert_eq!(recovered_log.shed(), 5);
    assert_eq!(recovered.digest(), idle.digest());
    assert!(log.matches(&recovered_log), "recovered transcript diverged");

    // And the in-memory replay agrees too.
    let replayed = log.replay(&svc_config).unwrap();
    assert!(log.matches(&replayed));
}

/// A service with a generous budget sheds nothing: the budget bounds
/// latency without distorting an unloaded run.
#[test]
fn generous_budget_sheds_nothing() {
    let svc_config = config(8)
        .with_workers(2)
        .with_decision_budget(Duration::from_secs(3600));
    let service = AdmissionService::new(svc_config.clone()).unwrap();
    for id in 0..5 {
        service
            .submit(AdmitRequest::Admit {
                id,
                graph: graph(id + 1),
                origin: Time::new(i64::try_from(id).unwrap() * 700),
            })
            .unwrap();
    }
    let log = service.shutdown().unwrap();
    assert_eq!(log.shed(), 0);
    assert_eq!(log.outcomes.len(), 5);
    assert_eq!(log.admitted() + log.rejected(), 5);
    let replayed = log.replay(&svc_config).unwrap();
    assert!(log.matches(&replayed));
}

/// The durable service: a full service run seals every verdict, and
/// recovery from the WAL is bit-identical to the live transcript.
#[test]
fn durable_service_run_recovers_bit_identically() {
    let wal = TempPath::new("service");
    let svc_config = config(8).with_workers(3).durable(&wal.0);
    let service = AdmissionService::new(svc_config.clone()).unwrap();
    let requests = request_mix(17, 10);
    for request in &requests {
        service.submit(request.clone()).unwrap();
    }
    let log = service.shutdown().unwrap();
    assert_eq!(log.outcomes.len(), requests.len());

    let (recovered, recovered_log) = AdmissionController::recover(config(8), &wal.0).unwrap();
    assert!(log.matches(&recovered_log), "WAL transcript diverged");
    assert_eq!(recovered.digest(), log.digest);
    assert_eq!(recovered.residents(), log.residents);
}

/// Origin-shifted admissions onto an idle platform predict the same
/// lateness as the offline pipeline at time zero: the service is the
/// paper's pipeline, re-anchored — not a different algorithm.
#[test]
fn online_verdicts_match_the_offline_pipeline() {
    let graph = graph(42);
    let platform = platform::Platform::paper(8).unwrap();
    let scenario = config(8).scenario;

    let mut pipeline = feast::Pipeline::new(&scenario);
    let offline = pipeline
        .slice(&graph, &platform)
        .unwrap()
        .trial(&platform)
        .unwrap();

    let mut controller = AdmissionController::new(config(8)).unwrap();
    let online = controller
        .admit(1, Arc::clone(&graph), Time::new(777_777))
        .unwrap();

    assert_eq!(online.admitted, offline.admit);
    assert_eq!(online.max_lateness, offline.max_lateness);
    assert_eq!(online.end_to_end, offline.end_to_end);
    assert_eq!(online.makespan, offline.makespan + Time::new(777_777));
}
