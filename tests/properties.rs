//! Property-based tests over randomly generated workloads: invariants of
//! the generator, the slicing algorithm and the scheduler that must hold
//! for *every* input, not just the paper's parameter points.

use platform::{Pinning, Platform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{BusModel, LatenessReport, ListScheduler};
use slicing::{CommEstimate, MetricKind, Slicer, ThresholdSpec};
use taskgraph::analysis::GraphAnalysis;
use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
use taskgraph::{TaskGraph, Time};

/// Strategy: a workload spec spanning a wide parameter space (beyond the
/// paper's defaults).
fn workload_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        8usize..40,   // min subtasks
        2usize..8,    // depth lower bound
        5i64..60,     // MET
        0.0f64..0.99, // exec variation
        1.05f64..3.0, // OLR
        0.0f64..2.5,  // CCR
    )
        .prop_map(|(n_min, d_min, met, var, olr, ccr)| {
            // The subtask count must be able to fill the deepest graph.
            let lo = n_min.max(d_min + 3);
            WorkloadSpec::paper(ExecVariation::Custom(var))
                .with_subtasks(lo..=lo + 20)
                .with_depth(d_min..=d_min + 3)
                .with_mean_exec_time(met)
                .with_olr(olr)
                .with_ccr(ccr)
        })
}

fn metric() -> impl Strategy<Value = MetricKind> {
    prop_oneof![
        Just(MetricKind::norm()),
        Just(MetricKind::pure()),
        (0.1f64..6.0, 0.5f64..2.0).prop_map(|(surplus, factor)| MetricKind::Thres {
            surplus,
            threshold: ThresholdSpec::MetFactor(factor),
        }),
        (0.5f64..2.0).prop_map(|factor| MetricKind::Adapt {
            threshold: ThresholdSpec::MetFactor(factor),
        }),
    ]
}

fn graph_from(spec: &WorkloadSpec, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate(spec, &mut rng).expect("strategy produces valid specs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generator invariants: anchored inputs/outputs, positive execution
    /// times, size within spec, acyclic by construction (build() validates).
    #[test]
    fn generated_graphs_are_well_formed(spec in workload_spec(), seed in 0u64..1_000) {
        let g = graph_from(&spec, seed);
        prop_assert!(g.subtask_count() >= *spec.subtasks.start());
        prop_assert!(g.subtask_count() <= *spec.subtasks.end());
        for id in g.subtask_ids() {
            prop_assert!(g.subtask(id).wcet().is_positive());
        }
        for &i in g.inputs() {
            prop_assert!(g.subtask(i).release().is_some());
        }
        for &o in g.outputs() {
            prop_assert!(g.subtask(o).deadline().is_some());
        }
        let an = GraphAnalysis::new(&g);
        prop_assert!(an.avg_parallelism() >= 1.0 - 1e-9);
        prop_assert!(an.depth() >= *spec.depth.start());
    }

    /// Slicing invariants, for every metric and estimation strategy:
    /// every subtask gets a window, windows respect precedence, inputs and
    /// outputs respect their anchors, and no path window is inverted for
    /// feasible OLRs.
    #[test]
    fn slicing_preserves_structure(
        spec in workload_spec(),
        seed in 0u64..500,
        m in metric(),
        ccaa in proptest::bool::ANY,
        nproc in 1usize..17,
    ) {
        let g = graph_from(&spec, seed);
        let platform = Platform::paper(nproc).unwrap();
        let estimate = if ccaa { CommEstimate::Ccaa } else { CommEstimate::Ccne };
        let asg = Slicer::new(m).with_estimate(estimate).distribute(&g, &platform).unwrap();
        // Inversion-free distributions are always structurally sound;
        // inverted windows (overconstrained instances) are reported and
        // surface as positive lateness instead.
        let report = asg.validate(&g);
        prop_assert!(report.is_ok() || asg.inverted_paths() > 0, "{report}");
        // Window tiling: each window is non-degenerate in the aggregate —
        // the sum of relative deadlines along any edge chain stays within
        // the end-to-end deadline (validated), and laxity is bounded below
        // by -wcet (a window is never negative).
        for id in g.subtask_ids() {
            prop_assert!(asg.window(id).relative_deadline() >= Time::ZERO);
            prop_assert!(asg.laxity(&g, id) >= -g.subtask(id).wcet());
        }
    }

    /// Scheduler invariants: structural validation passes under both bus
    /// models and both release policies, for any pinning-free workload.
    #[test]
    fn schedules_are_structurally_valid(
        spec in workload_spec(),
        seed in 0u64..500,
        m in metric(),
        nproc in 1usize..17,
        respect in proptest::bool::ANY,
        contention in proptest::bool::ANY,
    ) {
        let g = graph_from(&spec, seed);
        let platform = Platform::paper(nproc).unwrap();
        let asg = Slicer::new(m).distribute(&g, &platform).unwrap();
        let bus = if contention { BusModel::Contention } else { BusModel::Delay };
        let schedule = ListScheduler::new()
            .with_respect_release(respect)
            .with_bus_model(bus)
            .schedule(&g, &platform, &asg, &Pinning::new())
            .unwrap();
        let violations = schedule.validate(&g, &platform, &Pinning::new(), contention);
        prop_assert!(violations.is_empty(), "{violations:?}");

        // Lateness is conservative: finish >= start + wcet implies lateness
        // >= laxity lower bound; and makespan bounds every finish.
        let report = LatenessReport::new(&g, &asg, &schedule);
        for id in g.subtask_ids() {
            prop_assert!(schedule.finish(id) <= schedule.makespan());
            prop_assert_eq!(
                schedule.finish(id) - schedule.start(id),
                g.subtask(id).wcet()
            );
        }
        prop_assert_eq!(report.per_subtask().len(), g.subtask_count());
    }

    /// The time-driven schedule on an unlimited machine achieves exactly
    /// -min laxity as its max lateness: with one processor per subtask and
    /// CCNE windows, each subtask starts at its release (messages may delay
    /// receivers, consuming slack, so lateness can exceed the bound but
    /// never beat it).
    #[test]
    fn unlimited_processors_lateness_bounded_by_min_laxity(
        spec in workload_spec(),
        seed in 0u64..200,
    ) {
        let g = graph_from(&spec, seed);
        let nproc = g.subtask_count();
        let platform = Platform::paper(nproc).unwrap();
        let asg = Slicer::bst_pure().distribute(&g, &platform).unwrap();
        let schedule = ListScheduler::new()
            .schedule(&g, &platform, &asg, &Pinning::new())
            .unwrap();
        let report = LatenessReport::new(&g, &asg, &schedule);
        // No schedule can finish earlier than release + wcet, so max
        // lateness is at least -(max laxity); with ample processors it is
        // at least -min_laxity as messages only push finishes later.
        prop_assert!(report.max_lateness() >= -asg.min_laxity(&g));
    }

    /// Paired workloads: the same (base_seed, rep) pair yields identical
    /// graphs regardless of the metric under test — the property the
    /// experiment harness relies on for fair comparisons.
    #[test]
    fn workload_generation_is_metric_independent(spec in workload_spec(), seed in 0u64..300) {
        let a = graph_from(&spec, seed);
        let b = graph_from(&spec, seed);
        prop_assert_eq!(a, b);
    }
}
