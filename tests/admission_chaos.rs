//! Kill-and-recover chaos coverage of the durable admission service.
//!
//! The headline test re-spawns this test binary as a *workload child*
//! (selected by the `ADMIT_CHAOS_WAL` environment variable): the child
//! drives a durable [`AdmissionService`] against a write-ahead log while
//! the parent watches the log grow, SIGKILLs the child mid-stream, and
//! then proves recovery: every verdict sealed before the kill is
//! recovered, the recovered committed state is bit-identical to a fresh
//! sequential controller fed the sealed prefix, and the recovered
//! transcript replays bit-identically.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use feast::{
    AdmissionController, AdmissionService, AdmitConfig, AdmitError, AdmitRequest, Scenario,
};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
use taskgraph::{Subtask, TaskGraph, TaskGraphBuilder, Time};

const CHILD_ENV: &str = "ADMIT_CHAOS_WAL";

fn spec() -> WorkloadSpec {
    WorkloadSpec::paper(ExecVariation::Mdet)
}

fn config(size: usize) -> AdmitConfig {
    let scenario = Scenario::paper("ADM/CHAOS", spec(), MetricKind::adapt(), CommEstimate::Ccne);
    AdmitConfig::new(scenario, size)
}

/// Generates the first paper workload at or after `seed`.
fn graph(seed: u64) -> Arc<TaskGraph> {
    Arc::new(
        (seed..seed + 16)
            .find_map(|s| generate_seeded(&spec(), s).ok())
            .expect("a paper workload generates within 16 seed attempts"),
    )
}

/// A provably infeasible chain (200 units of serial WCET, end-to-end
/// deadline 50): the pre-filter refuses it, and the refusal is sealed to
/// the WAL like any other conclusion.
fn infeasible_graph() -> Arc<TaskGraph> {
    let mut b = TaskGraphBuilder::new();
    let head = b.add_subtask(Subtask::new(Time::new(100)).released_at(Time::ZERO));
    let tail = b.add_subtask(Subtask::new(Time::new(100)).due_at(Time::new(50)));
    b.add_edge(head, tail, 1).unwrap();
    Arc::new(b.build().unwrap())
}

/// The workload child: drive a durable service until the parent kills us.
/// The stream is far longer than the parent lets it run; every conclusion
/// is sealed to the WAL before its verdict returns, so whatever prefix
/// survives the SIGKILL is exactly the set of committed decisions. Every
/// fifth request is provably infeasible, so the sealed prefix always
/// carries pre-filter refusals for recovery to reproduce.
fn run_child(wal: &str) -> ! {
    let config = config(8).with_workers(2).durable(wal);
    let service = AdmissionService::new(config).expect("child service starts");
    for id in 0..1_000_000u64 {
        let request = AdmitRequest::Admit {
            id,
            graph: if id % 5 == 0 {
                infeasible_graph()
            } else {
                graph(id % 64 + 1)
            },
            origin: Time::new(i64::try_from(id).unwrap() * 500),
        };
        loop {
            match service.submit(request.clone()) {
                Ok(()) => break,
                Err(AdmitError::QueueFull { .. }) => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::process::exit(3),
            }
        }
    }
    let _ = service.shutdown();
    std::process::exit(0)
}

/// Newline-terminated records in the log (excluding the header). A line
/// still missing its newline is an append in flight — its verdict has not
/// been returned, so it does not count as sealed.
fn sealed_lines(path: &PathBuf) -> usize {
    std::fs::read(path)
        .map(|bytes| {
            bytes
                .iter()
                .filter(|&&byte| byte == b'\n')
                .count()
                .saturating_sub(1)
        })
        .unwrap_or(0)
}

fn spawn_child(test_name: &str, wal: &PathBuf) -> Child {
    Command::new(std::env::current_exe().expect("test binary path"))
        .arg(test_name)
        .arg("--exact")
        .arg("--nocapture")
        .arg("--test-threads=1")
        .env(CHILD_ENV, wal)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("child spawns")
}

/// SIGKILL the durable service mid-stream, then recover from its WAL.
#[test]
fn sigkill_mid_stream_recovers_every_sealed_verdict() {
    if let Ok(wal) = std::env::var(CHILD_ENV) {
        run_child(&wal);
    }

    let wal = std::env::temp_dir().join(format!(
        "feast-admission-chaos-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&wal).ok();

    let mut child = spawn_child("sigkill_mid_stream_recovers_every_sealed_verdict", &wal);

    // Wait until the child has sealed a healthy prefix, then kill it
    // without ceremony — `Child::kill` delivers SIGKILL on Unix, so the
    // service gets no chance to flush or shut down cleanly.
    const TARGET: usize = 8;
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut observed = 0;
    while Instant::now() < deadline {
        observed = sealed_lines(&wal);
        if observed >= TARGET {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("child exited prematurely with {status} after {observed} sealed records");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL delivered");
    let _ = child.wait();
    assert!(
        observed >= TARGET,
        "child sealed only {observed} records within the deadline"
    );

    // Recovery: every record that was sealed at observation time must
    // survive (a record torn by the kill itself is, by definition, one
    // whose verdict had not yet been returned).
    let (recovered, log) =
        AdmissionController::recover(config(8), &wal).expect("recovery succeeds after SIGKILL");
    assert!(
        log.outcomes.len() >= observed,
        "lost sealed verdicts: observed {observed} before the kill, recovered {}",
        log.outcomes.len()
    );

    // The sealed prefix necessarily contains pre-filter refusals (every
    // fifth request, starting at id 0, is provably infeasible), and each
    // one was recovered as the refusal it was sealed as.
    assert!(
        log.prefilter_rejected() >= observed / 5,
        "expected >= {} recovered pre-filter refusals in {} sealed records, found {}",
        observed / 5,
        log.outcomes.len(),
        log.prefilter_rejected()
    );

    // Bit-identical replay: a fresh sequential controller fed the sealed
    // prefix reproduces the transcript and the recovered state exactly.
    assert_eq!(recovered.digest(), log.digest);
    assert_eq!(recovered.residents(), log.residents);
    let replayed = log.replay(&config(8)).expect("replay builds");
    assert!(
        log.matches(&replayed),
        "recovered transcript diverged from sequential replay"
    );

    std::fs::remove_file(&wal).ok();
}

/// Crash-then-continue: recover from a killed run and keep admitting on
/// the same log; a second recovery sees the combined history.
#[test]
fn recovered_service_continues_on_the_same_log() {
    if std::env::var(CHILD_ENV).is_ok() {
        // Not this test's child mode; only the chaos test runs children.
        return;
    }
    let wal = std::env::temp_dir().join(format!(
        "feast-admission-continue-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&wal).ok();

    let mut durable = AdmissionController::new(config(8).durable(&wal)).unwrap();
    for id in 0..3 {
        durable
            .admit(
                id,
                graph(id + 1),
                Time::new(i64::try_from(id).unwrap() * 500),
            )
            .unwrap();
    }
    drop(durable); // crash stand-in

    let (mut recovered, log) = AdmissionController::recover(config(8), &wal).unwrap();
    assert_eq!(log.outcomes.len(), 3);
    for id in 3..6 {
        recovered
            .admit(
                id,
                graph(id + 1),
                Time::new(i64::try_from(id).unwrap() * 500),
            )
            .unwrap();
    }
    let digest = recovered.digest();
    drop(recovered);

    let (again, full) = AdmissionController::recover(config(8), &wal).unwrap();
    assert_eq!(full.outcomes.len(), 6, "combined history recovered");
    assert_eq!(again.digest(), digest);
    let replayed = full.replay(&config(8)).unwrap();
    assert!(full.matches(&replayed));

    std::fs::remove_file(&wal).ok();
}
