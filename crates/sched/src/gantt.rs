//! Text Gantt charts for schedules.
//!
//! Renders one lane per processor (plus a bus lane when remote transfers
//! exist) scaled to a terminal width, labelling each execution interval
//! with its subtask id. Useful for inspecting small schedules in examples,
//! tests and bug reports.

use std::fmt::Write as _;

use taskgraph::TaskGraph;

use crate::Schedule;

/// Renders `schedule` as a text Gantt chart of roughly `width` columns.
///
/// Each processor gets one lane; executing intervals are drawn with the
/// subtask id (`t3`), truncated to the interval's width, idle time with
/// dots. A final lane shows bus transfers (`m`-labelled) when any message
/// crosses processors.
///
/// # Examples
///
/// ```
/// use platform::{Pinning, Platform};
/// use sched::{gantt, ListScheduler};
/// use slicing::Slicer;
/// use taskgraph::{Subtask, TaskGraph, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TaskGraph::builder();
/// let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
/// let z = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(60)));
/// b.add_edge(a, z, 4)?;
/// let g = b.build()?;
/// let p = Platform::paper(2)?;
/// let asg = Slicer::bst_pure().distribute(&g, &p)?;
/// let s = ListScheduler::new().schedule(&g, &p, &asg, &Pinning::new())?;
/// let chart = gantt::render(&s, &g, 60);
/// assert!(chart.contains("p0"));
/// # Ok(())
/// # }
/// ```
pub fn render(schedule: &Schedule, graph: &TaskGraph, width: usize) -> String {
    let width = width.clamp(20, 400);
    let span = schedule.makespan().as_f64().max(1.0);
    let col = |t: taskgraph::Time| -> usize {
        (((t.as_f64() / span) * (width - 1) as f64).round() as usize).min(width - 1)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "time 0..{} ({} processors, {} remote messages)",
        schedule.makespan(),
        schedule.processor_count(),
        schedule.remote_message_count()
    );

    for proc in 0..schedule.processor_count() {
        let mut lane = vec!['.'; width];
        for entry in schedule.entries() {
            if entry.processor.index() != proc {
                continue;
            }
            let (s, e) = (col(entry.start), col(entry.finish).max(col(entry.start)));
            let label = entry.subtask.to_string();
            let mut chars = label.chars();
            for cell in lane.iter_mut().take(e + 1).skip(s) {
                *cell = chars.next().unwrap_or('=');
            }
        }
        let lane: String = lane.into_iter().collect();
        let _ = writeln!(out, "  p{proc:<2} |{lane}|");
    }

    if schedule.remote_message_count() > 0 {
        let mut lane = vec![' '; width];
        for slot in schedule.messages().iter().flatten() {
            let (s, e) = (col(slot.depart), col(slot.arrive).max(col(slot.depart)));
            let label = slot.edge.to_string();
            let mut chars = label.chars();
            for cell in lane.iter_mut().take(e + 1).skip(s) {
                *cell = chars.next().unwrap_or('~');
            }
        }
        let lane: String = lane.into_iter().collect();
        let _ = writeln!(out, "  bus |{lane}|");
    }

    // Per-subtask legend for small graphs only (keeps big charts readable).
    if graph.subtask_count() <= 12 {
        for entry in schedule.entries() {
            let name = graph.subtask(entry.subtask).name().unwrap_or("-");
            let _ = writeln!(
                out,
                "  {} {:<12} [{:>4}, {:>4}) on {}",
                entry.subtask, name, entry.start, entry.finish, entry.processor
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use platform::{Pinning, Platform};
    use slicing::Slicer;
    use taskgraph::{Subtask, Time};

    use crate::ListScheduler;

    use super::*;

    fn sample() -> (TaskGraph, Schedule) {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(
            Subtask::new(Time::new(10))
                .named("head")
                .released_at(Time::ZERO),
        );
        let x = b.add_subtask(Subtask::new(Time::new(20)));
        let y = b.add_subtask(Subtask::new(Time::new(20)));
        let z = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(200)));
        b.add_edge(a, x, 5).unwrap();
        b.add_edge(a, y, 5).unwrap();
        b.add_edge(x, z, 5).unwrap();
        b.add_edge(y, z, 5).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let asg = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .schedule(&g, &p, &asg, &Pinning::new())
            .unwrap();
        (g, s)
    }

    #[test]
    fn renders_all_lanes() {
        let (g, s) = sample();
        let chart = render(&s, &g, 60);
        assert!(chart.contains("p0 "));
        assert!(chart.contains("p1 "));
        assert!(chart.contains("time 0.."));
        // Small graph: legend lists every subtask with its name.
        assert!(chart.contains("head"));
        for id in g.subtask_ids() {
            assert!(chart.contains(&id.to_string()), "missing {id}");
        }
    }

    #[test]
    fn bus_lane_only_with_remote_messages() {
        let (g, s) = sample();
        let chart = render(&s, &g, 60);
        assert_eq!(
            chart.contains("bus |"),
            s.remote_message_count() > 0,
            "bus lane presence must match remote messages\n{chart}"
        );
    }

    #[test]
    fn width_is_clamped() {
        let (g, s) = sample();
        let narrow = render(&s, &g, 1);
        let lane_len = narrow
            .lines()
            .find(|l| l.contains("p0"))
            .unwrap()
            .chars()
            .filter(|&c| c == '|')
            .count();
        assert_eq!(lane_len, 2);
        let wide = render(&s, &g, 100_000);
        assert!(wide.lines().all(|l| l.len() < 500));
    }

    #[test]
    fn legend_suppressed_for_large_graphs() {
        use rand::SeedableRng;
        use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = generate(&WorkloadSpec::paper(ExecVariation::Ldet), &mut rng).unwrap();
        let p = Platform::paper(4).unwrap();
        let asg = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .schedule(&g, &p, &asg, &Pinning::new())
            .unwrap();
        let chart = render(&s, &g, 80);
        // 4 processor lanes + header + optional bus lane, but no legend.
        assert!(chart.lines().count() <= 6);
    }
}
