//! Lateness analysis — the paper's quality measure for schedules.
//!
//! The *lateness* of a subtask is its completion time minus its absolute
//! deadline: non-positive for deadline-meeting subtasks. The **maximum task
//! lateness** (over all subtasks) is the figure of merit throughout the
//! paper's evaluation: it measures "how far from infeasibility" a schedule
//! is and how much additional background workload it could absorb (§4.1).

use serde::{Deserialize, Serialize};
use slicing::DeadlineAssignment;
use taskgraph::{SubtaskId, TaskGraph, Time};

use crate::Schedule;

/// Lateness statistics of one schedule against one deadline assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatenessReport {
    per_subtask: Vec<Time>,
    max: Time,
    argmax: SubtaskId,
    mean: f64,
    makespan: Time,
    end_to_end_max: Time,
}

impl LatenessReport {
    /// Computes the report for `schedule` under `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule or assignment does not cover `graph`.
    ///
    /// # Examples
    ///
    /// ```
    /// use platform::{Pinning, Platform};
    /// use sched::{LatenessReport, ListScheduler};
    /// use slicing::Slicer;
    /// use taskgraph::{Subtask, TaskGraph, Time};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = TaskGraph::builder();
    /// let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
    /// let z = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(100)));
    /// b.add_edge(a, z, 4)?;
    /// let g = b.build()?;
    /// let p = Platform::paper(2)?;
    /// let asg = Slicer::bst_pure().distribute(&g, &p)?;
    /// let sched = ListScheduler::new().schedule(&g, &p, &asg, &Pinning::new())?;
    /// let report = LatenessReport::new(&g, &asg, &sched);
    /// assert!(report.is_feasible());
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(graph: &TaskGraph, assignment: &DeadlineAssignment, schedule: &Schedule) -> Self {
        assert!(
            graph.subtask_count() > 0
                && assignment.subtask_count() == graph.subtask_count()
                && schedule.entries().len() == graph.subtask_count(),
            "graph, assignment and schedule must cover the same subtasks"
        );

        let per_subtask: Vec<Time> = graph
            .subtask_ids()
            .map(|id| schedule.finish(id) - assignment.absolute_deadline(id))
            .collect();
        let (argmax, max) = per_subtask
            .iter()
            .enumerate()
            .map(|(i, &l)| (SubtaskId::new(i as u32), l))
            .max_by_key(|&(id, l)| (l, std::cmp::Reverse(id)))
            .expect("non-empty graph");
        let mean = per_subtask.iter().map(|l| l.as_f64()).sum::<f64>() / per_subtask.len() as f64;

        let end_to_end_max = graph
            .outputs()
            .iter()
            .map(|&o| {
                let given = graph.subtask(o).deadline().expect("outputs are anchored");
                schedule.finish(o) - given
            })
            .max()
            .expect("validated graphs have outputs");

        LatenessReport {
            per_subtask,
            max,
            argmax,
            mean,
            makespan: schedule.makespan(),
            end_to_end_max,
        }
    }

    /// The lateness of a specific subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the analysed graph.
    pub fn lateness(&self, id: SubtaskId) -> Time {
        self.per_subtask[id.index()]
    }

    /// The maximum task lateness — the paper's headline measure. More
    /// negative is better.
    pub fn max_lateness(&self) -> Time {
        self.max
    }

    /// The subtask attaining the maximum lateness.
    pub fn critical_subtask(&self) -> SubtaskId {
        self.argmax
    }

    /// Mean lateness over all subtasks.
    pub fn mean_lateness(&self) -> f64 {
        self.mean
    }

    /// Maximum lateness of output subtasks against their *given* end-to-end
    /// deadlines (as opposed to their assigned local deadlines).
    pub fn end_to_end_lateness(&self) -> Time {
        self.end_to_end_max
    }

    /// `true` if every subtask met its assigned deadline.
    pub fn is_feasible(&self) -> bool {
        !self.max.is_positive()
    }

    /// The schedule's makespan, for convenience.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Per-subtask lateness values, indexed by subtask.
    pub fn per_subtask(&self) -> &[Time] {
        &self.per_subtask
    }
}

#[cfg(test)]
mod tests {
    use platform::{Pinning, Platform};
    use slicing::Slicer;
    use taskgraph::Subtask;

    use crate::ListScheduler;

    use super::*;

    fn chain(wcets: &[i64], deadline: i64) -> TaskGraph {
        let mut b = TaskGraph::builder();
        let mut prev = None;
        for (i, &c) in wcets.iter().enumerate() {
            let mut s = Subtask::new(Time::new(c));
            if i == 0 {
                s = s.released_at(Time::ZERO);
            }
            if i + 1 == wcets.len() {
                s = s.due_at(Time::new(deadline));
            }
            let id = b.add_subtask(s);
            if let Some(p) = prev {
                b.add_edge(p, id, 10).unwrap();
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_lateness_is_negative_slack() {
        // PURE on a chain of 3 × 20 with D = 120: slack 20 per subtask.
        // With assigned releases honoured, each finishes exactly 20 before
        // its local deadline.
        let g = chain(&[20, 20, 20], 120);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .schedule(&g, &p, &a, &Pinning::new())
            .unwrap();
        let report = LatenessReport::new(&g, &a, &s);
        assert_eq!(report.max_lateness(), Time::new(-20));
        assert!(report.is_feasible());
        assert_eq!(report.mean_lateness(), -20.0);
        for id in g.subtask_ids() {
            assert_eq!(report.lateness(id), Time::new(-20));
        }
        // End-to-end: last finishes at 40 + 20 = ... release 80? No: starts
        // at its window release (80), finishes 100, vs deadline 120.
        assert_eq!(report.end_to_end_lateness(), Time::new(-20));
        assert_eq!(report.makespan(), Time::new(100));
    }

    #[test]
    fn infeasible_when_window_too_tight() {
        // Chain of 2 × 50 with D = 60: any distribution is infeasible.
        let g = chain(&[50, 50], 60);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .schedule(&g, &p, &a, &Pinning::new())
            .unwrap();
        let report = LatenessReport::new(&g, &a, &s);
        assert!(!report.is_feasible());
        assert!(report.max_lateness().is_positive());
        assert!(report.end_to_end_lateness().is_positive());
    }

    #[test]
    fn critical_subtask_identified() {
        let g = chain(&[10, 40], 100);
        let p = Platform::paper(1).unwrap();
        let a = Slicer::bst_norm().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .schedule(&g, &p, &a, &Pinning::new())
            .unwrap();
        let report = LatenessReport::new(&g, &a, &s);
        let crit = report.critical_subtask();
        assert_eq!(report.lateness(crit), report.max_lateness());
        assert_eq!(report.per_subtask().len(), 2);
    }
}
