//! Committed platform load for online admission control.
//!
//! A [`CommittedState`] holds the reservations of every *admitted* task
//! graph — one busy-interval timeline per processor plus the shared bus —
//! so that new requests can be trial-scheduled against the platform's
//! current load without disturbing it:
//!
//! * [`ListScheduler::schedule_against`] seeds a workspace from the state
//!   and schedules a graph into the remaining idle time, **read-only** with
//!   respect to the state (a rejected request leaves no trace);
//! * [`CommittedState::commit`] splices an admitted schedule's reservations
//!   into the state and returns a [`CommitReceipt`];
//! * [`CommittedState::rollback`] undoes exactly that commit (amending the
//!   most recent admission), restoring the state bit-for-bit;
//! * [`CommittedState::release`] retires a resident schedule whose
//!   reservations are no longer needed (departure).
//!
//! The state carries an opaque *token* that changes on every mutation and
//! is restored by a rollback. [`ListScheduler::repair_against`] uses the
//! token recorded at trial time to decide whether a workspace's retained
//! dispatch log is still grounded in the present committed load: token
//! equality implies interval-set equality, because fresh tokens are never
//! reused and `rollback` — the only operation that restores one — provably
//! restores the intervals it stamps.
//!
//! [`ListScheduler::schedule_against`]: crate::ListScheduler::schedule_against
//! [`ListScheduler::repair_against`]: crate::ListScheduler::repair_against

use std::sync::atomic::{AtomicU64, Ordering};

use taskgraph::Time;

use crate::bus::BusModel;
use crate::timeline::Timeline;
use crate::{SchedError, Schedule};

/// Process-global source of [`CommittedState`] identities, so stamps from
/// different states can never compare equal.
static NEXT_STATE_ID: AtomicU64 = AtomicU64::new(1);

/// Identity of a committed-load snapshot: which state, at which token.
///
/// Recorded into the workspace provenance by
/// [`ListScheduler::schedule_against`](crate::ListScheduler::schedule_against)
/// and compared by
/// [`ListScheduler::repair_against`](crate::ListScheduler::repair_against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BaseStamp {
    pub(crate) state: u64,
    pub(crate) token: u64,
}

/// Proof of one [`CommittedState::commit`], required to roll it back.
///
/// A receipt is only honoured while its commit is the *latest* mutation of
/// the state; interleaving another commit or release invalidates it (the
/// rollback would no longer restore a state the token ever named).
#[derive(Debug, Clone, Copy)]
pub struct CommitReceipt {
    before: u64,
    after: u64,
}

/// The committed reservations of every admitted task graph on a platform.
///
/// # Examples
///
/// ```
/// use platform::{Pinning, Platform};
/// use sched::{BusModel, CommittedState, LatenessReport, ListScheduler, SchedWorkspace};
/// use slicing::Slicer;
/// use taskgraph::{Subtask, TaskGraph, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TaskGraph::builder();
/// let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
/// let z = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(100)));
/// b.add_edge(a, z, 4)?;
/// let g = b.build()?;
/// let platform = Platform::paper(2)?;
/// let assignment = Slicer::bst_pure().distribute(&g, &platform)?;
///
/// let mut committed = CommittedState::new(2, BusModel::Delay);
/// let scheduler = ListScheduler::new();
/// let mut ws = SchedWorkspace::new();
/// let schedule =
///     scheduler.schedule_against(&g, &platform, &assignment, &Pinning::new(), &committed, &mut ws)?;
/// if LatenessReport::new(&g, &assignment, &schedule).is_feasible() {
///     committed.commit(&schedule)?;
/// }
/// assert_eq!(committed.residents(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CommittedState {
    pub(crate) procs: Vec<Timeline>,
    pub(crate) bus: Timeline,
    bus_model: BusModel,
    id: u64,
    /// Monotonic mutation counter; fresh token values come from here.
    next_token: u64,
    /// Current content token: changes on every mutation, restored only by
    /// [`CommittedState::rollback`] (which provably restores the content).
    token: u64,
    residents: usize,
}

impl CommittedState {
    /// Creates an empty state for a platform with `processors` processors
    /// whose resident schedules were (and will be) produced under `bus`.
    ///
    /// The bus model is part of the state because only
    /// [`BusModel::Contention`] schedules carry exclusive bus reservations;
    /// mixing models would let delay-model message slots shadow bus time
    /// they never arbitrated for.
    pub fn new(processors: usize, bus: BusModel) -> Self {
        CommittedState {
            procs: (0..processors).map(|_| Timeline::new()).collect(),
            bus: Timeline::new(),
            bus_model: bus,
            id: NEXT_STATE_ID.fetch_add(1, Ordering::Relaxed),
            next_token: 0,
            token: 0,
            residents: 0,
        }
    }

    /// Number of processors the state covers.
    pub fn processor_count(&self) -> usize {
        self.procs.len()
    }

    /// The bus model resident schedules were produced under.
    pub fn bus_model(&self) -> BusModel {
        self.bus_model
    }

    /// Number of schedules currently committed.
    pub fn residents(&self) -> usize {
        self.residents
    }

    /// `true` while no reservations are committed.
    pub fn is_empty(&self) -> bool {
        self.procs.iter().all(|tl| tl.busy().is_empty()) && self.bus.busy().is_empty()
    }

    /// The committed busy intervals of processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the platform.
    pub fn processor_busy(&self, p: usize) -> &[(Time, Time)] {
        self.procs[p].busy()
    }

    /// The committed bus reservations (empty under [`BusModel::Delay`]).
    pub fn bus_busy(&self) -> &[(Time, Time)] {
        self.bus.busy()
    }

    /// An order-sensitive FNV-1a digest of every committed interval: equal
    /// digests across snapshots of the *same* state mean equal content.
    /// Used by invariant tests (reject-leaves-no-trace) and replay checks.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: i64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        for tl in self.procs.iter().chain(std::iter::once(&self.bus)) {
            mix(-1);
            for &(s, e) in tl.busy() {
                mix(s.as_i64());
                mix(e.as_i64());
            }
        }
        h
    }

    pub(crate) fn stamp(&self) -> BaseStamp {
        BaseStamp {
            state: self.id,
            token: self.token,
        }
    }

    /// Stamps a fresh, never-reused token after a mutation.
    fn touch(&mut self) {
        self.next_token += 1;
        self.token = self.next_token;
    }

    /// Commits `schedule`'s reservations into the state.
    ///
    /// `schedule` must have been produced by
    /// [`ListScheduler::schedule_against`](crate::ListScheduler::schedule_against)
    /// over this state *at its current token* — its reservations are spliced
    /// in unchecked (debug builds assert non-overlap), so a schedule trialled
    /// against other load would silently double-book the platform.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::BaseMismatch`] if the schedule covers a
    /// different number of processors than the state.
    pub fn commit(&mut self, schedule: &Schedule) -> Result<CommitReceipt, SchedError> {
        self.check_shape(schedule)?;
        let before = self.token;
        for entry in schedule.entries() {
            self.procs[entry.processor.index()].reserve(entry.start, entry.finish - entry.start);
        }
        if self.bus_model == BusModel::Contention {
            for slot in schedule.messages().iter().flatten() {
                self.bus.reserve(slot.depart, slot.arrive - slot.depart);
            }
        }
        self.residents += 1;
        self.touch();
        Ok(CommitReceipt {
            before,
            after: self.token,
        })
    }

    /// Rolls back the commit named by `receipt`, restoring the state —
    /// content *and* token — to the instant before it. Only the latest
    /// commit can be rolled back; this is the amend path of an admission
    /// service (retract the most recent admission, re-trial a changed
    /// version of it, commit again or restore the original).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::RollbackMismatch`] if the state was mutated
    /// since that commit; the reservations are left untouched. Callers then
    /// fall back to [`CommittedState::release`] plus a full re-trial.
    pub fn rollback(
        &mut self,
        schedule: &Schedule,
        receipt: &CommitReceipt,
    ) -> Result<(), SchedError> {
        if self.token != receipt.after {
            return Err(SchedError::RollbackMismatch);
        }
        self.check_shape(schedule)?;
        self.remove(schedule);
        // The commit being undone was the latest mutation, so releasing its
        // reservations restores exactly the content `receipt.before` named;
        // restoring the token re-validates retained workspace state built
        // against it.
        self.token = receipt.before;
        Ok(())
    }

    /// Releases a resident schedule's reservations (departure). Unlike
    /// [`CommittedState::rollback`] this stamps a *fresh* token: the
    /// resulting content is new, so retained workspace state grounded in
    /// any earlier token must re-trial from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::BaseMismatch`] if the schedule covers a
    /// different number of processors than the state.
    pub fn release(&mut self, schedule: &Schedule) -> Result<(), SchedError> {
        self.check_shape(schedule)?;
        self.remove(schedule);
        self.touch();
        Ok(())
    }

    fn remove(&mut self, schedule: &Schedule) {
        for entry in schedule.entries() {
            self.procs[entry.processor.index()].release(entry.start, entry.finish - entry.start);
        }
        if self.bus_model == BusModel::Contention {
            for slot in schedule.messages().iter().flatten() {
                self.bus.release(slot.depart, slot.arrive - slot.depart);
            }
        }
        self.residents = self.residents.saturating_sub(1);
    }

    fn check_shape(&self, schedule: &Schedule) -> Result<(), SchedError> {
        if schedule.processor_count() != self.procs.len() {
            return Err(SchedError::BaseMismatch(format!(
                "schedule covers {} processors but the committed state has {}",
                schedule.processor_count(),
                self.procs.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use platform::{Pinning, Platform};
    use slicing::Slicer;
    use taskgraph::{Subtask, TaskGraph, Time};

    use crate::{ListScheduler, SchedWorkspace};

    use super::*;

    fn chain(wcets: &[i64], deadline: i64) -> TaskGraph {
        let mut b = TaskGraph::builder();
        let mut prev = None;
        for (i, &c) in wcets.iter().enumerate() {
            let mut s = Subtask::new(Time::new(c));
            if i == 0 {
                s = s.released_at(Time::ZERO);
            }
            if i + 1 == wcets.len() {
                s = s.due_at(Time::new(deadline));
            }
            let id = b.add_subtask(s);
            if let Some(p) = prev {
                b.add_edge(p, id, 10).unwrap();
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn empty_state_reports_empty() {
        let s = CommittedState::new(4, BusModel::Delay);
        assert_eq!(s.processor_count(), 4);
        assert_eq!(s.residents(), 0);
        assert!(s.is_empty());
        assert!(s.processor_busy(0).is_empty());
        assert!(s.bus_busy().is_empty());
        assert_eq!(s.bus_model(), BusModel::Delay);
    }

    #[test]
    fn commit_then_rollback_restores_content_and_token() {
        let g = chain(&[20, 20], 200);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let mut state = CommittedState::new(2, BusModel::Contention);
        let scheduler = ListScheduler::new().with_bus_model(BusModel::Contention);
        let mut ws = SchedWorkspace::new();

        let before_digest = state.digest();
        let before_stamp = state.stamp();
        let schedule = scheduler
            .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
            .unwrap();
        // Trialling leaves no trace.
        assert_eq!(state.digest(), before_digest);
        assert_eq!(state.stamp(), before_stamp);

        let receipt = state.commit(&schedule).unwrap();
        assert_eq!(state.residents(), 1);
        assert!(!state.is_empty());
        assert_ne!(state.stamp(), before_stamp);

        state.rollback(&schedule, &receipt).unwrap();
        assert_eq!(state.residents(), 0);
        assert_eq!(state.digest(), before_digest);
        assert_eq!(state.stamp(), before_stamp);
        assert!(state.is_empty());
    }

    #[test]
    fn stale_rollback_rejected_and_leaves_state_untouched() {
        let g = chain(&[10, 10], 200);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let mut state = CommittedState::new(2, BusModel::Delay);
        let scheduler = ListScheduler::new();
        let mut ws = SchedWorkspace::new();

        let s1 = scheduler
            .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
            .unwrap();
        let r1 = state.commit(&s1).unwrap();
        let s2 = scheduler
            .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
            .unwrap();
        let _r2 = state.commit(&s2).unwrap();

        let digest = state.digest();
        assert!(matches!(
            state.rollback(&s1, &r1),
            Err(SchedError::RollbackMismatch)
        ));
        assert_eq!(state.digest(), digest);
        assert_eq!(state.residents(), 2);
    }

    #[test]
    fn release_frees_time_but_stamps_a_fresh_token() {
        let g = chain(&[10, 10], 200);
        let p = Platform::paper(1).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let mut state = CommittedState::new(1, BusModel::Delay);
        let scheduler = ListScheduler::new();
        let mut ws = SchedWorkspace::new();

        let empty_digest = state.digest();
        let empty_stamp = state.stamp();
        let s = scheduler
            .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
            .unwrap();
        state.commit(&s).unwrap();
        state.release(&s).unwrap();
        assert_eq!(state.digest(), empty_digest);
        assert_eq!(state.residents(), 0);
        // Same content, different token: retained trial state must not be
        // trusted after an arbitrary release.
        assert_ne!(state.stamp(), empty_stamp);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = chain(&[10, 10], 200);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .schedule(&g, &p, &a, &Pinning::new())
            .unwrap();
        let mut state = CommittedState::new(4, BusModel::Delay);
        assert!(matches!(state.commit(&s), Err(SchedError::BaseMismatch(_))));
        assert!(matches!(
            state.release(&s),
            Err(SchedError::BaseMismatch(_))
        ));
    }

    #[test]
    fn stamps_from_different_states_never_compare_equal() {
        let a = CommittedState::new(1, BusModel::Delay);
        let b = CommittedState::new(1, BusModel::Delay);
        assert_ne!(a.stamp(), b.stamp());
    }
}
