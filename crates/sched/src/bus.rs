//! Communication models for the interconnect.
//!
//! The paper assumes the shared bus is time-multiplexed at one time unit per
//! data item and that communication proceeds concurrently with computation
//! (§5.1). Two models are provided:
//!
//! * [`BusModel::Delay`] — every remote message experiences exactly its
//!   nominal cost; transfers never queue behind each other. This matches the
//!   paper's description and is the default in all headline experiments.
//! * [`BusModel::Contention`] — remote transfers additionally serialize
//!   through a single shared medium: a transfer occupies the bus for its
//!   nominal cost and queues for the earliest free slot. An extension used
//!   by the ablation experiments.

use serde::{Deserialize, Serialize};

/// How interconnect bandwidth is modelled during scheduling.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusModel {
    /// Fixed per-message delay, unlimited bandwidth (the paper's model).
    #[default]
    Delay,
    /// Transfers serialize through one shared medium (bus contention).
    Contention,
}

impl BusModel {
    /// A short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            BusModel::Delay => "delay",
            BusModel::Contention => "contention",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(BusModel::Delay.label(), "delay");
        assert_eq!(BusModel::Contention.label(), "contention");
        assert_eq!(BusModel::default(), BusModel::Delay);
    }
}
