//! Error type for scheduling.

use std::error::Error;
use std::fmt;

use platform::PlatformError;
use taskgraph::SubtaskId;

/// Error produced by [`ListScheduler::schedule`].
///
/// [`ListScheduler::schedule`]: crate::ListScheduler::schedule
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The deadline assignment covers a different number of subtasks than
    /// the graph being scheduled.
    AssignmentMismatch {
        /// Subtasks in the graph.
        graph_subtasks: usize,
        /// Subtasks in the assignment.
        assignment_subtasks: usize,
    },
    /// A pinning constraint is invalid for the platform or graph.
    Platform(PlatformError),
    /// A subtask could not be scheduled (indicates an internal bug: list
    /// scheduling always places every subtask of a DAG).
    Unschedulable(SubtaskId),
    /// A committed base state is incompatible with the platform, scheduler
    /// configuration, or schedule it was used with.
    BaseMismatch(String),
    /// A [`CommittedState::rollback`] receipt no longer names the state's
    /// latest mutation; the rollback was refused.
    ///
    /// [`CommittedState::rollback`]: crate::CommittedState::rollback
    RollbackMismatch,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::AssignmentMismatch {
                graph_subtasks,
                assignment_subtasks,
            } => write!(
                f,
                "deadline assignment covers {assignment_subtasks} subtasks but the graph has {graph_subtasks}"
            ),
            SchedError::Platform(e) => write!(f, "invalid platform configuration: {e}"),
            SchedError::Unschedulable(id) => write!(f, "subtask {id} could not be placed"),
            SchedError::BaseMismatch(detail) => {
                write!(f, "committed state mismatch: {detail}")
            }
            SchedError::RollbackMismatch => write!(
                f,
                "rollback receipt is stale: the committed state was mutated since that commit"
            ),
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for SchedError {
    fn from(e: PlatformError) -> Self {
        SchedError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SchedError::AssignmentMismatch {
            graph_subtasks: 3,
            assignment_subtasks: 5,
        };
        assert!(e.to_string().contains('3'));
        let p = SchedError::from(PlatformError::NoProcessors);
        assert!(p.to_string().contains("platform"));
        assert!(p.source().is_some());
        assert!(SchedError::Unschedulable(SubtaskId::new(2))
            .to_string()
            .contains("t2"));
    }
}
