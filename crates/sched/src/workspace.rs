//! Reusable scratch state for [`ListScheduler`](crate::ListScheduler).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use platform::{Platform, ProcessorId};
use taskgraph::{SubtaskId, Time};

use crate::committed::BaseStamp;
use crate::list::ListScheduler;
use crate::misslog::MissLog;
use crate::timeline::Timeline;
use crate::{MessageSlot, ScheduleEntry};

/// Reusable scratch buffers for
/// [`ListScheduler::schedule_with`](crate::ListScheduler::schedule_with).
///
/// Scheduling a graph needs per-subtask placement state, per-edge message
/// slots, one reservation timeline per processor (plus the bus and a trial
/// snapshot of it), a ready queue, and a handful of smaller buffers. A workspace owns
/// all of them, so a caller that schedules many times — the FEAST runner
/// schedules once per metric per replication, thousands of times per sweep —
/// pays the allocations once and then runs the scheduler allocation-free in
/// steady state: `schedule_with` resizes the buffers to the incoming
/// graph/platform and clears them, reusing every previously grown
/// allocation. The only per-call allocations left are the two `Vec`s handed
/// to the returned [`Schedule`](crate::Schedule), which owns its entries and
/// message slots by value.
///
/// A workspace never leaks state *into* a run — `schedule_with` fully
/// resets it on entry, so a workspace may be reused freely across different
/// graphs, platforms, scheduler configurations, and even after a panic
/// unwound through a previous call. (The only state that survives a reset
/// is configuration the caller attached deliberately: the optional
/// [`MissLog`] set via [`SchedWorkspace::set_miss_log`].) It *does* retain
/// state **out of** a successful run: the committed timelines, placements,
/// and a dispatch log tagged with the run's provenance, which
/// [`ListScheduler::repair`] consumes to rebuild only the suffix of a
/// schedule downstream of a change. Calls that cannot use that state
/// simply reset it; nothing a later full `schedule_with` produces can be
/// affected by it. It is deliberately *not* `Clone`: hand each worker
/// thread its own via [`SchedWorkspace::new`].
///
/// # Examples
///
/// ```
/// use platform::{Pinning, Platform};
/// use rand::SeedableRng;
/// use sched::{ListScheduler, SchedWorkspace};
/// use slicing::Slicer;
/// use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = WorkloadSpec::paper(ExecVariation::Mdet);
/// let platform = Platform::paper(8)?;
/// let scheduler = ListScheduler::new();
/// let mut ws = SchedWorkspace::new();
/// for seed in 0..4 {
///     let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
///     let graph = generate(&spec, &mut rng)?;
///     let assignment = Slicer::ast_adapt().distribute(&graph, &platform)?;
///     // Identical output to `schedule`, but buffers are reused.
///     let s = scheduler.schedule_with(&graph, &platform, &assignment, &Pinning::new(), &mut ws)?;
///     assert!(s.validate(&graph, &platform, &Pinning::new(), false).is_empty());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SchedWorkspace {
    /// Per subtask: its committed schedule entry, once dispatched.
    pub(crate) placed: Vec<Option<ScheduleEntry>>,
    /// Per edge: the committed message slot for remote transfers. Handed to
    /// the returned `Schedule` by value (`mem::take`) at the end of a run.
    pub(crate) messages: Vec<Option<MessageSlot>>,
    /// One busy-interval timeline per processor.
    pub(crate) procs: Vec<Timeline>,
    /// The shared-bus timeline (only mutated under contention).
    pub(crate) bus: Timeline,
    /// Snapshot of `bus` used to estimate candidate starts without
    /// committing their reservations.
    pub(crate) trial_bus: Timeline,
    /// Per subtask: number of still-unscheduled predecessors.
    pub(crate) missing_preds: Vec<usize>,
    /// Schedulable subtasks, min-ordered by `(absolute deadline, id)`.
    pub(crate) ready: BinaryHeap<Reverse<(Time, SubtaskId)>>,
    /// All platform processors, hoisted once per `schedule_with` call so
    /// unpinned dispatches don't rebuild the candidate list.
    pub(crate) all_procs: Vec<ProcessorId>,
    /// Message slots produced while estimating the current candidate.
    pub(crate) trial_slots: Vec<MessageSlot>,
    /// Message slots of the best candidate so far, spliced in on commit.
    pub(crate) best_slots: Vec<MessageSlot>,
    /// Optional deadline-miss warning budget shared across calls (and,
    /// via `Arc`, across workspaces). Configuration, not scratch: `reset`
    /// leaves it in place.
    pub(crate) miss_log: Option<Arc<MissLog>>,
    /// Commit-ordered record of the last successful run's dispatches —
    /// the replay script [`ListScheduler::repair`] diffs against.
    pub(crate) log: Vec<DispatchRecord>,
    /// What the last successful run ran *on*. `repair` refuses to reuse
    /// retained state unless this matches its inputs exactly.
    pub(crate) provenance: Option<Provenance>,
}

/// One committed dispatch of the last successful run, in commit order:
/// every input of the placement decision that is not derived from earlier
/// placements. If these match (and every earlier dispatch matched), the
/// dispatch is bit-identical by induction and its entry can be kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DispatchRecord {
    /// Which subtask was dispatched at this position.
    pub(crate) subtask: SubtaskId,
    /// The placement lower bound independent of predecessor data: the
    /// assigned release (when respected) joined with the given release.
    pub(crate) static_lb: Time,
    /// Execution time reserved on the winning processor.
    pub(crate) wcet: Time,
    /// The locality constraint in force, if any.
    pub(crate) pinned: Option<ProcessorId>,
}

/// Identity of the problem the retained workspace state belongs to.
/// Everything a dispatch reads that the per-dispatch [`DispatchRecord`]s
/// don't cover: scheduler configuration, the platform (processor count and
/// communication costs), and the exact edge structure with message sizes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Provenance {
    pub(crate) scheduler: ListScheduler,
    pub(crate) platform: Platform,
    pub(crate) subtasks: usize,
    pub(crate) edges: Vec<(u32, u32, u64)>,
    /// The committed-load snapshot the run was seeded from: `None` for a
    /// plain [`ListScheduler::schedule_with`] (empty platform), the base
    /// state's stamp for
    /// [`ListScheduler::schedule_against`](crate::ListScheduler::schedule_against).
    /// Repairs refuse retained state whose base no longer matches.
    pub(crate) base: Option<BaseStamp>,
}

impl SchedWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SchedWorkspace::default()
    }

    /// Attaches (or with `None`, detaches) a shared [`MissLog`] that
    /// rate-limits the scheduler's per-subtask deadline-miss warnings
    /// across every `schedule_with` call through this workspace. Without
    /// one, every miss warns — the standalone default.
    pub fn set_miss_log(&mut self, log: Option<Arc<MissLog>>) {
        self.miss_log = log;
    }

    /// Sizes every buffer for a `subtasks`/`edges`/`processors` problem and
    /// clears all state left over from the previous run.
    pub(crate) fn reset(&mut self, subtasks: usize, edges: usize, processors: usize) {
        self.placed.clear();
        self.placed.resize(subtasks, None);
        self.messages.clear();
        self.messages.resize(edges, None);
        for tl in &mut self.procs {
            tl.clear();
        }
        self.procs.resize_with(processors, Timeline::new);
        self.bus.clear();
        self.trial_bus.clear();
        self.missing_preds.clear();
        self.ready.clear();
        self.all_procs.clear();
        self.trial_slots.clear();
        self.best_slots.clear();
        self.log.clear();
        self.provenance = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_sizes_and_clears() {
        let mut ws = SchedWorkspace::new();
        ws.reset(3, 2, 4);
        assert_eq!(ws.placed.len(), 3);
        assert_eq!(ws.messages.len(), 2);
        assert_eq!(ws.procs.len(), 4);
        ws.placed[0] = Some(ScheduleEntry {
            subtask: SubtaskId::new(0),
            processor: ProcessorId::new(0),
            start: Time::ZERO,
            finish: Time::new(5),
        });
        ws.ready.push(Reverse((Time::ZERO, SubtaskId::new(0))));
        // Shrinking and growing both land clean.
        ws.reset(1, 0, 2);
        assert_eq!(ws.placed, vec![None]);
        assert!(ws.messages.is_empty());
        assert_eq!(ws.procs.len(), 2);
        assert!(ws.ready.is_empty());
        ws.reset(5, 3, 8);
        assert!(ws.placed.iter().all(Option::is_none));
        assert_eq!(ws.procs.len(), 8);
    }
}
