//! Rate limiting for the scheduler's deadline-miss warnings.
//!
//! The list scheduler emits a `tracing` WARN for every subtask whose
//! finish time exceeds its assigned deadline. Standalone that is the
//! right default, but a million-replication sweep over infeasible
//! parameter points would flood stderr with millions of identical lines.
//! A [`MissLog`] caps the warnings: the first `limit` misses log normally,
//! the rest are counted so the driver can emit one summary at the end.
//!
//! Attach one to a [`SchedWorkspace`](crate::SchedWorkspace) via
//! [`set_miss_log`](crate::SchedWorkspace::set_miss_log); schedulers
//! called without one warn unlimited, exactly as before.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared, thread-safe deadline-miss warning budget.
///
/// Cheap enough for the scheduler's hot path: deciding whether to log is
/// one relaxed atomic increment.
#[derive(Debug, Default)]
pub struct MissLog {
    limit: u64,
    emitted: AtomicU64,
    suppressed: AtomicU64,
}

impl MissLog {
    /// A log that lets the first `limit` misses through.
    pub fn new(limit: u64) -> MissLog {
        MissLog {
            limit,
            emitted: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Notes one deadline miss; returns whether the caller should emit
    /// its warning (the first `limit` calls) or stay silent (counted as
    /// suppressed).
    pub fn note(&self) -> bool {
        // Claim a slot first: concurrent callers each get a distinct
        // ticket, so exactly `limit` warnings are emitted.
        let ticket = self.emitted.fetch_add(1, Ordering::Relaxed);
        if ticket < self.limit {
            true
        } else {
            self.emitted.fetch_sub(1, Ordering::Relaxed);
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Whether the warning budget is spent. One relaxed load: the hot
    /// path of a miss-heavy schedule batches its suppressed count locally
    /// behind this check and flushes once via
    /// [`suppress_many`](MissLog::suppress_many).
    pub fn is_exhausted(&self) -> bool {
        self.emitted.load(Ordering::Relaxed) >= self.limit
    }

    /// Notes `n` suppressed misses in one atomic operation.
    pub fn suppress_many(&self, n: u64) {
        if n > 0 {
            self.suppressed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The warning budget this log was created with.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Warnings emitted so far (at most [`limit`](MissLog::limit)).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Misses noted beyond the budget.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Total misses noted (emitted + suppressed).
    pub fn total(&self) -> u64 {
        self.emitted() + self.suppressed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_k_pass_then_suppressed() {
        let log = MissLog::new(3);
        let decisions: Vec<bool> = (0..5).map(|_| log.note()).collect();
        assert_eq!(decisions, [true, true, true, false, false]);
        assert_eq!(log.emitted(), 3);
        assert_eq!(log.suppressed(), 2);
        assert_eq!(log.total(), 5);
        assert_eq!(log.limit(), 3);
    }

    #[test]
    fn batched_suppression_matches_per_miss_notes() {
        let log = MissLog::new(2);
        assert!(!log.is_exhausted());
        assert!(log.note());
        assert!(log.note());
        assert!(log.is_exhausted());
        log.suppress_many(5);
        log.suppress_many(0);
        assert_eq!(log.emitted(), 2);
        assert_eq!(log.suppressed(), 5);
        assert_eq!(log.total(), 7);
    }

    #[test]
    fn zero_budget_suppresses_everything() {
        let log = MissLog::new(0);
        assert!(!log.note());
        assert_eq!(log.emitted(), 0);
        assert_eq!(log.suppressed(), 1);
    }

    #[test]
    fn concurrent_notes_emit_exactly_the_budget() {
        use std::sync::Arc;
        let log = Arc::new(MissLog::new(8));
        let total = 64;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for _ in 0..total / 4 {
                        log.note();
                    }
                });
            }
        });
        assert_eq!(log.emitted(), 8);
        assert_eq!(log.suppressed(), total - 8);
        assert_eq!(log.total(), total);
    }
}
