//! A reservation timeline for an exclusive resource (a processor or the
//! shared bus): disjoint busy intervals with earliest-gap queries.

use taskgraph::Time;

/// Disjoint, sorted busy intervals `[start, end)` on one exclusive
/// resource.
#[derive(Debug, Default)]
pub(crate) struct Timeline {
    busy: Vec<(Time, Time)>,
    /// End of the latest reservation (for append-style allocation).
    horizon: Time,
}

impl Clone for Timeline {
    fn clone(&self) -> Self {
        Timeline {
            busy: self.busy.clone(),
            horizon: self.horizon,
        }
    }

    /// Reuses the existing interval buffer: the scheduler re-snapshots the
    /// bus timeline for every candidate processor of every dispatch, so
    /// this must not allocate once the buffer has grown.
    fn clone_from(&mut self, source: &Self) {
        self.busy.clone_from(&source.busy);
        self.horizon = source.horizon;
    }
}

impl Timeline {
    pub(crate) fn new() -> Self {
        Timeline::default()
    }

    /// The earliest start `t ≥ earliest` such that `[t, t + duration)` is
    /// free. Zero-duration requests are always placeable at `earliest`.
    pub(crate) fn earliest_gap(&self, earliest: Time, duration: Time) -> Time {
        if !duration.is_positive() {
            return earliest;
        }
        let mut candidate = earliest;
        for &(s, e) in &self.busy {
            if candidate + duration <= s {
                break;
            }
            if e > candidate {
                candidate = e;
            }
        }
        candidate
    }

    /// The earliest start `t ≥ earliest` with nothing scheduled earlier
    /// than `t + duration` — append semantics (no gap reuse).
    pub(crate) fn append_start(&self, earliest: Time) -> Time {
        earliest.max(self.horizon)
    }

    /// End of the latest reservation so far.
    #[cfg(test)]
    pub(crate) fn horizon(&self) -> Time {
        self.horizon
    }

    /// Reserves `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the slot overlaps an existing reservation;
    /// callers must query [`earliest_gap`](Self::earliest_gap) or
    /// [`append_start`](Self::append_start) first.
    pub(crate) fn reserve(&mut self, start: Time, duration: Time) {
        if !duration.is_positive() {
            return;
        }
        let end = start + duration;
        let idx = self.busy.partition_point(|&(s, _)| s < start);
        debug_assert!(
            idx == 0 || self.busy[idx - 1].1 <= start,
            "slot overlaps previous reservation"
        );
        debug_assert!(
            idx == self.busy.len() || end <= self.busy[idx].0,
            "slot overlaps next reservation"
        );
        self.busy.insert(idx, (start, end));
        self.horizon = self.horizon.max(end);
    }

    /// Busy intervals, for tests.
    #[cfg(test)]
    pub(crate) fn busy(&self) -> &[(Time, Time)] {
        &self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::new(x)
    }

    #[test]
    fn gap_in_empty_timeline() {
        let tl = Timeline::new();
        assert_eq!(tl.earliest_gap(t(5), t(10)), t(5));
        assert_eq!(tl.earliest_gap(t(5), t(0)), t(5));
        assert_eq!(tl.append_start(t(3)), t(3));
    }

    #[test]
    fn reservations_block_overlaps() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(10));
        assert_eq!(tl.earliest_gap(t(0), t(5)), t(10));
        tl.reserve(t(10), t(5));
        assert_eq!(tl.busy(), &[(t(0), t(10)), (t(10), t(15))]);
        assert_eq!(tl.earliest_gap(t(2), t(1)), t(15));
        assert_eq!(tl.horizon(), t(15));
    }

    #[test]
    fn short_requests_fit_into_gaps_long_ones_do_not() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(10));
        tl.reserve(t(30), t(10));
        // A 15-unit request fits between the reservations ...
        assert_eq!(tl.earliest_gap(t(0), t(15)), t(10));
        // ... a 25-unit request must wait until after both.
        assert_eq!(tl.earliest_gap(t(0), t(25)), t(40));
        // Append ignores the gap entirely.
        assert_eq!(tl.append_start(t(0)), t(40));
    }

    #[test]
    fn zero_duration_never_reserves() {
        let mut tl = Timeline::new();
        tl.reserve(t(3), t(0));
        assert!(tl.busy().is_empty());
        assert_eq!(tl.horizon(), t(0));
    }
}
