//! A reservation timeline for an exclusive resource (a processor or the
//! shared bus): disjoint busy intervals with earliest-gap queries.
//!
//! The interval set is kept sorted, disjoint **and coalesced** — a
//! reservation that touches an existing interval extends it instead of
//! adding a new element. Coalescing never changes what
//! [`earliest_gap`](Timeline::earliest_gap) or
//! [`append_start`](Timeline::append_start) return (merging `[a, b)` and
//! `[b, c)` into `[a, c)` removes no free time and adds none), but it
//! keeps the interval count `K` proportional to the number of *gaps*
//! rather than the number of reservations: a processor packed
//! back-to-back by insertion-based list scheduling collapses to a single
//! interval, so queries and snapshots stay cheap no matter how many
//! subtasks it runs.
//!
//! Queries binary-search for the first relevant interval instead of
//! scanning from the front, and [`reserve`](Timeline::reserve) checks a
//! last-hit hint before searching — the scheduler reserves
//! monotonically-ish (EDF order correlates with time), so the hint makes
//! steady-state inserts `O(1)` comparisons.

use taskgraph::Time;

/// Disjoint, sorted, coalesced busy intervals `[start, end)` on one
/// exclusive resource.
#[derive(Debug, Default)]
pub(crate) struct Timeline {
    busy: Vec<(Time, Time)>,
    /// End of the latest reservation (for append-style allocation).
    horizon: Time,
    /// Index at (or next to) which the previous `reserve` landed: checked
    /// before binary-searching, since consecutive reservations cluster.
    hint: usize,
}

impl Clone for Timeline {
    fn clone(&self) -> Self {
        Timeline {
            busy: self.busy.clone(),
            horizon: self.horizon,
            hint: self.hint,
        }
    }

    /// Reuses the existing interval buffer: the scheduler re-snapshots the
    /// bus timeline for every candidate processor of every dispatch under
    /// the contention model, so this must not allocate once the buffer has
    /// grown.
    fn clone_from(&mut self, source: &Self) {
        self.busy.clone_from(&source.busy);
        self.horizon = source.horizon;
        self.hint = source.hint;
    }
}

impl Timeline {
    pub(crate) fn new() -> Self {
        Timeline::default()
    }

    /// Empties the timeline, keeping the interval buffer's capacity — the
    /// workspace reset between replications.
    pub(crate) fn clear(&mut self) {
        self.busy.clear();
        self.horizon = Time::ZERO;
        self.hint = 0;
    }

    /// The earliest start `t ≥ earliest` such that `[t, t + duration)` is
    /// free. Zero-duration requests are always placeable at `earliest`.
    pub(crate) fn earliest_gap(&self, earliest: Time, duration: Time) -> Time {
        if !duration.is_positive() {
            return earliest;
        }
        // Intervals ending at or before `earliest` cannot constrain the
        // request; binary-search past them instead of scanning.
        let mut idx = self.busy.partition_point(|&(_, e)| e <= earliest);
        let mut candidate = earliest;
        while let Some(&(s, e)) = self.busy.get(idx) {
            if candidate + duration <= s {
                break;
            }
            if e > candidate {
                candidate = e;
            }
            idx += 1;
        }
        candidate
    }

    /// The earliest start `t ≥ earliest` with nothing scheduled earlier
    /// than `t + duration` — append semantics (no gap reuse).
    pub(crate) fn append_start(&self, earliest: Time) -> Time {
        earliest.max(self.horizon)
    }

    /// End of the latest reservation so far.
    #[cfg(test)]
    pub(crate) fn horizon(&self) -> Time {
        self.horizon
    }

    /// Reserves `[start, start + duration)`, coalescing with adjacent
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the slot overlaps an existing reservation;
    /// callers must query [`earliest_gap`](Self::earliest_gap) or
    /// [`append_start`](Self::append_start) first.
    pub(crate) fn reserve(&mut self, start: Time, duration: Time) {
        if !duration.is_positive() {
            return;
        }
        let end = start + duration;
        self.horizon = self.horizon.max(end);

        // Append fast path: at or past the last interval (the common case
        // for EDF dispatch order and the whole case for append placement).
        if let Some(last) = self.busy.last_mut() {
            if last.1 <= start {
                if last.1 == start {
                    last.1 = end;
                } else {
                    self.busy.push((start, end));
                }
                self.hint = self.busy.len() - 1;
                return;
            }
        } else {
            self.busy.push((start, end));
            self.hint = 0;
            return;
        }

        // General case: find the insertion index — the first interval
        // starting at or after `start` — trying the last-hit hint before
        // binary-searching.
        let hint_ok = self.hint <= self.busy.len()
            && (self.hint == 0 || self.busy[self.hint - 1].0 < start)
            && (self.hint == self.busy.len() || self.busy[self.hint].0 >= start);
        let idx = if hint_ok {
            self.hint
        } else {
            self.busy.partition_point(|&(s, _)| s < start)
        };
        debug_assert!(
            idx == 0 || self.busy[idx - 1].1 <= start,
            "slot overlaps previous reservation"
        );
        debug_assert!(
            idx == self.busy.len() || end <= self.busy[idx].0,
            "slot overlaps next reservation"
        );

        let joins_prev = idx > 0 && self.busy[idx - 1].1 == start;
        let joins_next = idx < self.busy.len() && self.busy[idx].0 == end;
        match (joins_prev, joins_next) {
            (true, true) => {
                // Fills the gap exactly: the neighbours fuse into one.
                self.busy[idx - 1].1 = self.busy[idx].1;
                self.busy.remove(idx);
            }
            (true, false) => self.busy[idx - 1].1 = end,
            (false, true) => self.busy[idx].0 = start,
            (false, false) => self.busy.insert(idx, (start, end)),
        }
        self.hint = idx;
    }

    /// Releases `[start, start + duration)`: any busy time inside the span
    /// becomes free again. Intervals that merely overlap the span are
    /// trimmed; an interval strictly containing it is split in two —
    /// coalescing is undone exactly where the released reservation used to
    /// sit, so the interval set stays sorted, disjoint and canonical
    /// (touching intervals only ever arise from `reserve`, which merges
    /// them).
    ///
    /// Releasing free time is a no-op, as is a non-positive duration. The
    /// horizon is recomputed from the remaining intervals so
    /// [`append_start`](Self::append_start) never points past freed time —
    /// schedule repair rolls reservations back and then appends again.
    pub(crate) fn release(&mut self, start: Time, duration: Time) {
        if !duration.is_positive() {
            return;
        }
        let end = start + duration;
        // First interval that extends past `start` — the only candidates
        // that can intersect the released span.
        let first = self.busy.partition_point(|&(_, e)| e <= start);
        let mut idx = first;
        while idx < self.busy.len() && self.busy[idx].0 < end {
            let (s, e) = self.busy[idx];
            if s < start && end < e {
                // Strictly inside: split into the two surviving flanks.
                self.busy[idx].1 = start;
                self.busy.insert(idx + 1, (end, e));
                idx += 2;
            } else if s < start {
                // Overlaps the left edge: keep the prefix.
                self.busy[idx].1 = start;
                idx += 1;
            } else if end < e {
                // Overlaps the right edge: keep the suffix.
                self.busy[idx].0 = end;
                idx += 1;
            } else {
                // Fully covered: the interval disappears.
                self.busy.remove(idx);
            }
        }
        self.horizon = self.busy.last().map_or(Time::ZERO, |&(_, e)| e);
        self.hint = 0;
    }

    /// The sorted, disjoint, coalesced busy intervals.
    pub(crate) fn busy(&self) -> &[(Time, Time)] {
        &self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::new(x)
    }

    #[test]
    fn gap_in_empty_timeline() {
        let tl = Timeline::new();
        assert_eq!(tl.earliest_gap(t(5), t(10)), t(5));
        assert_eq!(tl.earliest_gap(t(5), t(0)), t(5));
        assert_eq!(tl.append_start(t(3)), t(3));
    }

    #[test]
    fn reservations_block_overlaps() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(10));
        assert_eq!(tl.earliest_gap(t(0), t(5)), t(10));
        tl.reserve(t(10), t(5));
        // Adjacent reservations coalesce into one busy interval.
        assert_eq!(tl.busy(), &[(t(0), t(15))]);
        assert_eq!(tl.earliest_gap(t(2), t(1)), t(15));
        assert_eq!(tl.horizon(), t(15));
    }

    #[test]
    fn short_requests_fit_into_gaps_long_ones_do_not() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(10));
        tl.reserve(t(30), t(10));
        // A 15-unit request fits between the reservations ...
        assert_eq!(tl.earliest_gap(t(0), t(15)), t(10));
        // ... a 25-unit request must wait until after both.
        assert_eq!(tl.earliest_gap(t(0), t(25)), t(40));
        // Append ignores the gap entirely.
        assert_eq!(tl.append_start(t(0)), t(40));
    }

    #[test]
    fn zero_duration_never_reserves() {
        let mut tl = Timeline::new();
        tl.reserve(t(3), t(0));
        assert!(tl.busy().is_empty());
        assert_eq!(tl.horizon(), t(0));
    }

    #[test]
    fn gap_fill_fuses_neighbours() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(10));
        tl.reserve(t(20), t(10));
        tl.reserve(t(40), t(10));
        assert_eq!(tl.busy().len(), 3);
        // Filling [10, 20) exactly fuses the first two intervals ...
        tl.reserve(t(10), t(10));
        assert_eq!(tl.busy(), &[(t(0), t(30)), (t(40), t(50))]);
        // ... and filling [30, 40) collapses everything to one.
        tl.reserve(t(30), t(10));
        assert_eq!(tl.busy(), &[(t(0), t(50))]);
        assert_eq!(tl.horizon(), t(50));
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(10));
        tl.reserve(t(20), t(5));
        let cap = {
            tl.clear();
            tl.busy.capacity()
        };
        assert!(cap >= 2);
        assert!(tl.busy().is_empty());
        assert_eq!(tl.horizon(), t(0));
        assert_eq!(tl.earliest_gap(t(0), t(100)), t(0));
    }

    /// A naive timeline over a boolean occupancy array: the behavioural
    /// model for the property tests below.
    struct NaiveTimeline {
        occupied: Vec<bool>,
        horizon: i64,
    }

    impl NaiveTimeline {
        fn new(span: usize) -> Self {
            NaiveTimeline {
                occupied: vec![false; span],
                horizon: 0,
            }
        }

        fn earliest_gap(&self, earliest: i64, duration: i64) -> i64 {
            if duration <= 0 {
                return earliest;
            }
            let mut start = earliest;
            let mut u = start;
            while u < start + duration {
                if *self.occupied.get(u as usize).unwrap_or(&false) {
                    start = u + 1;
                }
                u += 1;
            }
            start
        }

        fn append_start(&self, earliest: i64) -> i64 {
            earliest.max(self.horizon)
        }

        fn reserve(&mut self, start: i64, duration: i64) {
            for u in start..start + duration {
                assert!(!self.occupied[u as usize], "model overlap at {u}");
                self.occupied[u as usize] = true;
            }
            if duration > 0 {
                self.horizon = self.horizon.max(start + duration);
            }
        }

        fn release(&mut self, start: i64, duration: i64) {
            for u in start..start + duration {
                self.occupied[u as usize] = false;
            }
            if duration > 0 {
                self.horizon = self.intervals().last().map_or(0, |&(_, e)| e);
            }
        }

        /// The coalesced busy intervals of the occupancy array.
        fn intervals(&self) -> Vec<(i64, i64)> {
            let mut out: Vec<(i64, i64)> = Vec::new();
            for (u, &busy) in self.occupied.iter().enumerate() {
                let u = u as i64;
                if !busy {
                    continue;
                }
                match out.last_mut() {
                    Some(last) if last.1 == u => last.1 = u + 1,
                    _ => out.push((u, u + 1)),
                }
            }
            out
        }
    }

    #[test]
    fn release_splits_a_coalesced_interval() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(10));
        tl.reserve(t(10), t(10));
        tl.reserve(t(20), t(10));
        assert_eq!(tl.busy(), &[(t(0), t(30))]);
        // Releasing the middle reservation splits the run back in two.
        tl.release(t(10), t(10));
        assert_eq!(tl.busy(), &[(t(0), t(10)), (t(20), t(30))]);
        assert_eq!(tl.horizon(), t(30));
        assert_eq!(tl.earliest_gap(t(0), t(10)), t(10));
    }

    #[test]
    fn release_exact_interval_removes_it() {
        let mut tl = Timeline::new();
        tl.reserve(t(5), t(10));
        tl.reserve(t(30), t(5));
        tl.release(t(30), t(5));
        assert_eq!(tl.busy(), &[(t(5), t(15))]);
        // Horizon shrinks back to the surviving interval's end.
        assert_eq!(tl.horizon(), t(15));
        assert_eq!(tl.append_start(t(0)), t(15));
    }

    #[test]
    fn release_trims_partial_overlaps() {
        let mut tl = Timeline::new();
        tl.reserve(t(10), t(10));
        tl.reserve(t(30), t(10));
        // The span [15, 35) clips the first interval's tail and the second
        // interval's head.
        tl.release(t(15), t(20));
        assert_eq!(tl.busy(), &[(t(10), t(15)), (t(35), t(40))]);
        assert_eq!(tl.horizon(), t(40));
    }

    #[test]
    fn release_spanning_several_intervals_removes_them_all() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(5));
        tl.reserve(t(10), t(5));
        tl.reserve(t(20), t(5));
        tl.release(t(0), t(25));
        assert!(tl.busy().is_empty());
        assert_eq!(tl.horizon(), t(0));
        assert_eq!(tl.earliest_gap(t(0), t(100)), t(0));
    }

    #[test]
    fn release_of_free_time_is_a_noop() {
        let mut tl = Timeline::new();
        tl.reserve(t(10), t(10));
        tl.release(t(30), t(5));
        tl.release(t(0), t(10));
        tl.release(t(5), t(0));
        assert_eq!(tl.busy(), &[(t(10), t(20))]);
        assert_eq!(tl.horizon(), t(20));
    }

    #[test]
    fn reserve_after_release_reuses_the_freed_span() {
        let mut tl = Timeline::new();
        tl.reserve(t(0), t(30));
        tl.release(t(10), t(10));
        let gap = tl.earliest_gap(t(0), t(10));
        assert_eq!(gap, t(10));
        tl.reserve(gap, t(10));
        assert_eq!(tl.busy(), &[(t(0), t(30))]);
        assert_eq!(tl.horizon(), t(30));
    }

    mod properties {
        //! Random reserve/release/query sequences against the boolean-array
        //! model: every query agrees, every mutation leaves the indexed
        //! timeline's (coalesced) intervals equal to the model's occupied
        //! runs — including zero-duration requests, exact gap fills, and
        //! releases that split or clip reservations.

        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        use super::*;

        /// Total span the model covers; operations stay well inside it.
        const SPAN: usize = 4_096;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn indexed_timeline_matches_boolean_array_model(
                seed in 0u64..u64::MAX,
                ops in 1usize..=60,
                adjacent_bias in proptest::bool::ANY,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut tl = Timeline::new();
                let mut model = NaiveTimeline::new(SPAN);

                for _ in 0..ops {
                    // Durations of 0 exercise the always-placeable edge
                    // case; an adjacency bias of small earliest values
                    // forces back-to-back reservations that must coalesce.
                    let duration = if rng.gen_bool(0.1) {
                        0
                    } else {
                        rng.gen_range(1..=12)
                    };
                    let earliest = if adjacent_bias {
                        rng.gen_range(0..=8)
                    } else {
                        rng.gen_range(0..=800)
                    };

                    if rng.gen_bool(0.3) {
                        // Release an arbitrary span: it may cover free
                        // time, clip interval edges, or split a coalesced
                        // run down the middle.
                        tl.release(t(earliest), t(duration));
                        model.release(earliest, duration);
                    } else {
                        let fast = tl.earliest_gap(t(earliest), t(duration));
                        let slow = model.earliest_gap(earliest, duration);
                        prop_assert_eq!(fast, t(slow));

                        // Reserve at the reported gap, as the scheduler
                        // does.
                        tl.reserve(fast, t(duration));
                        model.reserve(slow, duration);
                    }

                    prop_assert_eq!(
                        tl.append_start(t(earliest)),
                        t(model.append_start(earliest))
                    );

                    let intervals: Vec<(i64, i64)> = model
                        .intervals()
                        .into_iter()
                        .collect();
                    let busy: Vec<(i64, i64)> = tl
                        .busy()
                        .iter()
                        .map(|&(s, e)| (s.as_i64(), e.as_i64()))
                        .collect();
                    prop_assert_eq!(busy, intervals);
                }
            }
        }
    }
}
