//! The deadline-driven list scheduler (§5.3).
//!
//! A deadline-driven version of classic list scheduling with interprocessor
//! communication delays (Lee, Hwang, Chow & Anger): at every step the
//! scheduler picks, among the *schedulable* subtasks (all predecessors
//! scheduled), the one with the earliest assigned absolute deadline, and
//! places it on the processor yielding the earliest start time under a
//! non-preemptive, time-driven run-time model.
//!
//! Start times respect (a) data availability — a message from a different
//! processor arrives only after its communication delay, and under the
//! contention model after queueing for the bus; (b) processor availability;
//! and (c) by default the *assigned release time* of the subtask, because
//! slices are execution windows with static positions in time.
//!
//! Processor availability follows the [`PlacementPolicy`]:
//! [`PlacementPolicy::Insertion`] (default) places a subtask into the
//! earliest idle interval large enough for it, so short subtasks slot into
//! gaps while long subtasks must wait for large contiguous windows — the
//! contention vulnerability of long subtasks that motivates AST's
//! threshold metrics (§7). [`PlacementPolicy::Append`] only ever schedules
//! after the processor's last reservation.
//!
//! # Hot path
//!
//! Dispatch is *estimate-once*: each candidate processor's earliest start is
//! computed against a read-only view of the committed state, message slots
//! (and, under [`BusModel::Contention`], bus reservations) for the winning
//! candidate are captured during that trial pass and spliced in on commit —
//! the winner is never re-evaluated. Under [`BusModel::Delay`] the bus
//! timeline is never touched at all. The `reference` submodule keeps the
//! original two-pass scheduler as the behavioural oracle; a proptest suite
//! asserts both produce bit-identical [`Schedule`]s.

use std::cmp::Reverse;

use platform::{Pinning, Platform, ProcessorId};
use serde::{Deserialize, Serialize};
use slicing::DeadlineAssignment;
use taskgraph::{SubtaskId, TaskGraph, Time};

use crate::bus::BusModel;
use crate::committed::CommittedState;
use crate::timeline::Timeline;
use crate::workspace::{DispatchRecord, Provenance, SchedWorkspace};
use crate::{MessageSlot, SchedError, Schedule, ScheduleEntry};

#[cfg(test)]
#[path = "list_reference.rs"]
pub(crate) mod reference;

/// How a processor's idle time is allocated to subtasks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Place each subtask into the earliest idle interval that fits it
    /// (insertion-based list scheduling). Default.
    #[default]
    Insertion,
    /// Place each subtask after the processor's latest reservation.
    Append,
}

impl PlacementPolicy {
    /// A short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::Insertion => "insertion",
            PlacementPolicy::Append => "append",
        }
    }
}

/// The result of [`ListScheduler::repair`]: the repaired schedule plus
/// counters describing how much of the previous run was reused.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The new schedule — bit-identical to a from-scratch
    /// [`ListScheduler::schedule_with`] over the same inputs.
    pub schedule: Schedule,
    /// Dispatches kept verbatim from the previous run.
    pub reused: usize,
    /// Dispatches recomputed (zero only when the change had no effect).
    pub evicted: usize,
    /// Whether the retained workspace state was unusable and a full
    /// reschedule ran instead.
    pub fell_back: bool,
}

/// Deadline-driven list scheduler.
///
/// # Examples
///
/// ```
/// use platform::{Pinning, Platform};
/// use rand::SeedableRng;
/// use sched::ListScheduler;
/// use slicing::Slicer;
/// use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = WorkloadSpec::paper(ExecVariation::Ldet);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let graph = generate(&spec, &mut rng)?;
/// let platform = Platform::paper(8)?;
/// let assignment = Slicer::ast_adapt().distribute(&graph, &platform)?;
///
/// let schedule = ListScheduler::new().schedule(&graph, &platform, &assignment, &Pinning::new())?;
/// assert!(schedule.validate(&graph, &platform, &Pinning::new(), false).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListScheduler {
    respect_release: bool,
    bus: BusModel,
    placement: PlacementPolicy,
}

impl Default for ListScheduler {
    /// Same configuration as [`ListScheduler::new`].
    fn default() -> Self {
        ListScheduler::new()
    }
}

impl ListScheduler {
    /// Creates the paper's scheduler: time-driven (assigned release times
    /// honoured), insertion-based placement, fixed-delay communication.
    pub fn new() -> Self {
        ListScheduler {
            respect_release: true,
            bus: BusModel::Delay,
            placement: PlacementPolicy::Insertion,
        }
    }

    /// Sets whether assigned release times are honoured as earliest start
    /// times (the time-driven model). Disabling lets subtasks start as soon
    /// as data and a processor are available (a work-conserving variant).
    #[must_use]
    pub fn with_respect_release(mut self, respect: bool) -> Self {
        self.respect_release = respect;
        self
    }

    /// Sets the communication model.
    #[must_use]
    pub fn with_bus_model(mut self, bus: BusModel) -> Self {
        self.bus = bus;
        self
    }

    /// Sets the processor-placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Whether assigned release times are honoured.
    pub fn respects_release(&self) -> bool {
        self.respect_release
    }

    /// The communication model in use.
    pub fn bus_model(&self) -> BusModel {
        self.bus
    }

    /// The processor-placement policy in use.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// Schedules `graph` on `platform` under the given deadline assignment
    /// and strict locality constraints.
    ///
    /// Allocates fresh scratch state; callers scheduling repeatedly should
    /// hold a [`SchedWorkspace`] and use [`ListScheduler::schedule_with`].
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::AssignmentMismatch`] if `assignment` does not
    /// cover the graph and [`SchedError::Platform`] if `pinning` refers to
    /// processors outside the platform.
    pub fn schedule(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        assignment: &DeadlineAssignment,
        pinning: &Pinning,
    ) -> Result<Schedule, SchedError> {
        let mut ws = SchedWorkspace::new();
        self.schedule_with(graph, platform, assignment, pinning, &mut ws)
    }

    /// Schedules `graph` on `platform`, reusing the buffers in `ws`.
    ///
    /// Behaviourally identical to [`ListScheduler::schedule`] — the
    /// workspace is fully reset on entry and carries no state between calls
    /// — but steady-state calls allocate nothing beyond the two `Vec`s owned
    /// by the returned [`Schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::AssignmentMismatch`] if `assignment` does not
    /// cover the graph and [`SchedError::Platform`] if `pinning` refers to
    /// processors outside the platform.
    pub fn schedule_with(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        assignment: &DeadlineAssignment,
        pinning: &Pinning,
        ws: &mut SchedWorkspace,
    ) -> Result<Schedule, SchedError> {
        if assignment.subtask_count() != graph.subtask_count() {
            return Err(SchedError::AssignmentMismatch {
                graph_subtasks: graph.subtask_count(),
                assignment_subtasks: assignment.subtask_count(),
            });
        }
        pinning.validate(graph, platform)?;

        let _span = tracing::debug_span!(
            "schedule",
            subtasks = graph.subtask_count(),
            processors = platform.processor_count(),
            bus = ?self.bus,
            placement = self.placement.label()
        )
        .entered();

        ws.reset(
            graph.subtask_count(),
            graph.edge_count(),
            platform.processor_count(),
        );
        Self::seed_ready(graph, assignment, ws);

        let schedule = self.run_dispatch(graph, platform, assignment, pinning, ws)?;
        ws.provenance = Some(self.provenance(graph, platform, None));
        Ok(schedule)
    }

    /// Schedules `graph` on `platform` **against committed load**: the
    /// workspace timelines are seeded from `base`, so the graph is placed
    /// into the idle time the admitted residents leave free. `base` itself
    /// is read-only — a caller that rejects the resulting schedule simply
    /// drops it (no trace), one that admits it calls
    /// [`CommittedState::commit`].
    ///
    /// Data dependencies still only exist *within* `graph`; resident
    /// schedules interact with the request purely through processor (and,
    /// under [`BusModel::Contention`], bus) availability.
    ///
    /// # Errors
    ///
    /// Those of [`ListScheduler::schedule_with`], plus
    /// [`SchedError::BaseMismatch`] if `base` covers a different processor
    /// count than `platform` or was built for a different bus model than
    /// this scheduler uses.
    pub fn schedule_against(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        assignment: &DeadlineAssignment,
        pinning: &Pinning,
        base: &CommittedState,
        ws: &mut SchedWorkspace,
    ) -> Result<Schedule, SchedError> {
        if assignment.subtask_count() != graph.subtask_count() {
            return Err(SchedError::AssignmentMismatch {
                graph_subtasks: graph.subtask_count(),
                assignment_subtasks: assignment.subtask_count(),
            });
        }
        pinning.validate(graph, platform)?;
        self.check_base(platform, base)?;

        let _span = tracing::debug_span!(
            "schedule_against",
            subtasks = graph.subtask_count(),
            processors = platform.processor_count(),
            residents = base.residents(),
            bus = ?self.bus
        )
        .entered();

        ws.reset(
            graph.subtask_count(),
            graph.edge_count(),
            platform.processor_count(),
        );
        for (tl, committed) in ws.procs.iter_mut().zip(&base.procs) {
            tl.clone_from(committed);
        }
        if self.bus == BusModel::Contention {
            ws.bus.clone_from(&base.bus);
        }
        Self::seed_ready(graph, assignment, ws);

        let schedule = self.run_dispatch(graph, platform, assignment, pinning, ws)?;
        ws.provenance = Some(self.provenance(graph, platform, Some(base)));
        Ok(schedule)
    }

    fn check_base(&self, platform: &Platform, base: &CommittedState) -> Result<(), SchedError> {
        if base.processor_count() != platform.processor_count() {
            return Err(SchedError::BaseMismatch(format!(
                "committed state covers {} processors but the platform has {}",
                base.processor_count(),
                platform.processor_count()
            )));
        }
        if base.bus_model() != self.bus {
            return Err(SchedError::BaseMismatch(format!(
                "committed state was built for bus model {:?} but the scheduler uses {:?}",
                base.bus_model(),
                self.bus
            )));
        }
        Ok(())
    }

    /// Seeds the dependency counters and the EDF-ready heap for a fresh
    /// dispatch run over `graph`.
    fn seed_ready(graph: &TaskGraph, assignment: &DeadlineAssignment, ws: &mut SchedWorkspace) {
        ws.missing_preds.clear();
        ws.missing_preds
            .extend(graph.subtask_ids().map(|id| graph.in_edges(id).len()));
        ws.ready.clear();
        for id in graph.subtask_ids() {
            if ws.missing_preds[id.index()] == 0 {
                ws.ready
                    .push(Reverse((assignment.absolute_deadline(id), id)));
            }
        }
    }

    /// Repairs the schedule of the *previous* run through `ws` for a
    /// changed assignment (and possibly changed WCETs, anchors, or pins),
    /// recomputing only the dispatches downstream of the first change.
    ///
    /// `prev` must be the schedule that run produced. The repair replays
    /// the EDF dispatch order under the new inputs against the recorded
    /// dispatch log; the longest prefix whose dispatches are untouched is
    /// kept verbatim, everything after it is evicted — committed processor
    /// (and, under contention, bus) reservations are rolled back via
    /// interval release — and re-dispatched by the ordinary dispatch loop.
    /// The result is **bit-identical** to a from-scratch
    /// [`schedule_with`](ListScheduler::schedule_with) over the same
    /// inputs.
    ///
    /// When the retained state is unusable — the workspace ran a different
    /// graph structure, platform, or scheduler configuration, or `prev` is
    /// not that run's schedule — the call silently degrades to a full
    /// reschedule and reports it via [`RepairOutcome::fell_back`]. Changing
    /// the *graph structure* (subtask or edge insertion/removal) therefore
    /// always falls back; WCET, anchor, deadline, and pin changes repair
    /// incrementally.
    ///
    /// # Errors
    ///
    /// Exactly those of [`schedule_with`](ListScheduler::schedule_with).
    pub fn repair(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        assignment: &DeadlineAssignment,
        pinning: &Pinning,
        prev: &Schedule,
        ws: &mut SchedWorkspace,
    ) -> Result<RepairOutcome, SchedError> {
        self.repair_inner(graph, platform, assignment, pinning, prev, None, ws)
    }

    /// [`ListScheduler::repair`] for a run that was trial-scheduled against
    /// committed load via [`ListScheduler::schedule_against`]: bit-identical
    /// to a fresh `schedule_against` over the same inputs and `base`.
    ///
    /// The retained workspace state is only trusted when `base` is the
    /// *same* [`CommittedState`] **at the same token** the previous run was
    /// seeded from — a rolled-back amend restores that token, any other
    /// mutation (commit, release) invalidates it and the call silently
    /// degrades to a full `schedule_against`, reported via
    /// [`RepairOutcome::fell_back`]. This is the admission service's amend
    /// hot path: retract the latest admission, repair its schedule for the
    /// changed graph, re-commit.
    ///
    /// # Errors
    ///
    /// Exactly those of [`ListScheduler::schedule_against`].
    #[allow(clippy::too_many_arguments)]
    pub fn repair_against(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        assignment: &DeadlineAssignment,
        pinning: &Pinning,
        prev: &Schedule,
        base: &CommittedState,
        ws: &mut SchedWorkspace,
    ) -> Result<RepairOutcome, SchedError> {
        self.check_base(platform, base)?;
        self.repair_inner(graph, platform, assignment, pinning, prev, Some(base), ws)
    }

    #[allow(clippy::too_many_arguments)]
    fn repair_inner(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        assignment: &DeadlineAssignment,
        pinning: &Pinning,
        prev: &Schedule,
        base: Option<&CommittedState>,
        ws: &mut SchedWorkspace,
    ) -> Result<RepairOutcome, SchedError> {
        if assignment.subtask_count() != graph.subtask_count() {
            return Err(SchedError::AssignmentMismatch {
                graph_subtasks: graph.subtask_count(),
                assignment_subtasks: assignment.subtask_count(),
            });
        }
        pinning.validate(graph, platform)?;

        let n = graph.subtask_count();
        let usable = ws.provenance.as_ref().is_some_and(|prov| {
            prov.scheduler == *self
                && prov.platform == *platform
                && prov.subtasks == n
                && prov.base == base.map(CommittedState::stamp)
                && prov.edges.len() == graph.edge_count()
                && graph
                    .edge_ids()
                    .zip(&prov.edges)
                    .all(|(eid, &(s, d, items))| {
                        let e = graph.edge(eid);
                        e.src().index() as u32 == s
                            && e.dst().index() as u32 == d
                            && e.items() == items
                    })
        }) && ws.log.len() == n
            && prev.entries().len() == n
            && prev.messages().len() == graph.edge_count()
            && prev
                .entries()
                .iter()
                .enumerate()
                .all(|(i, e)| ws.placed.get(i).copied().flatten().as_ref() == Some(e));
        if !usable {
            let schedule = match base {
                None => self.schedule_with(graph, platform, assignment, pinning, ws)?,
                Some(base) => {
                    self.schedule_against(graph, platform, assignment, pinning, base, ws)?
                }
            };
            return Ok(RepairOutcome {
                schedule,
                reused: 0,
                evicted: n,
                fell_back: true,
            });
        }

        let _span = tracing::debug_span!(
            "repair",
            subtasks = n,
            processors = platform.processor_count(),
            bus = ?self.bus
        )
        .entered();

        // Replay the EDF order under the new inputs against the dispatch
        // log. A dispatch is kept while it pops the same subtask with the
        // same placement-relevant inputs; by induction the committed state
        // it saw is then identical too, so its entry is bit-identical.
        // (With a base, the usable check above pinned the base content via
        // its token, so the seeded-from load is identical as well.)
        Self::seed_ready(graph, assignment, ws);
        ws.trial_slots.clear();
        ws.best_slots.clear();

        let mut divergence = None;
        let mut idx = 0usize;
        while let Some(Reverse((deadline, id))) = ws.ready.pop() {
            let mut clean = false;
            if idx < ws.log.len() {
                let rec = ws.log[idx];
                if rec.subtask == id
                    && rec.wcet == graph.subtask(id).wcet()
                    && rec.pinned == pinning.processor_for(id)
                {
                    let new_lb = self.static_lower_bound(graph, assignment, id);
                    // A changed static bound is placement-neutral when data
                    // readiness dominates it everywhere: on every candidate
                    // processor `data_ready` is at least the latest
                    // predecessor finish, so a bound at or below that
                    // finish never moves `max(data_ready, static_lb)`.
                    // (The kept prefix's placements equal a fresh run's by
                    // induction, so the recorded finishes are exact.)
                    let lb_neutral = rec.static_lb == new_lb || {
                        let mut latest: Option<Time> = None;
                        for &eid in graph.in_edges(id) {
                            let f = ws.placed[graph.edge(eid).src().index()]
                                .as_ref()
                                .expect("prefix predecessors are placed")
                                .finish;
                            latest = Some(latest.map_or(f, |l| l.max(f)));
                        }
                        latest.is_some_and(|l| rec.static_lb <= l && new_lb <= l)
                    };
                    if lb_neutral {
                        // Future repairs diff against this run's inputs.
                        ws.log[idx].static_lb = new_lb;
                        clean = true;
                    }
                }
            }
            if !clean {
                ws.ready.push(Reverse((deadline, id)));
                divergence = Some(idx);
                break;
            }
            idx += 1;
            for succ in graph.successors(id) {
                let slot = &mut ws.missing_preds[succ.index()];
                *slot -= 1;
                if *slot == 0 {
                    ws.ready
                        .push(Reverse((assignment.absolute_deadline(succ), succ)));
                }
            }
        }
        let p = divergence.unwrap_or(idx);

        if p == n {
            // Every dispatch replays identically: the previous schedule is
            // already the answer and the retained state is already it.
            return Ok(RepairOutcome {
                schedule: prev.clone(),
                reused: n,
                evicted: 0,
                fell_back: false,
            });
        }

        // Evict the suffix: roll the committed reservations of every
        // dispatch at or after the divergence point back out of the
        // timelines. What remains is exactly the committed state a fresh
        // run holds after dispatching the kept prefix.
        let prov = ws.provenance.take().expect("checked usable above");
        for rec in &ws.log[p..] {
            let id = rec.subtask;
            let entry = ws.placed[id.index()]
                .take()
                .expect("logged dispatch was placed");
            ws.procs[entry.processor.index()].release(entry.start, entry.finish - entry.start);
            if self.bus == BusModel::Contention {
                for &eid in graph.in_edges(id) {
                    if let Some(slot) = prev.messages()[eid.index()] {
                        ws.bus.release(slot.depart, slot.arrive - slot.depart);
                    }
                }
            }
        }
        ws.messages.clear();
        ws.messages.resize(graph.edge_count(), None);
        for eid in graph.edge_ids() {
            if ws.placed[graph.edge(eid).dst().index()].is_some() {
                ws.messages[eid.index()] = prev.messages()[eid.index()];
            }
        }
        ws.log.truncate(p);

        let schedule = self.run_dispatch(graph, platform, assignment, pinning, ws)?;
        ws.provenance = Some(prov);
        tracing::debug!(reused = p, evicted = n - p, "schedule repair complete");
        Ok(RepairOutcome {
            schedule,
            reused: p,
            evicted: n - p,
            fell_back: false,
        })
    }

    fn provenance(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        base: Option<&CommittedState>,
    ) -> Provenance {
        Provenance {
            scheduler: *self,
            platform: platform.clone(),
            subtasks: graph.subtask_count(),
            edges: graph
                .edge_ids()
                .map(|eid| {
                    let e = graph.edge(eid);
                    (e.src().index() as u32, e.dst().index() as u32, e.items())
                })
                .collect(),
            base: base.map(CommittedState::stamp),
        }
    }

    /// The placement lower bound of `id` that does not depend on earlier
    /// placements: the assigned release (when respected) joined with the
    /// given release.
    fn static_lower_bound(
        &self,
        graph: &TaskGraph,
        assignment: &DeadlineAssignment,
        id: SubtaskId,
    ) -> Time {
        let mut lb = Time::ZERO;
        if self.respect_release {
            lb = lb.max(assignment.release(id));
        }
        if let Some(given) = graph.subtask(id).release() {
            lb = lb.max(given);
        }
        lb
    }

    /// The dispatch loop shared by [`schedule_with`](Self::schedule_with)
    /// (from an empty, freshly seeded workspace) and
    /// [`repair`](Self::repair) (from the retained state of the kept
    /// prefix): drains the ready heap, committing one dispatch per pop and
    /// appending a [`DispatchRecord`] to the workspace log, then assembles
    /// the [`Schedule`].
    fn run_dispatch(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        assignment: &DeadlineAssignment,
        pinning: &Pinning,
        ws: &mut SchedWorkspace,
    ) -> Result<Schedule, SchedError> {
        // Disjoint field borrows: the candidate slice must borrow
        // `all_procs` while the dispatch loop mutates the other buffers.
        let SchedWorkspace {
            placed,
            messages,
            procs,
            bus,
            trial_bus,
            missing_preds,
            ready,
            all_procs,
            trial_slots,
            best_slots,
            miss_log,
            log,
            provenance: _,
        } = ws;

        // Hoisted once per call: the unpinned candidate list is the same
        // for every dispatch. (Already populated when continuing a repair.)
        if all_procs.is_empty() {
            all_procs.extend(platform.processors());
        }

        // `(deadline, id)` keys are unique (ids are), so the min-heap pops
        // the exact sequence the previous BTreeSet walk produced.
        let mut suppressed_batch: u64 = 0;
        while let Some(Reverse((deadline, id))) = ready.pop() {
            let pinned = pinning.processor_for(id);
            let candidates: &[ProcessorId] = match pinned.as_ref() {
                Some(p) => std::slice::from_ref(p),
                None => all_procs,
            };
            let static_lb = self.static_lower_bound(graph, assignment, id);

            // Estimate the earliest start on each candidate against the
            // committed state, capturing the candidate's message slots (and
            // implied bus reservations); the winner's are spliced in below
            // without re-running the computation.
            let mut best: Option<(Time, ProcessorId)> = None;
            for &p in candidates {
                trial_slots.clear();
                let start = self.earliest_start(
                    graph,
                    platform,
                    static_lb,
                    placed,
                    procs,
                    bus,
                    trial_bus,
                    trial_slots,
                    id,
                    p,
                )?;
                if best.is_none_or(|(s, _)| start < s) {
                    best = Some((start, p));
                    std::mem::swap(best_slots, trial_slots);
                }
            }
            let (start, proc) = best.ok_or(SchedError::Unschedulable(id))?;

            // Commit: replaying the winner's slots in edge order rebuilds
            // exactly the bus state its trial pass computed.
            for slot in best_slots.drain(..) {
                if self.bus == BusModel::Contention {
                    bus.reserve(slot.depart, slot.arrive - slot.depart);
                }
                messages[slot.edge.index()] = Some(slot);
            }

            let wcet = graph.subtask(id).wcet();
            let finish = start + wcet;
            procs[proc.index()].reserve(start, wcet);
            placed[id.index()] = Some(ScheduleEntry {
                subtask: id,
                processor: proc,
                start,
                finish,
            });
            log.push(DispatchRecord {
                subtask: id,
                static_lb,
                wcet,
                pinned,
            });
            tracing::trace!(
                subtask = %id,
                processor = proc.index(),
                start = %start,
                finish = %finish,
                deadline = %deadline,
                candidates = candidates.len(),
                "dispatched"
            );
            if finish > deadline {
                // Without a miss log every miss warns; with one, only the
                // first `limit` do and the rest are counted for a summary.
                // Once the budget is spent the count is batched locally —
                // an infeasible point misses on hundreds of subtasks, and
                // per-miss atomics would tax the dispatch loop.
                let emit = match miss_log.as_ref() {
                    None => true,
                    Some(log) if log.is_exhausted() => {
                        suppressed_batch += 1;
                        false
                    }
                    Some(log) => log.note(),
                };
                if emit {
                    tracing::warn!(
                        subtask = %id,
                        processor = proc.index(),
                        release = %assignment.release(id),
                        deadline = %deadline,
                        finish = %finish,
                        lateness = %(finish - deadline),
                        "deadline miss"
                    );
                }
            }

            for succ in graph.successors(id) {
                let slot = &mut missing_preds[succ.index()];
                *slot -= 1;
                if *slot == 0 {
                    ready.push(Reverse((assignment.absolute_deadline(succ), succ)));
                }
            }
        }

        if suppressed_batch > 0 {
            if let Some(log) = miss_log.as_ref() {
                log.suppress_many(suppressed_batch);
            }
        }

        let entries: Result<Vec<ScheduleEntry>, SchedError> = graph
            .subtask_ids()
            .map(|id| placed[id.index()].ok_or(SchedError::Unschedulable(id)))
            .collect();
        Ok(Schedule::new(
            entries?,
            std::mem::take(messages),
            platform.processor_count(),
        ))
    }

    /// Earliest start of `id` on processor `p` against the committed state,
    /// with the message slot of every remote input pushed onto `slots`.
    ///
    /// The committed `bus` is read-only here: under the contention model the
    /// implied reservations are simulated on `trial_bus` (snapshotted lazily
    /// at the first remote input); under the delay model the bus is not
    /// consulted at all. The caller replays the winning candidate's slots
    /// into the committed state.
    #[allow(clippy::too_many_arguments)]
    fn earliest_start(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        static_lb: Time,
        placed: &[Option<ScheduleEntry>],
        procs: &[Timeline],
        bus: &Timeline,
        trial_bus: &mut Timeline,
        slots: &mut Vec<MessageSlot>,
        id: SubtaskId,
        p: ProcessorId,
    ) -> Result<Time, SchedError> {
        let mut data_ready = Time::ZERO;
        let mut snapshotted = false;
        for &eid in graph.in_edges(id) {
            let edge = graph.edge(eid);
            let producer =
                placed[edge.src().index()].expect("list order guarantees scheduled preds");
            if producer.processor == p {
                data_ready = data_ready.max(producer.finish);
                continue;
            }
            let cost = platform.comm_cost(producer.processor, p, edge.items())?;
            let depart = match self.bus {
                BusModel::Delay => producer.finish,
                BusModel::Contention => {
                    if !snapshotted {
                        trial_bus.clone_from(bus);
                        snapshotted = true;
                    }
                    let depart = trial_bus.earliest_gap(producer.finish, cost);
                    trial_bus.reserve(depart, cost);
                    depart
                }
            };
            let arrive = depart + cost;
            data_ready = data_ready.max(arrive);
            slots.push(MessageSlot {
                edge: eid,
                from: producer.processor,
                to: p,
                depart,
                arrive,
            });
        }

        let lower_bound = data_ready.max(static_lb);
        let wcet = graph.subtask(id).wcet();
        let start = match self.placement {
            PlacementPolicy::Insertion => procs[p.index()].earliest_gap(lower_bound, wcet),
            PlacementPolicy::Append => procs[p.index()].append_start(lower_bound),
        };
        Ok(start)
    }
}

#[cfg(test)]
mod equivalence {
    //! The optimized scheduler against the [`reference`] oracle:
    //! bit-identical [`Schedule`]s across random DAGs, both bus models,
    //! both placement policies, pinned/unpinned mixes, and both
    //! release-time modes — plus workspace-reuse determinism.

    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use slicing::Slicer;
    use taskgraph::Subtask;

    use super::reference;
    use super::*;

    /// A random DAG: edges only point from lower to higher node index, so
    /// acyclicity is structural. Inputs carry releases and outputs carry
    /// deadlines (the builder requires anchored boundaries); interior nodes
    /// get anchors at random.
    fn random_graph(rng: &mut StdRng, n: usize, density: f64) -> TaskGraph {
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        let mut has_pred = vec![false; n];
        let mut has_succ = vec![false; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(density) {
                    edges.push((i, j, rng.gen_range(1..=20)));
                    has_succ[i] = true;
                    has_pred[j] = true;
                }
            }
        }

        let mut b = TaskGraph::builder();
        let ids: Vec<_> = (0..n)
            .map(|v| {
                let mut s = Subtask::new(Time::new(rng.gen_range(1..=50)));
                if !has_pred[v] || rng.gen_bool(0.3) {
                    s = s.released_at(Time::new(rng.gen_range(0..=30)));
                }
                if !has_succ[v] || rng.gen_bool(0.3) {
                    s = s.due_at(Time::new(rng.gen_range(300..=2000)));
                }
                b.add_subtask(s)
            })
            .collect();
        for (i, j, items) in edges {
            b.add_edge(ids[i], ids[j], items)
                .expect("forward edges cannot cycle or duplicate");
        }
        b.build()
            .expect("non-empty graph with anchored inputs/outputs")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn optimized_scheduler_matches_reference(
            seed in 0u64..u64::MAX,
            n in 1usize..=12,
            density in 0.0f64..0.7,
            nproc in 1usize..=6,
            contention in proptest::bool::ANY,
            append in proptest::bool::ANY,
            respect in proptest::bool::ANY,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = random_graph(&mut rng, n, density);
            let platform = Platform::paper(nproc).expect("valid platform");

            // Slicing can reject degenerate windows; those cases exercise
            // nothing scheduler-side, so skip them.
            if let Ok(assignment) = Slicer::bst_pure().distribute(&graph, &platform) {
                let mut pinning = Pinning::new();
                for id in graph.subtask_ids() {
                    if rng.gen_bool(0.3) {
                        let p = ProcessorId::new(rng.gen_range(0..nproc as u32));
                        pinning.pin(id, p).expect("processor within platform");
                    }
                }
                let scheduler = ListScheduler::new()
                    .with_bus_model(if contention {
                        BusModel::Contention
                    } else {
                        BusModel::Delay
                    })
                    .with_placement(if append {
                        PlacementPolicy::Append
                    } else {
                        PlacementPolicy::Insertion
                    })
                    .with_respect_release(respect);

                let slow = reference::schedule(&scheduler, &graph, &platform, &assignment, &pinning)
                    .expect("reference schedules every valid input");
                let mut ws = SchedWorkspace::new();
                let fast = scheduler
                    .schedule_with(&graph, &platform, &assignment, &pinning, &mut ws)
                    .expect("optimized schedules every valid input");
                prop_assert_eq!(&fast, &slow);

                // The workspace must be reusable: a second run over the same
                // inputs sees only reset buffers, never stale state.
                let again = scheduler
                    .schedule_with(&graph, &platform, &assignment, &pinning, &mut ws)
                    .expect("workspace reuse is deterministic");
                prop_assert_eq!(&again, &slow);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use slicing::Slicer;
    use taskgraph::Subtask;

    use super::*;

    /// fork: a -> {b, c} -> d, equal weights, configurable messages.
    fn fork_graph(items: u64, deadline: i64) -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let x = b.add_subtask(Subtask::new(Time::new(20)));
        let y = b.add_subtask(Subtask::new(Time::new(20)));
        let d = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(deadline)));
        b.add_edge(a, x, items).unwrap();
        b.add_edge(a, y, items).unwrap();
        b.add_edge(x, d, items).unwrap();
        b.add_edge(y, d, items).unwrap();
        b.build().unwrap()
    }

    fn schedule_fork(
        nproc: usize,
        scheduler: ListScheduler,
    ) -> (TaskGraph, Platform, DeadlineAssignment, Schedule) {
        let g = fork_graph(5, 300);
        let p = Platform::paper(nproc).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = scheduler.schedule(&g, &p, &a, &Pinning::new()).unwrap();
        (g, p, a, s)
    }

    #[test]
    fn schedules_all_subtasks_validly() {
        for nproc in [1, 2, 4] {
            for placement in [PlacementPolicy::Insertion, PlacementPolicy::Append] {
                let (g, p, _a, s) =
                    schedule_fork(nproc, ListScheduler::new().with_placement(placement));
                assert!(
                    s.validate(&g, &p, &Pinning::new(), false).is_empty(),
                    "nproc={nproc} placement={}",
                    placement.label()
                );
                assert_eq!(s.entries().len(), 4);
                assert!(s.makespan().is_positive());
            }
        }
    }

    #[test]
    fn single_processor_serializes_everything() {
        let (g, p, _a, s) = schedule_fork(1, ListScheduler::new().with_respect_release(false));
        assert!(s.validate(&g, &p, &Pinning::new(), false).is_empty());
        // 4 subtasks, 60 units of work, no remote messages on 1 processor.
        assert_eq!(s.makespan(), Time::new(60));
        assert_eq!(s.remote_message_count(), 0);
        assert!((s.utilization(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn respects_assigned_release_times() {
        let (g, _p, a, s) = schedule_fork(4, ListScheduler::new());
        for id in g.subtask_ids() {
            assert!(
                s.start(id) >= a.release(id),
                "{id}: start {} < release {}",
                s.start(id),
                a.release(id)
            );
        }
    }

    #[test]
    fn work_conserving_variant_can_start_earlier() {
        let time_driven = schedule_fork(4, ListScheduler::new()).3;
        let eager = schedule_fork(4, ListScheduler::new().with_respect_release(false)).3;
        assert!(eager.makespan() <= time_driven.makespan());
    }

    #[test]
    fn insertion_fills_gaps_append_does_not() {
        // One processor. A long subtask whose window starts late leaves an
        // idle prefix; a short independent subtask released at 0 fits into
        // that prefix only under the insertion policy.
        let mut b = TaskGraph::builder();
        let long = b.add_subtask(
            Subtask::new(Time::new(50))
                .released_at(Time::new(40)) // window opens at 40
                .due_at(Time::new(100)),
        );
        let short = b.add_subtask(
            Subtask::new(Time::new(10))
                .released_at(Time::ZERO)
                .due_at(Time::new(200)),
        );
        let g = b.build().unwrap();
        let p = Platform::paper(1).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        // EDF picks `long` first (deadline 100 < 200); `short` then either
        // slots into the idle prefix [0, 40) or waits until 90.
        let insertion = ListScheduler::new()
            .schedule(&g, &p, &a, &Pinning::new())
            .unwrap();
        assert_eq!(insertion.start(long), Time::new(40));
        assert_eq!(insertion.start(short), Time::ZERO);

        let append = ListScheduler::new()
            .with_placement(PlacementPolicy::Append)
            .schedule(&g, &p, &a, &Pinning::new())
            .unwrap();
        assert_eq!(append.start(long), Time::new(40));
        assert_eq!(append.start(short), Time::new(90));
    }

    #[test]
    fn remote_messages_incur_delay() {
        let g = fork_graph(50, 1000);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .with_respect_release(false)
            .schedule(&g, &p, &a, &Pinning::new())
            .unwrap();
        assert!(s.validate(&g, &p, &Pinning::new(), false).is_empty());
        if s.remote_message_count() > 0 {
            let slot = s
                .messages()
                .iter()
                .flatten()
                .next()
                .copied()
                .expect("at least one remote message");
            assert_eq!(slot.arrive - slot.depart, Time::new(50));
        }
    }

    #[test]
    fn pinning_is_respected() {
        let g = fork_graph(5, 500);
        let p = Platform::paper(4).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let mut pins = Pinning::new();
        pins.pin(SubtaskId::new(0), ProcessorId::new(3)).unwrap();
        pins.pin(SubtaskId::new(3), ProcessorId::new(3)).unwrap();
        let s = ListScheduler::new().schedule(&g, &p, &a, &pins).unwrap();
        assert_eq!(s.processor(SubtaskId::new(0)), ProcessorId::new(3));
        assert_eq!(s.processor(SubtaskId::new(3)), ProcessorId::new(3));
        assert!(s.validate(&g, &p, &pins, false).is_empty());
    }

    #[test]
    fn contention_serializes_bus_transfers() {
        let g = fork_graph(30, 2000);
        let p = Platform::paper(4).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .with_respect_release(false)
            .with_bus_model(BusModel::Contention)
            .schedule(&g, &p, &a, &Pinning::new())
            .unwrap();
        assert!(
            s.validate(&g, &p, &Pinning::new(), true).is_empty(),
            "bus slots must be exclusive"
        );
    }

    #[test]
    fn workspace_reuse_matches_fresh_allocation() {
        let g = fork_graph(30, 2000);
        let p = Platform::paper(4).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let scheduler = ListScheduler::new().with_bus_model(BusModel::Contention);
        let fresh = scheduler.schedule(&g, &p, &a, &Pinning::new()).unwrap();
        let mut ws = SchedWorkspace::new();
        // Dirty the workspace on an unrelated problem first.
        let other = fork_graph(5, 300);
        let p2 = Platform::paper(2).unwrap();
        let a2 = Slicer::bst_pure().distribute(&other, &p2).unwrap();
        scheduler
            .schedule_with(&other, &p2, &a2, &Pinning::new(), &mut ws)
            .unwrap();
        let reused = scheduler
            .schedule_with(&g, &p, &a, &Pinning::new(), &mut ws)
            .unwrap();
        assert_eq!(reused, fresh);
    }

    #[test]
    fn repair_with_unchanged_inputs_reuses_every_dispatch() {
        let g = fork_graph(30, 2000);
        let p = Platform::paper(4).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let scheduler = ListScheduler::new();
        let mut ws = SchedWorkspace::new();
        let prev = scheduler
            .schedule_with(&g, &p, &a, &Pinning::new(), &mut ws)
            .unwrap();
        let out = scheduler
            .repair(&g, &p, &a, &Pinning::new(), &prev, &mut ws)
            .unwrap();
        assert!(!out.fell_back);
        assert_eq!(out.reused, 4);
        assert_eq!(out.evicted, 0);
        assert_eq!(out.schedule, prev);
    }

    #[test]
    fn repair_after_wcet_change_matches_fresh_schedule() {
        for bus in [BusModel::Delay, BusModel::Contention] {
            let g = fork_graph(30, 2000);
            let p = Platform::paper(2).unwrap();
            let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
            let scheduler = ListScheduler::new().with_bus_model(bus);
            let mut ws = SchedWorkspace::new();
            let prev = scheduler
                .schedule_with(&g, &p, &a, &Pinning::new(), &mut ws)
                .unwrap();

            // Double one interior subtask's WCET and redo the slicing: both
            // the assignment and the graph the repair sees have changed.
            let g2 = slicing::GraphDelta::new()
                .set_wcet(SubtaskId::new(1), Time::new(40))
                .apply(&g, &Pinning::new())
                .unwrap()
                .graph;
            let a2 = Slicer::bst_pure().distribute(&g2, &p).unwrap();
            let out = scheduler
                .repair(&g2, &p, &a2, &Pinning::new(), &prev, &mut ws)
                .unwrap();
            let fresh = scheduler.schedule(&g2, &p, &a2, &Pinning::new()).unwrap();
            assert!(!out.fell_back, "bus={bus:?}");
            assert_eq!(out.schedule, fresh, "bus={bus:?}");
            assert_eq!(out.reused + out.evicted, 4);
        }
    }

    #[test]
    fn repair_after_pin_move_matches_fresh_schedule() {
        let g = fork_graph(10, 2000);
        let p = Platform::paper(4).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let scheduler = ListScheduler::new();
        let mut ws = SchedWorkspace::new();
        let mut pins = Pinning::new();
        pins.pin(SubtaskId::new(2), ProcessorId::new(0)).unwrap();
        let prev = scheduler.schedule_with(&g, &p, &a, &pins, &mut ws).unwrap();

        pins.unpin(SubtaskId::new(2));
        pins.pin(SubtaskId::new(2), ProcessorId::new(3)).unwrap();
        let out = scheduler.repair(&g, &p, &a, &pins, &prev, &mut ws).unwrap();
        let fresh = scheduler.schedule(&g, &p, &a, &pins).unwrap();
        assert!(!out.fell_back);
        assert_eq!(out.schedule, fresh);
        assert_eq!(
            out.schedule.processor(SubtaskId::new(2)),
            ProcessorId::new(3)
        );
    }

    #[test]
    fn repairs_chain_across_successive_changes() {
        let g = fork_graph(30, 2000);
        let p = Platform::paper(2).unwrap();
        let scheduler = ListScheduler::new().with_bus_model(BusModel::Contention);
        let mut ws = SchedWorkspace::new();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let mut prev = scheduler
            .schedule_with(&g, &p, &a, &Pinning::new(), &mut ws)
            .unwrap();
        let mut current = g;
        for (node, wcet) in [(1u32, 35i64), (2, 5), (1, 20)] {
            current = slicing::GraphDelta::new()
                .set_wcet(SubtaskId::new(node), Time::new(wcet))
                .apply(&current, &Pinning::new())
                .unwrap()
                .graph;
            let a = Slicer::bst_pure().distribute(&current, &p).unwrap();
            let out = scheduler
                .repair(&current, &p, &a, &Pinning::new(), &prev, &mut ws)
                .unwrap();
            assert!(!out.fell_back);
            let fresh = scheduler
                .schedule(&current, &p, &a, &Pinning::new())
                .unwrap();
            assert_eq!(out.schedule, fresh);
            prev = out.schedule;
        }
    }

    #[test]
    fn repair_falls_back_on_structure_or_config_change() {
        let g = fork_graph(30, 2000);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let scheduler = ListScheduler::new();
        let mut ws = SchedWorkspace::new();
        let prev = scheduler
            .schedule_with(&g, &p, &a, &Pinning::new(), &mut ws)
            .unwrap();

        // Different message sizes = different edge structure: fall back.
        let g2 = fork_graph(31, 2000);
        let a2 = Slicer::bst_pure().distribute(&g2, &p).unwrap();
        let out = scheduler
            .repair(&g2, &p, &a2, &Pinning::new(), &prev, &mut ws)
            .unwrap();
        assert!(out.fell_back);
        assert_eq!(out.reused, 0);
        assert_eq!(
            out.schedule,
            scheduler.schedule(&g2, &p, &a2, &Pinning::new()).unwrap()
        );

        // The fallback re-primed the workspace for the new graph, so a
        // follow-up repair is incremental again.
        let again = scheduler
            .repair(&g2, &p, &a2, &Pinning::new(), &out.schedule, &mut ws)
            .unwrap();
        assert!(!again.fell_back);
        assert_eq!(again.reused, 4);

        // A different scheduler configuration must not trust the state.
        let contended = scheduler.with_bus_model(BusModel::Contention);
        let out = contended
            .repair(&g2, &p, &a2, &Pinning::new(), &again.schedule, &mut ws)
            .unwrap();
        assert!(out.fell_back);
        assert_eq!(
            out.schedule,
            contended.schedule(&g2, &p, &a2, &Pinning::new()).unwrap()
        );

        // An unprimed workspace likewise.
        let mut fresh_ws = SchedWorkspace::new();
        let out = scheduler
            .repair(&g2, &p, &a2, &Pinning::new(), &prev, &mut fresh_ws)
            .unwrap();
        assert!(out.fell_back);
    }

    #[test]
    fn workspace_reuse_across_shrinking_and_growing_graphs() {
        // Satellite coverage: a workspace cycled big → small → big must
        // produce bit-identical schedules to fresh workspaces each time.
        let scheduler = ListScheduler::new().with_bus_model(BusModel::Contention);
        let mut ws = SchedWorkspace::new();
        let configs = [
            (fork_graph(30, 2000), Platform::paper(8).unwrap()),
            (fork_graph(5, 300), Platform::paper(1).unwrap()),
            (fork_graph(50, 4000), Platform::paper(4).unwrap()),
        ];
        for (g, p) in &configs {
            let a = Slicer::bst_pure().distribute(g, p).unwrap();
            let reused = scheduler
                .schedule_with(g, p, &a, &Pinning::new(), &mut ws)
                .unwrap();
            let fresh = scheduler.schedule(g, p, &a, &Pinning::new()).unwrap();
            assert_eq!(reused, fresh, "graph with {} procs", p.processor_count());
        }
    }

    #[test]
    fn schedule_against_packs_around_committed_load() {
        use crate::CommittedState;

        let g = fork_graph(5, 2000);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let scheduler = ListScheduler::new().with_respect_release(false);
        let mut ws = SchedWorkspace::new();
        let mut state = CommittedState::new(2, BusModel::Delay);

        // Admit the same graph three times; every trial must avoid the
        // reservations of all earlier residents.
        let mut schedules = Vec::new();
        for round in 0..3 {
            let s = scheduler
                .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
                .unwrap();
            for entry in s.entries() {
                for &(busy_s, busy_e) in state.processor_busy(entry.processor.index()) {
                    assert!(
                        entry.finish <= busy_s || busy_e <= entry.start,
                        "round {round}: entry [{}, {}) overlaps committed [{busy_s}, {busy_e})",
                        entry.start,
                        entry.finish
                    );
                }
            }
            state.commit(&s).unwrap();
            schedules.push(s);
        }
        assert_eq!(state.residents(), 3);
        // Same graph, same windows: later admissions must finish no earlier.
        assert!(schedules[1].makespan() >= schedules[0].makespan());
        assert!(schedules[2].makespan() >= schedules[1].makespan());
    }

    #[test]
    fn schedule_against_empty_state_matches_schedule_with() {
        use crate::CommittedState;

        for bus in [BusModel::Delay, BusModel::Contention] {
            let g = fork_graph(30, 2000);
            let p = Platform::paper(4).unwrap();
            let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
            let scheduler = ListScheduler::new().with_bus_model(bus);
            let state = CommittedState::new(4, bus);
            let mut ws = SchedWorkspace::new();
            let against = scheduler
                .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
                .unwrap();
            let plain = scheduler.schedule(&g, &p, &a, &Pinning::new()).unwrap();
            assert_eq!(against, plain, "bus={bus:?}");
        }
    }

    #[test]
    fn schedule_against_rejects_incompatible_base() {
        use crate::CommittedState;

        let g = fork_graph(5, 2000);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let mut ws = SchedWorkspace::new();

        let wrong_size = CommittedState::new(4, BusModel::Delay);
        assert!(matches!(
            ListScheduler::new().schedule_against(
                &g,
                &p,
                &a,
                &Pinning::new(),
                &wrong_size,
                &mut ws
            ),
            Err(SchedError::BaseMismatch(_))
        ));

        let wrong_bus = CommittedState::new(2, BusModel::Contention);
        assert!(matches!(
            ListScheduler::new().schedule_against(&g, &p, &a, &Pinning::new(), &wrong_bus, &mut ws),
            Err(SchedError::BaseMismatch(_))
        ));
    }

    #[test]
    fn repair_against_reuses_after_rollback_and_falls_back_after_foreign_commit() {
        use crate::CommittedState;

        for bus in [BusModel::Delay, BusModel::Contention] {
            let g = fork_graph(30, 4000);
            let p = Platform::paper(2).unwrap();
            let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
            let scheduler = ListScheduler::new().with_bus_model(bus);
            let mut ws = SchedWorkspace::new();
            let mut state = CommittedState::new(2, bus);

            // Pre-load the platform with one resident, then trial + admit
            // the graph under test.
            let resident = scheduler
                .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
                .unwrap();
            state.commit(&resident).unwrap();
            let prev = scheduler
                .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
                .unwrap();
            let receipt = state.commit(&prev).unwrap();

            // Amend: roll the admission back, repair for a changed WCET.
            state.rollback(&prev, &receipt).unwrap();
            let g2 = slicing::GraphDelta::new()
                .set_wcet(SubtaskId::new(2), Time::new(25))
                .apply(&g, &Pinning::new())
                .unwrap()
                .graph;
            let a2 = Slicer::bst_pure().distribute(&g2, &p).unwrap();
            let out = scheduler
                .repair_against(&g2, &p, &a2, &Pinning::new(), &prev, &state, &mut ws)
                .unwrap();
            assert!(!out.fell_back, "bus={bus:?}");
            let mut fresh_ws = SchedWorkspace::new();
            let fresh = scheduler
                .schedule_against(&g2, &p, &a2, &Pinning::new(), &state, &mut fresh_ws)
                .unwrap();
            assert_eq!(out.schedule, fresh, "bus={bus:?}");
            let receipt = state.commit(&out.schedule).unwrap();

            // A mutation that is *not* a rollback of this run's commit must
            // not be trusted: roll back, commit someone else, repair again.
            state.rollback(&out.schedule, &receipt).unwrap();
            let other = scheduler
                .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut fresh_ws)
                .unwrap();
            state.commit(&other).unwrap();
            let out2 = scheduler
                .repair_against(
                    &g2,
                    &p,
                    &a2,
                    &Pinning::new(),
                    &out.schedule,
                    &state,
                    &mut ws,
                )
                .unwrap();
            assert!(out2.fell_back, "bus={bus:?}");
            let fresh2 = scheduler
                .schedule_against(&g2, &p, &a2, &Pinning::new(), &state, &mut fresh_ws)
                .unwrap();
            assert_eq!(out2.schedule, fresh2, "bus={bus:?}");
        }
    }

    #[test]
    fn plain_repair_refuses_state_retained_from_a_based_run() {
        use crate::CommittedState;

        let g = fork_graph(30, 4000);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let scheduler = ListScheduler::new();
        let mut ws = SchedWorkspace::new();
        let mut state = CommittedState::new(2, BusModel::Delay);

        let resident = scheduler
            .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
            .unwrap();
        state.commit(&resident).unwrap();
        let prev = scheduler
            .schedule_against(&g, &p, &a, &Pinning::new(), &state, &mut ws)
            .unwrap();

        // `repair` targets an *empty* platform; the retained state was
        // seeded from committed load, so it must fall back — silently
        // producing the correct empty-platform schedule.
        let out = scheduler
            .repair(&g, &p, &a, &Pinning::new(), &prev, &mut ws)
            .unwrap();
        assert!(out.fell_back);
        assert_eq!(
            out.schedule,
            scheduler.schedule(&g, &p, &a, &Pinning::new()).unwrap()
        );
    }

    #[test]
    fn mismatched_assignment_rejected() {
        let other = fork_graph(5, 300);
        let mut b = TaskGraph::builder();
        b.add_subtask(
            Subtask::new(Time::new(1))
                .released_at(Time::ZERO)
                .due_at(Time::new(10)),
        );
        let tiny = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&other, &p).unwrap();
        // Assignment for the 4-node graph cannot drive the 1-node graph.
        assert!(matches!(
            ListScheduler::new().schedule(&tiny, &p, &a, &Pinning::new()),
            Err(SchedError::AssignmentMismatch { .. })
        ));
    }

    #[test]
    fn invalid_pinning_rejected() {
        let g = fork_graph(5, 300);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let mut pins = Pinning::new();
        pins.pin(SubtaskId::new(0), ProcessorId::new(7)).unwrap();
        assert!(matches!(
            ListScheduler::new().schedule(&g, &p, &a, &pins),
            Err(SchedError::Platform(_))
        ));
    }

    #[test]
    fn deadline_miss_emits_warn_event_naming_the_window() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Capture(Arc<Mutex<Vec<tracing::Event>>>);
        impl tracing::Subscriber for Capture {
            fn enabled(&self, level: tracing::Level, _target: &str) -> bool {
                level <= tracing::Level::Warn
            }
            fn event(&self, event: &tracing::Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }

        // One subtask whose execution time exceeds its end-to-end deadline:
        // the assigned window is [0, 10] but the subtask runs for 50, so the
        // scheduler must report the miss with the offending window.
        let mut b = TaskGraph::builder();
        let only = b.add_subtask(
            Subtask::new(Time::new(50))
                .released_at(Time::ZERO)
                .due_at(Time::new(10)),
        );
        let g = b.build().unwrap();
        let p = Platform::paper(1).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();

        let capture = Capture::default();
        tracing::subscriber::with_default(capture.clone(), || {
            ListScheduler::new()
                .schedule(&g, &p, &a, &Pinning::new())
                .unwrap();
        });

        let events = capture.0.lock().unwrap();
        let miss = events
            .iter()
            .find(|e| e.message == "deadline miss")
            .expect("scheduling past the deadline must emit a warn event");
        assert_eq!(miss.level, tracing::Level::Warn);
        let field = |key: &str| {
            miss.fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
                .unwrap_or_else(|| panic!("missing field `{key}`"))
        };
        assert_eq!(field("subtask"), only.to_string());
        assert_eq!(field("release"), "0");
        assert_eq!(field("deadline"), "10");
        assert_eq!(field("finish"), "50");
        assert_eq!(field("lateness"), "40");
    }

    #[test]
    fn miss_log_rate_limits_deadline_miss_warns() {
        use std::sync::{Arc, Mutex};

        use crate::MissLog;

        #[derive(Clone, Default)]
        struct Capture(Arc<Mutex<Vec<tracing::Event>>>);
        impl tracing::Subscriber for Capture {
            fn enabled(&self, level: tracing::Level, _target: &str) -> bool {
                level <= tracing::Level::Warn
            }
            fn event(&self, event: &tracing::Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }

        // A chain of three subtasks that all run past the end-to-end
        // deadline: three misses per schedule call.
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(50)).released_at(Time::ZERO));
        let c = b.add_subtask(Subtask::new(Time::new(50)));
        let d = b.add_subtask(Subtask::new(Time::new(50)).due_at(Time::new(10)));
        b.add_edge(a, c, 1).unwrap();
        b.add_edge(c, d, 1).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(1).unwrap();
        let asg = Slicer::bst_pure().distribute(&g, &p).unwrap();

        let log = Arc::new(MissLog::new(2));
        let mut ws = SchedWorkspace::new();
        ws.set_miss_log(Some(Arc::clone(&log)));

        let capture = Capture::default();
        tracing::subscriber::with_default(capture.clone(), || {
            // Two calls → six misses; only the first two may warn.
            for _ in 0..2 {
                ListScheduler::new()
                    .schedule_with(&g, &p, &asg, &Pinning::new(), &mut ws)
                    .unwrap();
            }
        });

        let warns = capture
            .0
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.message == "deadline miss")
            .count();
        assert_eq!(warns, 2, "only the budgeted warnings may be emitted");
        assert_eq!(log.emitted(), 2);
        assert_eq!(log.suppressed(), 4);

        // Detaching the log restores unlimited warnings.
        ws.set_miss_log(None);
        let capture = Capture::default();
        tracing::subscriber::with_default(capture.clone(), || {
            ListScheduler::new()
                .schedule_with(&g, &p, &asg, &Pinning::new(), &mut ws)
                .unwrap();
        });
        let warns = capture
            .0
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.message == "deadline miss")
            .count();
        assert_eq!(warns, 3);
    }

    #[test]
    fn accessors() {
        let s = ListScheduler::new()
            .with_bus_model(BusModel::Contention)
            .with_respect_release(false)
            .with_placement(PlacementPolicy::Append);
        assert!(!s.respects_release());
        assert_eq!(s.bus_model(), BusModel::Contention);
        assert_eq!(s.placement(), PlacementPolicy::Append);
        // Default matches `new` (C-COMMON-TRAITS).
        assert_eq!(ListScheduler::default(), ListScheduler::new());
        assert!(ListScheduler::new().respects_release());
        assert_eq!(ListScheduler::new().placement(), PlacementPolicy::Insertion);
        assert_eq!(PlacementPolicy::Insertion.label(), "insertion");
        assert_eq!(PlacementPolicy::Append.label(), "append");
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::Insertion);
    }
}
