//! Schedule representation and validation.

use serde::{Deserialize, Serialize};
use taskgraph::{EdgeId, SubtaskId, TaskGraph, Time};

use platform::{Pinning, Platform, ProcessorId};

/// Placement of one subtask: processor plus non-preemptive execution
/// interval `[start, finish)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The scheduled subtask.
    pub subtask: SubtaskId,
    /// The processor it executes on.
    pub processor: ProcessorId,
    /// Execution start time.
    pub start: Time,
    /// Execution finish time (`start` + execution time).
    pub finish: Time,
}

/// A remote message transfer: departure from the producer's processor and
/// arrival at the consumer's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageSlot {
    /// The transferred message (edge).
    pub edge: EdgeId,
    /// Sending processor.
    pub from: ProcessorId,
    /// Receiving processor.
    pub to: ProcessorId,
    /// Transfer start time.
    pub depart: Time,
    /// Transfer completion time.
    pub arrive: Time,
}

/// A complete non-preemptive schedule for one task graph on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    entries: Vec<ScheduleEntry>,
    /// Per edge: `Some` for remote transfers, `None` for same-processor
    /// messages (free via shared memory).
    messages: Vec<Option<MessageSlot>>,
    makespan: Time,
    processors: usize,
}

impl Schedule {
    pub(crate) fn new(
        entries: Vec<ScheduleEntry>,
        messages: Vec<Option<MessageSlot>>,
        processors: usize,
    ) -> Self {
        let makespan = entries.iter().map(|e| e.finish).max().unwrap_or(Time::ZERO);
        Schedule {
            entries,
            messages,
            makespan,
            processors,
        }
    }

    /// Assembles a schedule from raw placements and message slots, without
    /// running a scheduler.
    ///
    /// `entries` must be indexed by subtask and `messages` by edge (one
    /// `None` per local message), exactly as [`Schedule::entries`] and
    /// [`Schedule::messages`] expose them. The makespan is derived.
    ///
    /// Nothing is checked here — that is the point: hand-built (or
    /// deliberately broken) schedules feed [`Schedule::validate`] in oracle
    /// tests, which must see the violation, not a construction panic.
    pub fn from_parts(
        entries: Vec<ScheduleEntry>,
        messages: Vec<Option<MessageSlot>>,
        processors: usize,
    ) -> Self {
        Schedule::new(entries, messages, processors)
    }

    /// The placement of a subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the scheduled graph.
    #[inline]
    pub fn entry(&self, id: SubtaskId) -> ScheduleEntry {
        self.entries[id.index()]
    }

    /// Start time of a subtask.
    pub fn start(&self, id: SubtaskId) -> Time {
        self.entry(id).start
    }

    /// Finish time of a subtask.
    pub fn finish(&self, id: SubtaskId) -> Time {
        self.entry(id).finish
    }

    /// Processor assigned to a subtask.
    pub fn processor(&self, id: SubtaskId) -> ProcessorId {
        self.entry(id).processor
    }

    /// All placements, indexed by subtask.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// The remote transfer for an edge, or `None` for local messages.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the scheduled graph.
    pub fn message(&self, id: EdgeId) -> Option<MessageSlot> {
        self.messages[id.index()]
    }

    /// All message slots, indexed by edge.
    pub fn messages(&self) -> &[Option<MessageSlot>] {
        &self.messages
    }

    /// The completion time of the latest subtask.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Number of processors the schedule targets.
    pub fn processor_count(&self) -> usize {
        self.processors
    }

    /// Fraction of processor capacity used up to the makespan:
    /// `Σ execution / (processors × makespan)`.
    pub fn utilization(&self, graph: &TaskGraph) -> f64 {
        if !self.makespan.is_positive() {
            return 0.0;
        }
        let work: Time = graph.subtask_ids().map(|id| graph.subtask(id).wcet()).sum();
        work.as_f64() / (self.processors as f64 * self.makespan.as_f64())
    }

    /// Number of remote (interprocessor) messages.
    pub fn remote_message_count(&self) -> usize {
        self.messages.iter().filter(|m| m.is_some()).count()
    }

    /// Idle intervals of `proc` within `[0, makespan)`, in order.
    ///
    /// The paper motivates maximum task lateness as an indicator of "how
    /// much additional background workload the schedule can handle"; these
    /// intervals are where such background work would run.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is outside the schedule's platform.
    pub fn idle_intervals(&self, proc: ProcessorId) -> Vec<(Time, Time)> {
        assert!(
            proc.index() < self.processors,
            "unknown processor {proc} for a {}-processor schedule",
            self.processors
        );
        let mut busy: Vec<(Time, Time)> = self
            .entries
            .iter()
            .filter(|e| e.processor == proc)
            .map(|e| (e.start, e.finish))
            .collect();
        busy.sort_unstable();
        let mut idle = Vec::new();
        let mut cursor = Time::ZERO;
        for (s, f) in busy {
            if s > cursor {
                idle.push((cursor, s));
            }
            cursor = cursor.max(f);
        }
        if cursor < self.makespan {
            idle.push((cursor, self.makespan));
        }
        idle
    }

    /// Total idle time across all processors within `[0, makespan)` — the
    /// capacity available for additional background workload without
    /// disturbing this schedule.
    pub fn background_capacity(&self) -> Time {
        (0..self.processors as u32)
            .flat_map(|p| self.idle_intervals(ProcessorId::new(p)))
            .map(|(s, f)| f - s)
            .sum()
    }

    /// The largest contiguous idle interval on any processor — an upper
    /// bound on the longest non-preemptive background task that fits
    /// without delaying the schedule.
    pub fn largest_idle_gap(&self) -> Time {
        (0..self.processors as u32)
            .flat_map(|p| self.idle_intervals(ProcessorId::new(p)))
            .map(|(s, f)| f - s)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Structural validation: execution intervals, processor exclusivity,
    /// precedence + communication delays, and pinning constraints.
    ///
    /// `check_bus_exclusive` additionally requires remote transfers to be
    /// pairwise disjoint (the contention model's invariant).
    pub fn validate(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        pinning: &Pinning,
        check_bus_exclusive: bool,
    ) -> Vec<ScheduleViolation> {
        let mut violations = Vec::new();

        // Execution time and interval sanity.
        for id in graph.subtask_ids() {
            let e = self.entry(id);
            if e.finish - e.start != graph.subtask(id).wcet() {
                violations.push(ScheduleViolation::WrongDuration(id));
            }
            if let Some(pin) = pinning.processor_for(id) {
                if pin != e.processor {
                    violations.push(ScheduleViolation::PinIgnored(id));
                }
            }
        }

        // Processor exclusivity.
        let mut per_proc: Vec<Vec<ScheduleEntry>> = vec![Vec::new(); self.processors];
        for e in &self.entries {
            per_proc[e.processor.index()].push(*e);
        }
        for entries in &mut per_proc {
            entries.sort_by_key(|e| (e.start, e.subtask));
            for pair in entries.windows(2) {
                if pair[1].start < pair[0].finish {
                    violations.push(ScheduleViolation::ProcessorOverlap(
                        pair[0].subtask,
                        pair[1].subtask,
                    ));
                }
            }
        }

        // Precedence and communication.
        for eid in graph.edge_ids() {
            let edge = graph.edge(eid);
            let producer = self.entry(edge.src());
            let consumer = self.entry(edge.dst());
            match self.message(eid) {
                None => {
                    if producer.processor != consumer.processor {
                        violations.push(ScheduleViolation::MissingTransfer(eid));
                    } else if consumer.start < producer.finish {
                        violations.push(ScheduleViolation::PrecedenceViolated(eid));
                    }
                }
                Some(slot) => {
                    let nominal = platform
                        .comm_cost(slot.from, slot.to, edge.items())
                        .unwrap_or(Time::MAX);
                    if slot.from != producer.processor
                        || slot.to != consumer.processor
                        || slot.depart < producer.finish
                        || slot.arrive - slot.depart != nominal
                        || consumer.start < slot.arrive
                    {
                        violations.push(ScheduleViolation::PrecedenceViolated(eid));
                    }
                }
            }
        }

        if check_bus_exclusive {
            let mut slots: Vec<MessageSlot> = self.messages.iter().flatten().copied().collect();
            slots.sort_by_key(|s| (s.depart, s.edge));
            for pair in slots.windows(2) {
                if pair[1].depart < pair[0].arrive {
                    violations.push(ScheduleViolation::BusOverlap(pair[0].edge, pair[1].edge));
                }
            }
        }

        violations
    }
}

/// A structural violation found by [`Schedule::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// An entry's interval does not match the subtask's execution time.
    WrongDuration(SubtaskId),
    /// Two subtasks overlap on the same processor.
    ProcessorOverlap(SubtaskId, SubtaskId),
    /// A consumer starts before its input is available.
    PrecedenceViolated(EdgeId),
    /// A cross-processor edge has no recorded transfer.
    MissingTransfer(EdgeId),
    /// Two transfers overlap on the shared bus.
    BusOverlap(EdgeId, EdgeId),
    /// A strict locality constraint was ignored.
    PinIgnored(SubtaskId),
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::WrongDuration(t) => write!(f, "subtask {t} has a wrong duration"),
            ScheduleViolation::ProcessorOverlap(a, b) => {
                write!(f, "subtasks {a} and {b} overlap on a processor")
            }
            ScheduleViolation::PrecedenceViolated(e) => {
                write!(f, "edge {e} violates precedence or communication delay")
            }
            ScheduleViolation::MissingTransfer(e) => {
                write!(f, "edge {e} crosses processors without a transfer")
            }
            ScheduleViolation::BusOverlap(a, b) => {
                write!(f, "transfers {a} and {b} overlap on the bus")
            }
            ScheduleViolation::PinIgnored(t) => {
                write!(f, "subtask {t} was placed off its pinned processor")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use platform::Pinning;
    use slicing::Slicer;
    use taskgraph::Subtask;

    use crate::ListScheduler;

    use super::*;

    fn two_task_schedule() -> (TaskGraph, Schedule) {
        // Two independent tasks; on one processor the second waits for its
        // window, leaving idle time.
        let mut b = TaskGraph::builder();
        b.add_subtask(
            Subtask::new(Time::new(10))
                .released_at(Time::ZERO)
                .due_at(Time::new(40)),
        );
        b.add_subtask(
            Subtask::new(Time::new(10))
                .released_at(Time::new(30))
                .due_at(Time::new(100)),
        );
        let g = b.build().unwrap();
        let p = Platform::paper(1).unwrap();
        let asg = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .schedule(&g, &p, &asg, &Pinning::new())
            .unwrap();
        (g, s)
    }

    #[test]
    fn idle_intervals_cover_gaps() {
        let (g, s) = two_task_schedule();
        let idle = s.idle_intervals(ProcessorId::new(0));
        // t0 runs [0, 10), t1 at its release [30, 40): one gap [10, 30).
        assert_eq!(idle, vec![(Time::new(10), Time::new(30))]);
        assert_eq!(s.background_capacity(), Time::new(20));
        assert_eq!(s.largest_idle_gap(), Time::new(20));
        // Idle + busy == processors × makespan.
        let busy: Time = g.subtask_ids().map(|id| g.subtask(id).wcet()).sum();
        assert_eq!(
            s.background_capacity() + busy,
            s.makespan() * s.processor_count() as i64
        );
    }

    #[test]
    fn fully_packed_processor_has_no_idle() {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let z = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(100)));
        b.add_edge(a, z, 1).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(1).unwrap();
        let asg = Slicer::bst_norm().distribute(&g, &p).unwrap();
        let s = ListScheduler::new()
            .with_respect_release(false)
            .schedule(&g, &p, &asg, &Pinning::new())
            .unwrap();
        assert!(s.idle_intervals(ProcessorId::new(0)).is_empty());
        assert_eq!(s.background_capacity(), Time::ZERO);
        assert_eq!(s.largest_idle_gap(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown processor")]
    fn idle_intervals_reject_bad_processor() {
        let (_, s) = two_task_schedule();
        let _ = s.idle_intervals(ProcessorId::new(5));
    }

    #[test]
    fn violation_display() {
        let msgs = [
            ScheduleViolation::WrongDuration(SubtaskId::new(0)).to_string(),
            ScheduleViolation::ProcessorOverlap(SubtaskId::new(0), SubtaskId::new(1)).to_string(),
            ScheduleViolation::PrecedenceViolated(EdgeId::new(0)).to_string(),
            ScheduleViolation::MissingTransfer(EdgeId::new(1)).to_string(),
            ScheduleViolation::BusOverlap(EdgeId::new(0), EdgeId::new(1)).to_string(),
            ScheduleViolation::PinIgnored(SubtaskId::new(3)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
