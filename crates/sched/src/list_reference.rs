//! The original list scheduler, kept verbatim as the behavioural oracle for
//! the optimized hot path — the `sched` analogue of
//! `slicing::path_search::reference` from the critical-path overhaul.
//!
//! # Equivalence contract
//!
//! [`schedule`] reproduces the pre-overhaul dispatch loop exactly: a
//! `BTreeSet` ready queue walked with iter-then-remove, a candidate list
//! rebuilt per dispatch, a full trial pass (bus snapshot per candidate under
//! every bus model) and a second, committed `start_on` run for the winner.
//! [`RefTimeline`] is the pre-overhaul timeline: linear `earliest_gap`
//! scans from the front and `reserve` keeps every reservation as its own
//! interval — no coalescing, no binary search, no hint.
//!
//! The `equivalence` proptest suite in [`super`] (≥256 cases) pins the
//! optimized scheduler to this oracle: bit-identical [`Schedule`]s (entries,
//! message slots, processor count — `Schedule` equality covers all three)
//! across random DAGs, both bus models, both placement policies,
//! pinned/unpinned mixes, and both release-time modes. Estimate-once
//! dispatch, interval coalescing, the heap ready queue, and workspace reuse
//! are all pure strength reductions; any observable divergence is a bug in
//! the optimized path.
//!
//! This module may be removed once the optimized scheduler has an
//! independent oracle (e.g. a constraint checker proving optimality of each
//! greedy choice); until then it is the specification.

use std::collections::BTreeSet;

use platform::{Pinning, Platform, ProcessorId};
use slicing::DeadlineAssignment;
use taskgraph::{SubtaskId, TaskGraph, Time};

use crate::bus::BusModel;
use crate::{ListScheduler, MessageSlot, PlacementPolicy, SchedError, Schedule, ScheduleEntry};

/// The pre-overhaul reservation timeline: sorted disjoint intervals with a
/// linear `earliest_gap` scan and one interval per reservation.
#[derive(Debug, Default, Clone)]
pub(crate) struct RefTimeline {
    busy: Vec<(Time, Time)>,
    horizon: Time,
}

impl RefTimeline {
    pub(crate) fn new() -> Self {
        RefTimeline::default()
    }

    pub(crate) fn earliest_gap(&self, earliest: Time, duration: Time) -> Time {
        if !duration.is_positive() {
            return earliest;
        }
        let mut candidate = earliest;
        for &(start, end) in &self.busy {
            if candidate + duration <= start {
                break;
            }
            if end > candidate {
                candidate = end;
            }
        }
        candidate
    }

    pub(crate) fn append_start(&self, earliest: Time) -> Time {
        earliest.max(self.horizon)
    }

    pub(crate) fn reserve(&mut self, start: Time, duration: Time) {
        if !duration.is_positive() {
            return;
        }
        let end = start + duration;
        let idx = self.busy.partition_point(|&(s, _)| s < start);
        debug_assert!(
            idx == 0 || self.busy[idx - 1].1 <= start,
            "slot overlaps previous reservation"
        );
        debug_assert!(
            idx == self.busy.len() || end <= self.busy[idx].0,
            "slot overlaps next reservation"
        );
        self.busy.insert(idx, (start, end));
        self.horizon = self.horizon.max(end);
    }
}

/// The pre-overhaul `ListScheduler::schedule`: trial pass with a bus
/// snapshot per candidate, then a second committed `start_on` for the
/// winner. Reads the scheduler's configuration through its public
/// accessors, so both implementations answer to the same knobs.
pub(crate) fn schedule(
    scheduler: &ListScheduler,
    graph: &TaskGraph,
    platform: &Platform,
    assignment: &DeadlineAssignment,
    pinning: &Pinning,
) -> Result<Schedule, SchedError> {
    if assignment.subtask_count() != graph.subtask_count() {
        return Err(SchedError::AssignmentMismatch {
            graph_subtasks: graph.subtask_count(),
            assignment_subtasks: assignment.subtask_count(),
        });
    }
    pinning.validate(graph, platform)?;

    let n = graph.subtask_count();
    let mut placed: Vec<Option<ScheduleEntry>> = vec![None; n];
    let mut messages: Vec<Option<MessageSlot>> = vec![None; graph.edge_count()];
    let mut procs: Vec<RefTimeline> = vec![RefTimeline::new(); platform.processor_count()];
    let mut bus = RefTimeline::new();

    let mut missing_preds: Vec<usize> = graph
        .subtask_ids()
        .map(|id| graph.in_edges(id).len())
        .collect();
    let mut ready: BTreeSet<(Time, SubtaskId)> = graph
        .subtask_ids()
        .filter(|&id| missing_preds[id.index()] == 0)
        .map(|id| (assignment.absolute_deadline(id), id))
        .collect();

    let mut candidates: Vec<ProcessorId> = Vec::with_capacity(platform.processor_count());
    let mut trial_bus = RefTimeline::new();

    while let Some(&(deadline, id)) = ready.iter().next() {
        ready.remove(&(deadline, id));

        candidates.clear();
        match pinning.processor_for(id) {
            Some(p) => candidates.push(p),
            None => candidates.extend(platform.processors()),
        }

        let mut best: Option<(Time, ProcessorId)> = None;
        for &p in &candidates {
            trial_bus.clone_from(&bus);
            let start = start_on(
                scheduler,
                graph,
                platform,
                assignment,
                &placed,
                &procs,
                &mut trial_bus,
                None,
                id,
                p,
            )?;
            if best.is_none_or(|(s, _)| start < s) {
                best = Some((start, p));
            }
        }
        let (start, proc) = best.ok_or(SchedError::Unschedulable(id))?;
        let committed_start = start_on(
            scheduler,
            graph,
            platform,
            assignment,
            &placed,
            &procs,
            &mut bus,
            Some(&mut messages),
            id,
            proc,
        )?;
        debug_assert_eq!(committed_start, start, "estimate must match commit");

        let wcet = graph.subtask(id).wcet();
        let finish = start + wcet;
        procs[proc.index()].reserve(start, wcet);
        placed[id.index()] = Some(ScheduleEntry {
            subtask: id,
            processor: proc,
            start,
            finish,
        });

        for succ in graph.successors(id) {
            let slot = &mut missing_preds[succ.index()];
            *slot -= 1;
            if *slot == 0 {
                ready.insert((assignment.absolute_deadline(succ), succ));
            }
        }
    }

    let entries: Result<Vec<ScheduleEntry>, SchedError> = graph
        .subtask_ids()
        .map(|id| placed[id.index()].ok_or(SchedError::Unschedulable(id)))
        .collect();
    Ok(Schedule::new(
        entries?,
        messages,
        platform.processor_count(),
    ))
}

#[allow(clippy::too_many_arguments)]
fn start_on(
    scheduler: &ListScheduler,
    graph: &TaskGraph,
    platform: &Platform,
    assignment: &DeadlineAssignment,
    placed: &[Option<ScheduleEntry>],
    procs: &[RefTimeline],
    bus: &mut RefTimeline,
    mut commit: Option<&mut Vec<Option<MessageSlot>>>,
    id: SubtaskId,
    p: ProcessorId,
) -> Result<Time, SchedError> {
    let mut data_ready = Time::ZERO;
    for &eid in graph.in_edges(id) {
        let edge = graph.edge(eid);
        let producer = placed[edge.src().index()].expect("list order guarantees scheduled preds");
        if producer.processor == p {
            data_ready = data_ready.max(producer.finish);
            continue;
        }
        let cost = platform.comm_cost(producer.processor, p, edge.items())?;
        let depart = match scheduler.bus_model() {
            BusModel::Delay => producer.finish,
            BusModel::Contention => bus.earliest_gap(producer.finish, cost),
        };
        if scheduler.bus_model() == BusModel::Contention {
            bus.reserve(depart, cost);
        }
        let arrive = depart + cost;
        data_ready = data_ready.max(arrive);
        if let Some(messages) = commit.as_deref_mut() {
            messages[eid.index()] = Some(MessageSlot {
                edge: eid,
                from: producer.processor,
                to: p,
                depart,
                arrive,
            });
        }
    }

    let mut lower_bound = data_ready;
    if scheduler.respects_release() {
        lower_bound = lower_bound.max(assignment.release(id));
    }
    if let Some(given) = graph.subtask(id).release() {
        lower_bound = lower_bound.max(given);
    }

    let wcet = graph.subtask(id).wcet();
    let start = match scheduler.placement() {
        PlacementPolicy::Insertion => procs[p.index()].earliest_gap(lower_bound, wcet),
        PlacementPolicy::Append => procs[p.index()].append_start(lower_bound),
    };
    Ok(start)
}
