//! Deadline-driven list scheduling for distributed hard real-time task
//! graphs.
//!
//! This crate implements the *task assignment algorithm* of §5.3 of the
//! reproduced paper: a deadline-driven list scheduler that consumes the
//! execution windows produced by deadline distribution (`slicing`) and
//! places every subtask on the homogeneous multiprocessor (`platform`):
//!
//! * subtasks become schedulable when all their predecessors are scheduled;
//! * among schedulable subtasks, the one with the **earliest assigned
//!   absolute deadline** is selected (EDF);
//! * it is placed on the processor yielding the **earliest start time**
//!   under a non-preemptive, time-driven run-time model, accounting for
//!   interprocessor communication delays (and optionally bus contention);
//! * strict locality constraints (pinned subtasks) restrict placement.
//!
//! [`LatenessReport`] then computes the paper's figure of merit, the
//! **maximum task lateness**.
//!
//! # Examples
//!
//! ```
//! use platform::{Pinning, Platform};
//! use rand::SeedableRng;
//! use sched::{LatenessReport, ListScheduler};
//! use slicing::Slicer;
//! use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = WorkloadSpec::paper(ExecVariation::Mdet);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(11);
//! let graph = generate(&spec, &mut rng)?;
//! let platform = Platform::paper(8)?;
//! let assignment = Slicer::ast_adapt().distribute(&graph, &platform)?;
//!
//! let schedule = ListScheduler::new().schedule(&graph, &platform, &assignment, &Pinning::new())?;
//! let report = LatenessReport::new(&graph, &assignment, &schedule);
//! println!("max task lateness: {}", report.max_lateness());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod bus;
mod committed;
mod error;
pub mod gantt;
mod lateness;
mod list;
mod misslog;
mod schedule;
mod timeline;
mod workspace;

pub use bus::BusModel;
pub use committed::{CommitReceipt, CommittedState};
pub use error::SchedError;
pub use lateness::LatenessReport;
pub use list::{ListScheduler, PlacementPolicy, RepairOutcome};
pub use misslog::MissLog;
pub use schedule::{MessageSlot, Schedule, ScheduleEntry, ScheduleViolation};
pub use workspace::SchedWorkspace;

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_and_sync() {
        assert_send_sync::<ListScheduler>();
        assert_send_sync::<Schedule>();
        assert_send_sync::<LatenessReport>();
        assert_send_sync::<SchedError>();
        assert_send_sync::<BusModel>();
        assert_send_sync::<SchedWorkspace>();
        assert_send_sync::<MissLog>();
        assert_send_sync::<RepairOutcome>();
        assert_send_sync::<CommittedState>();
        assert_send_sync::<CommitReceipt>();
    }
}
