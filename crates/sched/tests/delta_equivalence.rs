//! End-to-end equivalence of the incremental delta pipeline.
//!
//! Random workloads are mutated by random chained [`GraphDelta`]
//! sequences; after every step the incremental path
//! ([`Slicer::redistribute`] feeding [`ListScheduler::repair`]) must
//! produce bit-identical results to a from-scratch
//! [`Slicer::distribute`] + [`ListScheduler::schedule_with`] over the
//! same mutated inputs. Covered dimensions: all four paper metrics, both
//! bus models, both placement policies, pinned and unpinned subtasks,
//! and non-structural (WCET, anchor, pin) as well as structural
//! (subtask/edge insertion and removal) ops — the latter exercise the
//! documented full-recompute fallback, which must be equally
//! bit-identical.
//!
//! The case count honours `PROPTEST_CASES` (CI pins it for
//! reproducible runtime).

use platform::{Pinning, Platform, ProcessorId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched::{BusModel, ListScheduler, PlacementPolicy, SchedWorkspace};
use slicing::{DeltaOp, GraphDelta, MetricKind, SliceMemo, Slicer};
use taskgraph::{Subtask, SubtaskId, TaskGraph, Time};

/// A random DAG with forward-only edges (acyclicity is structural),
/// anchored inputs/outputs, and random interior anchors — the same
/// shape the scheduler-equivalence suite uses.
fn random_graph(rng: &mut StdRng, n: usize, density: f64) -> TaskGraph {
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    let mut has_pred = vec![false; n];
    let mut has_succ = vec![false; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                edges.push((i, j, rng.gen_range(1..=20)));
                has_succ[i] = true;
                has_pred[j] = true;
            }
        }
    }

    let mut b = TaskGraph::builder();
    let ids: Vec<_> = (0..n)
        .map(|v| {
            let mut s = Subtask::new(Time::new(rng.gen_range(1..=50)));
            if !has_pred[v] || rng.gen_bool(0.3) {
                s = s.released_at(Time::new(rng.gen_range(0..=30)));
            }
            if !has_succ[v] || rng.gen_bool(0.3) {
                s = s.due_at(Time::new(rng.gen_range(300..=2000)));
            }
            b.add_subtask(s)
        })
        .collect();
    for (i, j, items) in edges {
        b.add_edge(ids[i], ids[j], items)
            .expect("forward edges cannot cycle or duplicate");
    }
    b.build()
        .expect("non-empty graph with anchored inputs/outputs")
}

/// One random mutation of the *current* graph. Weighted towards the
/// WCET/anchor/pin ops the incremental path repairs in place, with a
/// structural-op tail that forces the fallback. Ops may produce an
/// invalid rebuild (cleared input anchor, duplicate edge, ...) — the
/// caller skips those steps, mirroring how an admission controller
/// rejects an inapplicable delta.
fn random_op(rng: &mut StdRng, graph: &TaskGraph, nproc: usize) -> DeltaOp {
    let n = graph.subtask_count() as u32;
    let pick = |rng: &mut StdRng| SubtaskId::new(rng.gen_range(0..n));
    match rng.gen_range(0u32..12) {
        // WCET re-estimation, both tightening and loosening.
        0..=4 => DeltaOp::SetWcet {
            subtask: pick(rng),
            wcet: Time::new(rng.gen_range(1..=60)),
        },
        5 => DeltaOp::SetRelease {
            subtask: pick(rng),
            release: rng.gen_bool(0.8).then(|| Time::new(rng.gen_range(0..=30))),
        },
        6 => DeltaOp::SetDeadline {
            subtask: pick(rng),
            deadline: rng
                .gen_bool(0.8)
                .then(|| Time::new(rng.gen_range(300..=2000))),
        },
        7 => DeltaOp::Pin {
            subtask: pick(rng),
            processor: ProcessorId::new(rng.gen_range(0..nproc as u32)),
        },
        8 => DeltaOp::Unpin { subtask: pick(rng) },
        9 => {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            DeltaOp::AddEdge {
                src: SubtaskId::new(a.min(b)),
                dst: SubtaskId::new(a.max(b).max(a.min(b) + 1).min(n - 1)),
                items: rng.gen_range(1..=20),
            }
        }
        10 => DeltaOp::AddSubtask {
            subtask: Subtask::new(Time::new(rng.gen_range(1..=50)))
                .released_at(Time::new(rng.gen_range(0..=30)))
                .due_at(Time::new(rng.gen_range(300..=2000))),
        },
        _ => DeltaOp::RemoveSubtask { subtask: pick(rng) },
    }
}

fn metric(idx: usize) -> MetricKind {
    match idx {
        0 => MetricKind::norm(),
        1 => MetricKind::pure(),
        2 => MetricKind::thres(1.0),
        _ => MetricKind::adapt(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    #[test]
    fn delta_pipeline_matches_from_scratch(
        seed in 0u64..u64::MAX,
        n in 2usize..=12,
        density in 0.0f64..0.7,
        nproc in 1usize..=6,
        metric_idx in 0usize..4,
        contention in proptest::bool::ANY,
        append in proptest::bool::ANY,
        steps in 1usize..=4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let platform = Platform::paper(nproc).expect("valid platform");
        let slicer = Slicer::new(metric(metric_idx));
        let scheduler = ListScheduler::new()
            .with_bus_model(if contention {
                BusModel::Contention
            } else {
                BusModel::Delay
            })
            .with_placement(if append {
                PlacementPolicy::Append
            } else {
                PlacementPolicy::Insertion
            });

        let mut graph = random_graph(&mut rng, n, density);
        let mut pinning = Pinning::new();
        for id in graph.subtask_ids() {
            if rng.gen_bool(0.25) {
                let p = ProcessorId::new(rng.gen_range(0..nproc as u32));
                pinning.pin(id, p).expect("processor within platform");
            }
        }

        // Prime the pipeline on the pristine workload. Degenerate windows
        // can reject slicing outright; such cases exercise nothing
        // incremental, so bail out.
        let mut memo = SliceMemo::new();
        let Ok(assignment) = slicer.distribute_traced(&graph, &platform, &mut memo)
        else { return Ok(()); };
        let mut ws = SchedWorkspace::new();
        let mut prev = scheduler
            .schedule_with(&graph, &platform, &assignment, &pinning, &mut ws)
            .expect("valid sliced workload schedules");

        for _ in 0..steps {
            let ops = (0..rng.gen_range(1..=3))
                .map(|_| random_op(&mut rng, &graph, nproc))
                .collect::<Vec<_>>();
            let delta = ops.into_iter().fold(GraphDelta::new(), GraphDelta::push);
            // Inapplicable delta (invalid rebuild): rejected atomically,
            // the resident workload is untouched — try the next step.
            let Ok(applied) = delta.apply(&graph, &pinning) else { continue };

            let scratch = slicer.distribute(&applied.graph, &platform);
            let incremental = slicer.redistribute(&applied.graph, &platform, &mut memo);
            match (scratch, incremental) {
                (Ok(scratch), Ok(incremental)) => {
                    prop_assert_eq!(&incremental.assignment, &scratch);

                    let mut scratch_ws = SchedWorkspace::new();
                    let full = scheduler
                        .schedule_with(
                            &applied.graph,
                            &platform,
                            &scratch,
                            &applied.pinning,
                            &mut scratch_ws,
                        )
                        .expect("valid sliced workload schedules");
                    let repaired = scheduler
                        .repair(
                            &applied.graph,
                            &platform,
                            &incremental.assignment,
                            &applied.pinning,
                            &prev,
                            &mut ws,
                        )
                        .expect("repair accepts whatever schedule_with accepts");
                    prop_assert_eq!(&repaired.schedule, &full);

                    graph = applied.graph;
                    pinning = applied.pinning;
                    prev = repaired.schedule;
                }
                // The incremental path must fail exactly when the
                // from-scratch path does. The memo is consumed by the
                // failed attempt; later steps re-prime it via fallback.
                (Err(_), Err(_)) => {}
                (scratch, incremental) => prop_assert!(
                    false,
                    "divergent outcomes: scratch {scratch:?} vs incremental {incremental:?}"
                ),
            }
        }
    }
}
