//! Scenario descriptions: one full parameter combination of the
//! experimental setup (§5).

use serde::{Deserialize, Serialize};

use platform::{Pinning, Platform, PlatformError, ProcessorId, Topology};
use sched::{BusModel, PlacementPolicy};
use slicing::{BaselineStrategy, CommEstimate, MetricKind};
use taskgraph::gen::{Shape, WorkloadSpec};
use taskgraph::{TaskGraph, Time};

/// Error produced by [`Scenario::validate`]: the scenario definition is
/// degenerate and would never produce a usable sweep.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The scenario asks for zero replications per point.
    NoReplications,
    /// The system-size sweep is empty.
    NoSystemSizes,
    /// The system-size sweep contains a zero-processor platform.
    ZeroSystemSize,
    /// The workload specification is inconsistent (empty or zero-width
    /// ranges, non-positive MET, out-of-range variation, …); the message
    /// names the violated constraint.
    Workload(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoReplications => {
                write!(f, "scenario needs at least one replication")
            }
            ScenarioError::NoSystemSizes => {
                write!(f, "scenario needs at least one system size")
            }
            ScenarioError::ZeroSystemSize => {
                write!(f, "system-size sweep contains a zero-processor system")
            }
            ScenarioError::Workload(msg) => write!(f, "invalid workload spec: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// The deadline-distribution technique a scenario evaluates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Technique {
    /// A slicing technique (BST/AST): a metric plus a communication-cost
    /// estimation strategy.
    Slicing {
        /// The path metric.
        metric: MetricKind,
        /// The communication-cost estimation strategy.
        estimate: CommEstimate,
    },
    /// A pre-slicing baseline from the literature (UD/ED).
    Baseline(BaselineStrategy),
}

impl Technique {
    /// A short label used in reports.
    pub fn label(&self) -> String {
        match self {
            Technique::Slicing { metric, estimate } => {
                format!("{}/{}", metric.label(), estimate.label())
            }
            Technique::Baseline(b) => b.label().to_owned(),
        }
    }
}

/// Where workloads come from: the §5.2 random generator or one of the
/// regular structures of §8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSource {
    /// Random task graphs per [`WorkloadSpec`].
    Random(WorkloadSpec),
    /// Structured task graphs of the given shape; temporal parameters come
    /// from the spec.
    Shaped {
        /// The structural family.
        shape: Shape,
        /// Temporal parameters (execution times, OLR, CCR).
        spec: WorkloadSpec,
    },
}

impl WorkloadSource {
    /// The underlying temporal specification.
    pub fn spec(&self) -> &WorkloadSpec {
        match self {
            WorkloadSource::Random(spec) => spec,
            WorkloadSource::Shaped { spec, .. } => spec,
        }
    }
}

/// Families of interconnect topologies, instantiated per system size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Time-multiplexed shared bus (the paper's platform).
    SharedBus,
    /// Dedicated links between all processor pairs.
    FullyConnected,
    /// Bidirectional ring.
    Ring,
    /// 2-D mesh, factored as close to square as possible.
    Mesh2D,
}

impl TopologyKind {
    /// Builds the topology for a system of `n` processors with the given
    /// per-item (per hop, where applicable) cost.
    pub fn build(self, n: usize, cost_per_item: Time) -> Topology {
        match self {
            TopologyKind::SharedBus => Topology::SharedBus { cost_per_item },
            TopologyKind::FullyConnected => Topology::FullyConnected { cost_per_item },
            TopologyKind::Ring => Topology::Ring {
                cost_per_item_hop: cost_per_item,
            },
            TopologyKind::Mesh2D => {
                let (w, h) = near_square_factors(n);
                Topology::Mesh2D {
                    width: w,
                    height: h,
                    cost_per_item_hop: cost_per_item,
                }
            }
        }
    }

    /// A short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::SharedBus => "bus",
            TopologyKind::FullyConnected => "full",
            TopologyKind::Ring => "ring",
            TopologyKind::Mesh2D => "mesh",
        }
    }
}

/// The largest factor pair `(w, h)` of `n` with `w ≥ h` and `h` maximal —
/// i.e. the most square 2-D mesh hosting exactly `n` processors.
fn near_square_factors(n: usize) -> (usize, usize) {
    let mut best = (n, 1);
    let mut h = 1;
    while h * h <= n {
        if n.is_multiple_of(h) {
            best = (n / h, h);
        }
        h += 1;
    }
    best
}

/// How strict locality constraints are generated for a workload.
///
/// The paper's setting is *relaxed*: most subtasks are free, with at most a
/// small subset (e.g. sensor/actuator tasks) pre-assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PinningPolicy {
    /// No subtask is pinned (the headline experiments).
    Relaxed,
    /// Input and output subtasks are pinned round-robin across processors,
    /// modelling sensor/actuator locality.
    AnchoredIo,
}

impl PinningPolicy {
    /// Materializes the pinning for a concrete graph and platform.
    ///
    /// # Errors
    ///
    /// Returns an error if a pin refers to an invalid processor (cannot
    /// happen for round-robin pins on a valid platform).
    pub fn build(self, graph: &TaskGraph, platform: &Platform) -> Result<Pinning, PlatformError> {
        let mut pins = Pinning::new();
        match self {
            PinningPolicy::Relaxed => {}
            PinningPolicy::AnchoredIo => {
                let n = platform.processor_count() as u32;
                for (i, &id) in graph
                    .inputs()
                    .iter()
                    .chain(graph.outputs().iter())
                    .enumerate()
                {
                    // A subtask that is both input and output keeps its
                    // first pin.
                    if !pins.is_pinned(id) {
                        pins.pin(id, ProcessorId::new(i as u32 % n))?;
                    }
                }
            }
        }
        Ok(pins)
    }

    /// A short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PinningPolicy::Relaxed => "relaxed",
            PinningPolicy::AnchoredIo => "anchored-io",
        }
    }
}

/// Scheduler configuration for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerSpec {
    /// Honour assigned release times (the paper's time-driven model).
    pub respect_release: bool,
    /// Communication bandwidth model.
    pub bus_model: BusModel,
    /// Processor-placement policy.
    pub placement: PlacementPolicy,
}

impl Default for SchedulerSpec {
    /// The paper's scheduler: time-driven, insertion-based placement,
    /// fixed-delay communication.
    fn default() -> Self {
        SchedulerSpec {
            respect_release: true,
            bus_model: BusModel::Delay,
            placement: PlacementPolicy::Insertion,
        }
    }
}

/// One full parameter combination: workload × technique × platform sweep.
///
/// Running a scenario (see [`Runner`]) evaluates every system size with
/// `replications` random workloads. Workload seeds are derived per
/// replication from `(base_seed, workload stream, replication index)` via
/// [`stream_seed`], so two scenarios with the same workload source see
/// *identical* graphs — the paired-comparison setup the paper uses to
/// compare metrics fairly — and any replication is independently
/// computable on any worker.
///
/// [`Runner`]: crate::Runner
/// [`stream_seed`]: taskgraph::gen::stream_seed
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display label for reports (e.g. `"PURE/CCNE"`).
    pub label: String,
    /// Workload source.
    pub workload: WorkloadSource,
    /// Deadline-distribution technique under evaluation.
    pub technique: Technique,
    /// System sizes (processor counts) to sweep.
    pub system_sizes: Vec<usize>,
    /// Interconnect family.
    pub topology: TopologyKind,
    /// Per-item (and per-hop) communication cost.
    pub cost_per_item: Time,
    /// Locality-constraint policy.
    pub pinning: PinningPolicy,
    /// Scheduler configuration.
    pub scheduler: SchedulerSpec,
    /// Number of random workloads per system size.
    pub replications: usize,
    /// Root seed of the experiment's per-replication seed streams.
    pub base_seed: u64,
    /// Clamp assignment windows so every subtask's deadline precedes all of
    /// its successors' releases (see [`Slicer::with_strict_windows`]).
    ///
    /// Off by default: the paper's NORM/THRES/ADAPT weighting can assign a
    /// predecessor a deadline later than a successor's release on skewed
    /// paths (a latent window violation the audit reports), and the
    /// published figures were produced without the clamp. Enabling it
    /// changes deadlines (and therefore figures) for the affected cells.
    ///
    /// [`Slicer::with_strict_windows`]: slicing::Slicer::with_strict_windows
    pub strict_windows: bool,
}

impl Scenario {
    /// The paper's scenario skeleton: shared bus at one unit per item,
    /// relaxed locality, time-driven scheduler, 128 replications, system
    /// sizes 2–16.
    pub fn paper(
        label: impl Into<String>,
        workload: WorkloadSpec,
        metric: MetricKind,
        estimate: CommEstimate,
    ) -> Self {
        Scenario::with_technique(label, workload, Technique::Slicing { metric, estimate })
    }

    /// A paper-skeleton scenario evaluating a pre-slicing baseline (UD/ED).
    pub fn baseline(
        label: impl Into<String>,
        workload: WorkloadSpec,
        strategy: BaselineStrategy,
    ) -> Self {
        Scenario::with_technique(label, workload, Technique::Baseline(strategy))
    }

    /// A paper-skeleton scenario with an arbitrary technique.
    pub fn with_technique(
        label: impl Into<String>,
        workload: WorkloadSpec,
        technique: Technique,
    ) -> Self {
        Scenario {
            label: label.into(),
            workload: WorkloadSource::Random(workload),
            technique,
            system_sizes: (2..=16).step_by(2).collect(),
            topology: TopologyKind::SharedBus,
            cost_per_item: Time::new(1),
            pinning: PinningPolicy::Relaxed,
            scheduler: SchedulerSpec::default(),
            replications: 128,
            base_seed: 0xFEA57,
            strict_windows: false,
        }
    }

    /// Validates that the scenario can be swept at all.
    ///
    /// The [`Runner`] calls this before doing any work, so a degenerate
    /// scenario fails fast with a typed error instead of panicking (or
    /// dividing by zero) somewhere in the middle of a sweep.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ScenarioError`].
    ///
    /// # Examples
    ///
    /// ```
    /// use feast::{Scenario, ScenarioError};
    /// use slicing::{CommEstimate, MetricKind};
    /// use taskgraph::gen::{ExecVariation, WorkloadSpec};
    ///
    /// let scenario = Scenario::paper(
    ///     "x",
    ///     WorkloadSpec::paper(ExecVariation::Mdet),
    ///     MetricKind::pure(),
    ///     CommEstimate::Ccne,
    /// );
    /// assert!(scenario.validate().is_ok());
    /// let broken = scenario.with_replications(0);
    /// assert_eq!(broken.validate(), Err(ScenarioError::NoReplications));
    /// ```
    ///
    /// [`Runner`]: crate::Runner
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.replications == 0 {
            return Err(ScenarioError::NoReplications);
        }
        if self.system_sizes.is_empty() {
            return Err(ScenarioError::NoSystemSizes);
        }
        if self.system_sizes.contains(&0) {
            return Err(ScenarioError::ZeroSystemSize);
        }
        self.workload
            .spec()
            .validate()
            .map_err(ScenarioError::Workload)
    }

    /// Replaces the replication count.
    #[must_use]
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications;
        self
    }

    /// Replaces the system-size sweep.
    #[must_use]
    pub fn with_system_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.system_sizes = sizes;
        self
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Replaces the topology family.
    #[must_use]
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// Replaces the workload source.
    #[must_use]
    pub fn with_workload(mut self, workload: WorkloadSource) -> Self {
        self.workload = workload;
        self
    }

    /// Replaces the pinning policy.
    #[must_use]
    pub fn with_pinning(mut self, pinning: PinningPolicy) -> Self {
        self.pinning = pinning;
        self
    }

    /// Replaces the scheduler configuration.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables (or disables) the strict assignment-window clamp; see
    /// [`Scenario::strict_windows`].
    #[must_use]
    pub fn with_strict_windows(mut self, strict: bool) -> Self {
        self.strict_windows = strict;
        self
    }
}

#[cfg(test)]
mod tests {
    use taskgraph::gen::ExecVariation;

    use super::*;

    #[test]
    fn near_square_factorizations() {
        assert_eq!(near_square_factors(1), (1, 1));
        assert_eq!(near_square_factors(6), (3, 2));
        assert_eq!(near_square_factors(12), (4, 3));
        assert_eq!(near_square_factors(16), (4, 4));
        assert_eq!(near_square_factors(7), (7, 1)); // prime: a line
    }

    #[test]
    fn topology_kinds_build_valid_platforms() {
        for kind in [
            TopologyKind::SharedBus,
            TopologyKind::FullyConnected,
            TopologyKind::Ring,
            TopologyKind::Mesh2D,
        ] {
            for n in [2, 6, 7, 16] {
                let topo = kind.build(n, Time::new(1));
                assert!(
                    Platform::homogeneous(n, topo).is_ok(),
                    "{} with {n} processors",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn paper_scenario_defaults() {
        let s = Scenario::paper(
            "PURE/CCNE",
            WorkloadSpec::paper(ExecVariation::Ldet),
            MetricKind::pure(),
            CommEstimate::Ccne,
        );
        assert_eq!(s.replications, 128);
        assert_eq!(s.system_sizes, vec![2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(s.topology, TopologyKind::SharedBus);
        assert_eq!(s.pinning, PinningPolicy::Relaxed);
        assert!(s.scheduler.respect_release);
        assert!(!s.strict_windows, "paper defaults leave windows relaxed");
        assert_eq!(s.label, "PURE/CCNE");
    }

    #[test]
    fn builders() {
        let s = Scenario::paper(
            "x",
            WorkloadSpec::default(),
            MetricKind::adapt(),
            CommEstimate::Ccne,
        )
        .with_replications(8)
        .with_system_sizes(vec![2, 4])
        .with_base_seed(42)
        .with_topology(TopologyKind::Ring)
        .with_pinning(PinningPolicy::AnchoredIo)
        .with_strict_windows(true);
        assert!(s.strict_windows);
        assert_eq!(s.replications, 8);
        assert_eq!(s.system_sizes, vec![2, 4]);
        assert_eq!(s.base_seed, 42);
        assert_eq!(s.topology, TopologyKind::Ring);
        assert_eq!(s.pinning.label(), "anchored-io");
    }

    #[test]
    fn anchored_io_pins_inputs_and_outputs() {
        use taskgraph::Subtask;
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(1)).released_at(Time::ZERO));
        let z = b.add_subtask(Subtask::new(Time::new(1)).due_at(Time::new(10)));
        b.add_edge(a, z, 1).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let pins = PinningPolicy::AnchoredIo.build(&g, &p).unwrap();
        assert_eq!(pins.len(), 2);
        assert!(pins.is_pinned(a) && pins.is_pinned(z));
        let relaxed = PinningPolicy::Relaxed.build(&g, &p).unwrap();
        assert!(relaxed.is_empty());
    }

    #[test]
    fn technique_labels() {
        let slicing = Technique::Slicing {
            metric: MetricKind::pure(),
            estimate: CommEstimate::Ccaa,
        };
        assert_eq!(slicing.label(), "PURE/CCAA");
        assert_eq!(
            Technique::Baseline(BaselineStrategy::Ultimate).label(),
            "UD"
        );
    }

    #[test]
    fn scenario_serde_round_trip() {
        let scenario = Scenario::paper(
            "PURE/CCNE",
            WorkloadSpec::default(),
            MetricKind::thres(2.0),
            CommEstimate::Ccaa,
        )
        .with_topology(TopologyKind::Mesh2D)
        .with_pinning(PinningPolicy::AnchoredIo);
        let json = serde_json::to_string(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(scenario, back);
    }

    #[test]
    fn scheduler_spec_default_is_papers_model() {
        let spec = SchedulerSpec::default();
        assert!(spec.respect_release);
        assert_eq!(spec.bus_model, sched::BusModel::Delay);
        assert_eq!(spec.placement, sched::PlacementPolicy::Insertion);
    }

    #[test]
    fn validate_catches_degenerate_scenarios() {
        let good = Scenario::paper(
            "ok",
            WorkloadSpec::default(),
            MetricKind::pure(),
            CommEstimate::Ccne,
        );
        assert_eq!(good.validate(), Ok(()));

        let s = good.clone().with_replications(0);
        assert_eq!(s.validate(), Err(ScenarioError::NoReplications));

        let s = good.clone().with_system_sizes(vec![]);
        assert_eq!(s.validate(), Err(ScenarioError::NoSystemSizes));

        let s = good.clone().with_system_sizes(vec![4, 0]);
        assert_eq!(s.validate(), Err(ScenarioError::ZeroSystemSize));

        // Zero-width / inconsistent spec ranges surface as typed errors
        // instead of a mid-sweep panic.
        #[allow(clippy::reversed_empty_ranges)]
        let s = good.clone().with_workload(WorkloadSource::Random(
            WorkloadSpec::default().with_depth(4..=2),
        ));
        assert!(matches!(s.validate(), Err(ScenarioError::Workload(_))));
        let s = good.with_workload(WorkloadSource::Random(
            WorkloadSpec::default().with_olr(-1.0),
        ));
        assert!(matches!(s.validate(), Err(ScenarioError::Workload(_))));
    }

    #[test]
    fn scenario_error_display() {
        assert!(ScenarioError::NoReplications
            .to_string()
            .contains("replication"));
        assert!(ScenarioError::NoSystemSizes
            .to_string()
            .contains("system size"));
        assert!(ScenarioError::ZeroSystemSize.to_string().contains("zero"));
        assert!(ScenarioError::Workload("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn workload_source_spec_access() {
        let spec = WorkloadSpec::default();
        let r = WorkloadSource::Random(spec.clone());
        assert_eq!(r.spec(), &spec);
        let s = WorkloadSource::Shaped {
            shape: Shape::Chain { length: 4 },
            spec: spec.clone(),
        };
        assert_eq!(s.spec(), &spec);
    }
}
