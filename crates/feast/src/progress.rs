//! Live sweep progress: per-shard completion tracking and the periodic
//! `metrics.json` snapshot.
//!
//! A [`ProgressTracker`] is fed by the [`Runner`](crate::Runner) as cells
//! complete: replications done/failed against the shard's total, audit
//! violation counts, and an exponentially weighted completion rate from
//! which an ETA is derived. [`ProgressTracker::snapshot`] is cheap and
//! lock-light, so a render thread (the sweep bin's `--progress` view) can
//! poll it at frame rate while workers hammer the counters.
//!
//! A [`MetricsWriter`] pairs the tracker with the process-global
//! [`Registry`](crate::telemetry::Registry) and serializes both to a
//! [`MetricsFile`] — written atomically (temp file + rename) so a reader
//! never observes a torn snapshot, periodically during the run and
//! unconditionally at exit (on the error path too). A killed
//! 10⁶-replication sweep therefore leaves its last known state on disk
//! next to the checkpoint.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::telemetry::MetricsSnapshot;

/// Smoothing factor for the EWMA completion rate: each completion moves
/// the smoothed inter-completion gap 10% toward the latest observation.
const EWMA_ALPHA: f64 = 0.1;

/// Rate state guarded by one short-lived mutex; everything else in the
/// tracker is a relaxed atomic.
#[derive(Debug)]
struct RateState {
    /// When tracking started (set by [`ProgressTracker::configure`]).
    started: Instant,
    /// Completion instant of the most recent cell.
    last_completion: Option<Instant>,
    /// Smoothed gap between completions, seconds.
    ewma_gap_s: Option<f64>,
}

/// Identity and terminal state, set once at configure/finish time.
#[derive(Debug, Default)]
struct Meta {
    label: String,
    shard_index: usize,
    shard_count: usize,
    outcome: Option<String>,
}

/// Shared progress state for one sweep shard.
///
/// Thread-safe and cheap on the hot path: recording a completed cell is a
/// handful of relaxed atomic increments plus one uncontended mutex lock to
/// update the EWMA rate.
#[derive(Debug)]
pub struct ProgressTracker {
    total: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    resumed: AtomicU64,
    violations: AtomicU64,
    configured: AtomicBool,
    rate: Mutex<RateState>,
    meta: Mutex<Meta>,
}

impl Default for ProgressTracker {
    fn default() -> Self {
        ProgressTracker::new()
    }
}

impl ProgressTracker {
    /// An empty tracker; [`configure`](ProgressTracker::configure) arms it.
    pub fn new() -> Self {
        ProgressTracker {
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            configured: AtomicBool::new(false),
            rate: Mutex::new(RateState {
                started: Instant::now(),
                last_completion: None,
                ewma_gap_s: None,
            }),
            meta: Mutex::new(Meta::default()),
        }
    }

    /// Arms the tracker for a run: scenario `label`, shard identity, the
    /// shard's total cell count and how many of those were already complete
    /// in a loaded checkpoint (counted as done without affecting the rate).
    pub fn configure(
        &self,
        label: &str,
        shard_index: usize,
        shard_count: usize,
        total: u64,
        resumed: u64,
    ) {
        self.total.store(total, Ordering::Relaxed);
        self.done.store(resumed, Ordering::Relaxed);
        self.failed.store(0, Ordering::Relaxed);
        self.resumed.store(resumed, Ordering::Relaxed);
        self.violations.store(0, Ordering::Relaxed);
        {
            let mut meta = self.meta.lock().expect("progress meta poisoned");
            meta.label = label.to_string();
            meta.shard_index = shard_index;
            meta.shard_count = shard_count;
            meta.outcome = None;
        }
        {
            let mut rate = self.rate.lock().expect("progress rate poisoned");
            rate.started = Instant::now();
            rate.last_completion = None;
            rate.ewma_gap_s = None;
        }
        self.configured.store(true, Ordering::Release);
    }

    /// Whether [`configure`](ProgressTracker::configure) has run.
    pub fn is_configured(&self) -> bool {
        self.configured.load(Ordering::Acquire)
    }

    /// Records one freshly computed cell: `ok` distinguishes a completed
    /// replication from one degraded to a failed outcome; `violations` is
    /// the audit's structural violation count for the cell.
    pub fn record_cell(&self, ok: bool, violations: u64) {
        if ok {
            self.done.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.violations.fetch_add(violations, Ordering::Relaxed);

        let now = Instant::now();
        let mut rate = self.rate.lock().expect("progress rate poisoned");
        let gap = rate
            .last_completion
            .map_or_else(
                || now.duration_since(rate.started),
                |t| now.duration_since(t),
            )
            .as_secs_f64();
        rate.ewma_gap_s = Some(match rate.ewma_gap_s {
            Some(prev) => EWMA_ALPHA * gap + (1.0 - EWMA_ALPHA) * prev,
            None => gap,
        });
        rate.last_completion = Some(now);
    }

    /// Marks the run finished: `"complete"` on success, the rendered error
    /// otherwise. Snapshots taken afterwards report it and an ETA of zero.
    pub fn finish(&self, outcome: &str) {
        self.meta.lock().expect("progress meta poisoned").outcome = Some(outcome.to_string());
    }

    /// Cells recorded so far (done + failed), excluding resumed ones.
    pub fn computed(&self) -> u64 {
        (self.done.load(Ordering::Relaxed) - self.resumed.load(Ordering::Relaxed))
            + self.failed.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current progress state.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let total = self.total.load(Ordering::Relaxed);
        let done = self.done.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let resumed = self.resumed.load(Ordering::Relaxed);
        let violations = self.violations.load(Ordering::Relaxed);

        let (elapsed_s, ewma_gap_s) = {
            let rate = self.rate.lock().expect("progress rate poisoned");
            (rate.started.elapsed().as_secs_f64(), rate.ewma_gap_s)
        };
        let (label, shard_index, shard_count, outcome) = {
            let meta = self.meta.lock().expect("progress meta poisoned");
            (
                meta.label.clone(),
                meta.shard_index,
                meta.shard_count,
                meta.outcome.clone(),
            )
        };

        // Overall rate counts only cells computed this run; resumed cells
        // completed in a previous process and would inflate it.
        let computed = (done - resumed) + failed;
        let rate_per_s = if elapsed_s > 0.0 {
            computed as f64 / elapsed_s
        } else {
            0.0
        };
        let ewma_rate_per_s = match ewma_gap_s {
            Some(gap) if gap > 0.0 => 1.0 / gap,
            // Gaps below timer resolution: fall back to the overall rate.
            Some(_) => rate_per_s,
            None => 0.0,
        };
        let remaining = total.saturating_sub(done + failed);
        let best_rate = if ewma_rate_per_s > 0.0 {
            ewma_rate_per_s
        } else {
            rate_per_s
        };
        let eta_s = if remaining == 0 || outcome.is_some() {
            0.0
        } else if best_rate > 0.0 {
            remaining as f64 / best_rate
        } else {
            f64::INFINITY
        };

        ProgressSnapshot {
            label,
            shard_index,
            shard_count,
            total,
            done,
            failed,
            resumed,
            violations,
            elapsed_s,
            rate_per_s,
            ewma_rate_per_s,
            eta_s,
            outcome,
        }
    }
}

/// Serializable copy of a [`ProgressTracker`]'s state at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Scenario label.
    pub label: String,
    /// This shard's index (0 for unsharded runs).
    pub shard_index: usize,
    /// Total shards in the sweep (1 for unsharded runs).
    pub shard_count: usize,
    /// Cells this shard owns: replications × system sizes.
    pub total: u64,
    /// Cells completed successfully, including resumed ones.
    pub done: u64,
    /// Cells degraded to failed outcomes.
    pub failed: u64,
    /// Cells skipped because a loaded checkpoint already held them.
    pub resumed: u64,
    /// Audit violations accumulated across completed cells.
    pub violations: u64,
    /// Wall-clock seconds since the run started.
    pub elapsed_s: f64,
    /// Overall completion rate, cells/s (resumed cells excluded).
    pub rate_per_s: f64,
    /// Exponentially weighted recent completion rate, cells/s.
    pub ewma_rate_per_s: f64,
    /// Estimated seconds to completion (0 when done; infinite before the
    /// first completion).
    pub eta_s: f64,
    /// `None` while running; `"complete"` or the rendered error at exit.
    /// A `metrics.json` with no outcome belongs to a killed run.
    pub outcome: Option<String>,
}

impl ProgressSnapshot {
    /// Fraction of cells finished, in `0.0..=1.0` (1.0 when empty).
    pub fn fraction_done(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            (self.done + self.failed) as f64 / self.total as f64
        }
    }
}

/// The `metrics.json` document: progress plus the full metrics snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsFile {
    /// Format version; bumped on breaking changes.
    pub schema: u32,
    /// Progress state at write time.
    pub progress: ProgressSnapshot,
    /// Registry snapshot at write time. Process-global: when several
    /// runners share one process this section spans all of them.
    pub metrics: MetricsSnapshot,
}

/// Current [`MetricsFile::schema`] version.
pub const METRICS_SCHEMA: u32 = 1;

/// Periodically serializes a [`MetricsFile`] to disk, atomically.
#[derive(Debug)]
pub struct MetricsWriter {
    path: PathBuf,
    interval: Duration,
    last_write: Mutex<Option<Instant>>,
}

impl MetricsWriter {
    /// A writer targeting `path`, writing at most every `interval`.
    pub fn new(path: impl Into<PathBuf>, interval: Duration) -> Self {
        MetricsWriter {
            path: path.into(),
            interval,
            last_write: Mutex::new(None),
        }
    }

    /// The file this writer targets.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes a snapshot if the interval has elapsed since the last write.
    /// Contended calls (another worker mid-write) return immediately; I/O
    /// errors are logged once per occurrence and swallowed — diagnostics
    /// must never abort a sweep. The snapshot is taken lazily: on the hot
    /// path (one call per replication) a gated-out call costs one
    /// `try_lock` and a clock read, never a registry walk.
    pub fn maybe_write(
        &self,
        progress: &ProgressTracker,
        metrics: impl FnOnce() -> MetricsSnapshot,
    ) {
        let Ok(mut last) = self.last_write.try_lock() else {
            return;
        };
        if last.is_some_and(|t| t.elapsed() < self.interval) {
            return;
        }
        *last = Some(Instant::now());
        if let Err(e) = self.write(progress, metrics()) {
            tracing::error!(path = %self.path.display(), "metrics write failed: {e}");
        }
    }

    /// Writes a snapshot unconditionally (the at-exit write).
    pub fn write_now(&self, progress: &ProgressTracker, metrics: MetricsSnapshot) {
        if let Ok(mut last) = self.last_write.lock() {
            *last = Some(Instant::now());
        }
        if let Err(e) = self.write(progress, metrics) {
            tracing::error!(path = %self.path.display(), "metrics write failed: {e}");
        }
    }

    /// Serializes to a sibling temp file and renames it into place, so a
    /// concurrent reader sees either the previous snapshot or the new one,
    /// never a partial write.
    fn write(&self, progress: &ProgressTracker, metrics: MetricsSnapshot) -> io::Result<()> {
        let file = MetricsFile {
            schema: METRICS_SCHEMA,
            progress: progress.snapshot(),
            metrics,
        };
        let json = serde_json::to_string(&file).expect("plain data serializes");
        let tmp = self.path.with_extension("json.tmp");
        fs::write(&tmp, json.as_bytes())?;
        fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Registry;

    #[test]
    fn tracker_counts_and_fractions() {
        let t = ProgressTracker::new();
        t.configure("ADAPT/CCNE", 1, 4, 10, 2);
        assert!(t.is_configured());
        t.record_cell(true, 0);
        t.record_cell(true, 3);
        t.record_cell(false, 0);
        assert_eq!(t.computed(), 3);

        let snap = t.snapshot();
        assert_eq!(snap.label, "ADAPT/CCNE");
        assert_eq!((snap.shard_index, snap.shard_count), (1, 4));
        assert_eq!(snap.total, 10);
        assert_eq!(snap.done, 4); // 2 resumed + 2 computed
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.resumed, 2);
        assert_eq!(snap.violations, 3);
        assert!((snap.fraction_done() - 0.5).abs() < 1e-12);
        assert!(snap.rate_per_s >= 0.0);
        assert!(snap.ewma_rate_per_s >= 0.0);
        assert!(snap.eta_s >= 0.0);
        assert_eq!(snap.outcome, None);

        t.finish("complete");
        let done = t.snapshot();
        assert_eq!(done.outcome.as_deref(), Some("complete"));
        assert_eq!(done.eta_s, 0.0);
    }

    #[test]
    fn eta_is_infinite_before_any_completion_and_zero_when_done() {
        let t = ProgressTracker::new();
        t.configure("x", 0, 1, 5, 0);
        assert!(t.snapshot().eta_s.is_infinite());
        for _ in 0..5 {
            t.record_cell(true, 0);
        }
        assert_eq!(t.snapshot().eta_s, 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let t = ProgressTracker::new();
        t.configure("PURE/CCAA", 2, 3, 7, 1);
        t.record_cell(true, 2);
        t.finish("complete");
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ProgressSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn metrics_writer_is_atomic_and_interval_gated() {
        let path = std::env::temp_dir().join(format!(
            "feast-progress-test-{}.metrics.json",
            std::process::id()
        ));
        let t = ProgressTracker::new();
        t.configure("x", 0, 1, 2, 0);
        let r = Registry::default();
        let w = MetricsWriter::new(&path, Duration::from_secs(3600));

        // First gated write lands; a second within the interval is skipped.
        w.maybe_write(&t, || r.snapshot());
        t.record_cell(true, 0);
        w.maybe_write(&t, || panic!("gated-out call must not take a snapshot"));
        let file: MetricsFile =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(file.schema, METRICS_SCHEMA);
        assert_eq!(file.progress.done, 0, "second write must be gated away");

        // The unconditional write refreshes the file and round-trips.
        t.finish("complete");
        w.write_now(&t, r.snapshot());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let file: MetricsFile = serde_json::from_str(&text).unwrap();
        assert_eq!(file.progress.done, 1);
        assert_eq!(file.progress.outcome.as_deref(), Some("complete"));
        let json = serde_json::to_string(&file).unwrap();
        let back: MetricsFile = serde_json::from_str(&json).unwrap();
        assert_eq!(file, back);
        assert!(!path.with_extension("json.tmp").exists());
    }
}
