//! Scenario execution: the generate → distribute → schedule → measure
//! pipeline, swept over system sizes and replications.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use platform::Platform;
use sched::{LatenessReport, ListScheduler};
use slicing::{distribute_baseline, Slicer};
use taskgraph::gen::{generate, generate_shape};
use taskgraph::TaskGraph;

use crate::telemetry::{self, RunEvent, Stage};
use crate::{RunError, Scenario, SummaryStats, Technique, WorkloadSource};

/// Measurements of one scenario at one system size, aggregated over all
/// replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Number of processors.
    pub system_size: usize,
    /// Maximum task lateness (the paper's headline measure).
    pub max_lateness: SummaryStats,
    /// Lateness of output subtasks against their end-to-end deadlines.
    pub end_to_end_lateness: SummaryStats,
    /// Schedule makespan.
    pub makespan: SummaryStats,
    /// Fraction of replications whose schedules met every assigned
    /// deadline.
    pub feasible_fraction: f64,
    /// Structural violations found across all replications (0 for a sound
    /// pipeline).
    pub violations: usize,
}

/// The outcome of running one scenario over its system-size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario's display label.
    pub label: String,
    /// One point per system size, in sweep order.
    pub points: Vec<ScenarioPoint>,
}

impl ScenarioResult {
    /// The mean maximum task lateness per system size, in sweep order —
    /// the series plotted in every figure of the paper.
    pub fn lateness_series(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.system_size, p.max_lateness.mean))
            .collect()
    }

    /// The mean end-to-end lateness (output subtasks against their given
    /// end-to-end deadlines) per system size — the technique-neutral
    /// measure used when comparing against the UD/ED baselines, whose
    /// local deadlines are not comparable to sliced windows.
    pub fn end_to_end_series(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.system_size, p.end_to_end_lateness.mean))
            .collect()
    }
}

/// Raw measurements of a single pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RunMeasurement {
    max_lateness: f64,
    end_to_end: f64,
    makespan: f64,
    feasible: bool,
    violations: usize,
}

/// Generates the workload for replication `rep` of `scenario`.
///
/// Seeds depend only on `(base_seed, rep)` so different techniques see the
/// same 128 graphs (paired comparison).
fn workload(scenario: &Scenario, rep: usize) -> Result<TaskGraph, RunError> {
    let mut rng = StdRng::seed_from_u64(scenario.base_seed.wrapping_add(rep as u64));
    let graph = match &scenario.workload {
        WorkloadSource::Random(spec) => generate(spec, &mut rng)?,
        WorkloadSource::Shaped { shape, spec } => generate_shape(*shape, spec, &mut rng)?,
    };
    Ok(graph)
}

/// Runs one full pipeline: distribute deadlines, schedule, measure.
/// `rep` only labels telemetry; it never influences the measurement.
fn run_once(
    scenario: &Scenario,
    graph: &TaskGraph,
    platform: &Platform,
    rep: usize,
) -> Result<RunMeasurement, RunError> {
    let distribute_started = Instant::now();
    let assignment = match &scenario.technique {
        Technique::Slicing { metric, estimate } => Slicer::new(*metric)
            .with_estimate(estimate.clone())
            .distribute(graph, platform)?,
        Technique::Baseline(strategy) => distribute_baseline(graph, *strategy),
    };
    // Baselines produce deliberately overlapping windows, so structural
    // window validation only applies to the slicing techniques.
    let mut violations = match &scenario.technique {
        Technique::Slicing { .. } => assignment.validate(graph).violations().len(),
        Technique::Baseline(_) => 0,
    };
    let distribute_elapsed = distribute_started.elapsed();

    let pinning = scenario.pinning.build(graph, platform)?;
    let scheduler = ListScheduler::new()
        .with_respect_release(scenario.scheduler.respect_release)
        .with_bus_model(scenario.scheduler.bus_model)
        .with_placement(scenario.scheduler.placement);
    let schedule_started = Instant::now();
    let schedule = scheduler.schedule(graph, platform, &assignment, &pinning)?;
    violations += schedule
        .validate(
            graph,
            platform,
            &pinning,
            scenario.scheduler.bus_model == sched::BusModel::Contention,
        )
        .len();
    let schedule_elapsed = schedule_started.elapsed();

    let report = LatenessReport::new(graph, &assignment, &schedule);
    let measurement = RunMeasurement {
        max_lateness: report.max_lateness().as_f64(),
        end_to_end: report.end_to_end_lateness().as_f64(),
        makespan: report.makespan().as_f64(),
        feasible: report.is_feasible(),
        violations,
    };

    let registry = telemetry::global();
    registry.record_stage(Stage::Distribute, distribute_elapsed);
    registry.record_stage(Stage::Schedule, schedule_elapsed);
    registry.count_schedule(measurement.feasible, violations);
    telemetry::emit_with(|| RunEvent::Replication {
        scenario: scenario.label.clone(),
        system_size: platform.processor_count(),
        replication: rep,
        distribute_us: distribute_elapsed.as_micros() as u64,
        schedule_us: schedule_elapsed.as_micros() as u64,
        feasible: measurement.feasible,
        violations,
        max_lateness: measurement.max_lateness,
    });
    Ok(measurement)
}

/// Runs a scenario sequentially (all sizes × all replications on the
/// calling thread). Prefer [`run_scenario`] which parallelizes across
/// replications.
pub fn run_scenario_sequential(scenario: &Scenario) -> Result<ScenarioResult, RunError> {
    run_scenario_with_threads(scenario, 1)
}

/// Runs a scenario, parallelizing replications over the available cores.
///
/// # Errors
///
/// Propagates workload-generation, distribution, platform and scheduling
/// errors; the first error encountered aborts the run.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, RunError> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    run_scenario_with_threads(scenario, threads)
}

/// Runs a scenario with an explicit worker-thread count.
///
/// # Errors
///
/// See [`run_scenario`].
pub fn run_scenario_with_threads(
    scenario: &Scenario,
    threads: usize,
) -> Result<ScenarioResult, RunError> {
    if scenario.replications == 0 {
        return Err(RunError::InvalidScenario(
            "scenario needs at least one replication".to_owned(),
        ));
    }
    if scenario.system_sizes.is_empty() {
        return Err(RunError::InvalidScenario(
            "scenario needs at least one system size".to_owned(),
        ));
    }
    let threads = threads.max(1).min(scenario.replications);

    let _span = tracing::info_span!(
        "scenario",
        label = %scenario.label,
        replications = scenario.replications,
        threads = threads
    )
    .entered();

    // Workloads are shared across system sizes; generate once per rep,
    // fanning the replications out over the worker threads. Telemetry is
    // emitted afterwards on the caller thread so `GraphGenerated` events
    // stay ordered by replication index regardless of worker interleaving.
    let timed = |rep: usize| -> Result<(TaskGraph, std::time::Duration), RunError> {
        let started = Instant::now();
        let graph = workload(scenario, rep)?;
        Ok((graph, started.elapsed()))
    };
    let generated: Vec<Result<(TaskGraph, std::time::Duration), RunError>> = if threads == 1 {
        (0..scenario.replications).map(timed).collect()
    } else {
        let chunk = scenario.replications.div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let timed = &timed;
                    scope.spawn(move || {
                        let lo = worker * chunk;
                        let hi = (lo + chunk).min(scenario.replications);
                        (lo..hi).map(timed).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("generator thread panicked"))
                .collect()
        })
    };
    let mut graphs: Vec<TaskGraph> = Vec::with_capacity(scenario.replications);
    for (rep, result) in generated.into_iter().enumerate() {
        let (graph, elapsed) = result?;
        let registry = telemetry::global();
        registry.record_stage(Stage::Generate, elapsed);
        registry.count_graph();
        telemetry::emit_with(|| RunEvent::GraphGenerated {
            replication: rep,
            subtasks: graph.subtask_count(),
            messages: graph.edge_count(),
            generate_us: elapsed.as_micros() as u64,
        });
        graphs.push(graph);
    }

    let mut points = Vec::with_capacity(scenario.system_sizes.len());
    for &size in &scenario.system_sizes {
        let _size_span = tracing::debug_span!("system_size", procs = size).entered();
        let topology = scenario.topology.build(size, scenario.cost_per_item);
        let platform = Platform::homogeneous(size, topology)?;

        let measurements: Result<Vec<RunMeasurement>, RunError> = if threads == 1 {
            graphs
                .iter()
                .enumerate()
                .map(|(rep, g)| run_once(scenario, g, &platform, rep))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let chunk = graphs.len().div_ceil(threads);
                let handles: Vec<_> = graphs
                    .chunks(chunk)
                    .enumerate()
                    .map(|(chunk_index, chunk_graphs)| {
                        let platform = &platform;
                        scope.spawn(move || {
                            chunk_graphs
                                .iter()
                                .enumerate()
                                .map(|(i, g)| {
                                    run_once(scenario, g, platform, chunk_index * chunk + i)
                                })
                                .collect::<Result<Vec<_>, _>>()
                        })
                    })
                    .collect();
                let mut all = Vec::with_capacity(graphs.len());
                for h in handles {
                    all.extend(h.join().expect("worker thread panicked")?);
                }
                Ok(all)
            })
        };
        let measurements = measurements?;

        let collect =
            |f: fn(&RunMeasurement) -> f64| -> Vec<f64> { measurements.iter().map(f).collect() };
        let point = ScenarioPoint {
            system_size: size,
            max_lateness: SummaryStats::from_values(&collect(|m| m.max_lateness)),
            end_to_end_lateness: SummaryStats::from_values(&collect(|m| m.end_to_end)),
            makespan: SummaryStats::from_values(&collect(|m| m.makespan)),
            feasible_fraction: measurements.iter().filter(|m| m.feasible).count() as f64
                / measurements.len() as f64,
            violations: measurements.iter().map(|m| m.violations).sum(),
        };
        if point.violations > 0 {
            tracing::warn!(
                scenario = %scenario.label,
                system_size = size,
                violations = point.violations,
                "structural violations detected"
            );
        }
        tracing::debug!(
            scenario = %scenario.label,
            system_size = size,
            mean_max_lateness = point.max_lateness.mean,
            feasible_fraction = point.feasible_fraction,
            "scenario point complete"
        );
        telemetry::emit_with(|| RunEvent::Point {
            scenario: scenario.label.clone(),
            system_size: size,
            mean_max_lateness: point.max_lateness.mean,
            feasible_fraction: point.feasible_fraction,
            violations: point.violations,
        });
        points.push(point);
    }

    Ok(ScenarioResult {
        label: scenario.label.clone(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use slicing::{CommEstimate, MetricKind};
    use taskgraph::gen::{ExecVariation, WorkloadSpec};

    use super::*;

    fn tiny_scenario(metric: MetricKind) -> Scenario {
        Scenario::paper(
            "test",
            WorkloadSpec::paper(ExecVariation::Mdet),
            metric,
            CommEstimate::Ccne,
        )
        .with_replications(4)
        .with_system_sizes(vec![2, 8])
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let scenario = tiny_scenario(MetricKind::pure());
        let seq = run_scenario_sequential(&scenario).unwrap();
        let par = run_scenario_with_threads(&scenario, 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn pipeline_produces_no_structural_violations() {
        for metric in [
            MetricKind::norm(),
            MetricKind::pure(),
            MetricKind::thres(1.0),
            MetricKind::adapt(),
        ] {
            let result = run_scenario_sequential(&tiny_scenario(metric)).unwrap();
            for p in &result.points {
                assert_eq!(p.violations, 0, "{} at n={}", result.label, p.system_size);
            }
        }
    }

    #[test]
    fn more_processors_do_not_hurt_lateness() {
        let result = run_scenario_sequential(&tiny_scenario(MetricKind::pure())).unwrap();
        let series = result.lateness_series();
        assert_eq!(series.len(), 2);
        assert!(
            series[1].1 <= series[0].1 + 1e-9,
            "lateness should improve (or stay) from 2 to 8 processors: {series:?}"
        );
    }

    #[test]
    fn rejects_degenerate_scenarios() {
        let s = tiny_scenario(MetricKind::pure()).with_replications(0);
        assert!(matches!(
            run_scenario_sequential(&s),
            Err(RunError::InvalidScenario(_))
        ));
        let s = tiny_scenario(MetricKind::pure()).with_system_sizes(vec![]);
        assert!(matches!(
            run_scenario_sequential(&s),
            Err(RunError::InvalidScenario(_))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let scenario = tiny_scenario(MetricKind::adapt());
        let a = run_scenario_sequential(&scenario).unwrap();
        let b = run_scenario_sequential(&scenario).unwrap();
        assert_eq!(a, b);
    }
}
