//! Scenario execution: the generate → distribute → schedule → measure
//! pipeline, swept over system sizes and replications by a sharded,
//! checkpointable, cancellable [`Runner`].
//!
//! # The engine
//!
//! Every replication's workload seed is derived from its coordinates via
//! [`stream_seed`] (never from a sequential RNG walk), so any replication
//! is independently computable in any order on any worker. On top of that
//! the engine layers:
//!
//! * **sharding** — [`ShardSpec`] partitions the replication indices;
//!   [`Runner::run_partial`] computes one shard's [`PartialResult`] and
//!   [`PartialResult::merge`] folds N shard outputs into the exact
//!   [`ScenarioResult`] a monolithic run produces (bit-identical `f64`s,
//!   because the merge recombines raw per-replication records in
//!   replication order rather than combining floating-point summaries);
//! * **checkpointing** — [`Runner::checkpoint`] appends every completed
//!   replication to a JSONL file; a restarted run loads it, skips the
//!   completed `(system size, replication)` cells and computes only the
//!   rest;
//! * **cancellation** — a [`CancelToken`] checked between replications
//!   stops the run with [`RunError::Cancelled`] while preserving the
//!   checkpoint;
//! * **bounded retry** — a rejected workload draw is retried on fresh
//!   [`sub_stream`]s a bounded number of times
//!   ([`Runner::MAX_GENERATE_ATTEMPTS`]) before the replication fails
//!   with a typed error;
//! * **degrade-don't-die** — a replication that still fails after
//!   retries (generation exhausted, a pipeline error, or a worker panic)
//!   is recorded as a typed [`ReplicationOutcome::Failed`] cell,
//!   excluded from the statistics with an explicit count in
//!   [`ScenarioPoint::failed`], instead of aborting the whole sweep
//!   ([`Runner::fail_fast`] restores abort-on-first-failure);
//! * **audit oracle** — every schedule produced during a sweep passes
//!   through `Schedule::validate` and the assignment-window checker; the
//!   violation counts ride on every [`ReplicationRecord`] and
//!   [`ScenarioPoint`], and [`Runner::strict_validate`] turns any
//!   violation (or degraded cell) into a typed error;
//! * **checkpoint integrity** — records are sealed with a per-record
//!   CRC32; transient append failures are retried with exponential
//!   backoff ([`Runner::CHECKPOINT_RETRY_LIMIT`]); silently-corrupted
//!   mid-file records are rejected with [`RunError::CheckpointCorrupt`]
//!   rather than skipped (only an unparseable *final* line — a torn
//!   write from a killed process — is tolerated);
//! * **fault injection** — with the `fault-inject` cargo feature, a
//!   deterministic [`FaultPlan`](crate::fault::FaultPlan) can fire
//!   synthetic faults (checkpoint I/O errors, corrupted records, worker
//!   panics, generation rejections, cancel races) at named sites in this
//!   engine; release builds compile the hooks down to constant `false`.
//!
//! [`stream_seed`]: taskgraph::gen::stream_seed
//! [`sub_stream`]: taskgraph::gen::sub_stream

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use platform::Platform;
use sched::MissLog;
use taskgraph::gen::{
    generate_seeded, generate_shape_seeded, stream_label, stream_seed, sub_stream, GenerateError,
};
use taskgraph::TaskGraph;

#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;
use crate::fault::FaultSite;
use crate::progress::{MetricsWriter, ProgressTracker};
use crate::telemetry::{self, EventSink, RunEvent, Stage};
use crate::{Pipeline, RunError, Scenario, SummaryStats, WorkloadSource};

/// Measurements of one scenario at one system size, aggregated over all
/// replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Number of processors.
    pub system_size: usize,
    /// Maximum task lateness (the paper's headline measure).
    pub max_lateness: SummaryStats,
    /// Lateness of output subtasks against their end-to-end deadlines.
    pub end_to_end_lateness: SummaryStats,
    /// Schedule makespan.
    pub makespan: SummaryStats,
    /// Fraction of replications whose schedules met every assigned
    /// deadline.
    pub feasible_fraction: f64,
    /// Structural violations found across all replications (0 for a sound
    /// pipeline): the always-on audit count, window + schedule.
    pub violations: usize,
    /// Deadline-window violations (assignment checker) within
    /// [`ScenarioPoint::violations`]. `None` when the point folds legacy
    /// records that predate the audit split.
    pub window_violations: Option<usize>,
    /// Schedule violations (`Schedule::validate`) within
    /// [`ScenarioPoint::violations`]. `None` when the point folds legacy
    /// records that predate the audit split.
    pub schedule_violations: Option<usize>,
    /// Replications that failed after retries, were recorded as typed
    /// [`ReplicationOutcome::Failed`] cells and excluded from the
    /// statistics above.
    pub failed: usize,
}

impl ScenarioPoint {
    /// Aggregates one system size's records (already in replication order)
    /// into a point. All folds — monolithic, sharded-and-merged,
    /// resumed-from-checkpoint — go through this one function, which is
    /// what makes their `f64` statistics bit-identical. Failed cells are
    /// excluded from the statistics and surfaced as an explicit count; a
    /// point whose replications *all* failed keeps finite (empty)
    /// statistics.
    fn from_cell(
        system_size: usize,
        records: &[ReplicationRecord],
        failed: usize,
    ) -> ScenarioPoint {
        if records.is_empty() {
            return ScenarioPoint {
                system_size,
                max_lateness: SummaryStats::empty(),
                end_to_end_lateness: SummaryStats::empty(),
                makespan: SummaryStats::empty(),
                feasible_fraction: 0.0,
                violations: 0,
                window_violations: Some(0),
                schedule_violations: Some(0),
                failed,
            };
        }
        let collect =
            |f: fn(&ReplicationRecord) -> f64| -> Vec<f64> { records.iter().map(f).collect() };
        // The split is only meaningful when every record carries it;
        // legacy checkpoint records degrade the point to the total-only
        // audit count.
        let split = |f: fn(&ReplicationRecord) -> Option<usize>| -> Option<usize> {
            records.iter().map(f).sum()
        };
        ScenarioPoint {
            system_size,
            max_lateness: SummaryStats::from_values(&collect(|r| r.max_lateness)),
            end_to_end_lateness: SummaryStats::from_values(&collect(|r| r.end_to_end)),
            makespan: SummaryStats::from_values(&collect(|r| r.makespan)),
            feasible_fraction: records.iter().filter(|r| r.feasible).count() as f64
                / records.len() as f64,
            violations: records.iter().map(|r| r.violations).sum(),
            window_violations: split(|r| r.window_violations),
            schedule_violations: split(|r| r.schedule_violations),
            failed,
        }
    }
}

/// The outcome of running one scenario over its system-size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario's display label.
    pub label: String,
    /// One point per system size, in sweep order.
    pub points: Vec<ScenarioPoint>,
}

impl ScenarioResult {
    /// The mean maximum task lateness per system size, in sweep order —
    /// the series plotted in every figure of the paper.
    pub fn lateness_series(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.system_size, p.max_lateness.mean))
            .collect()
    }

    /// The mean end-to-end lateness (output subtasks against their given
    /// end-to-end deadlines) per system size — the technique-neutral
    /// measure used when comparing against the UD/ED baselines, whose
    /// local deadlines are not comparable to sliced windows.
    pub fn end_to_end_series(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.system_size, p.end_to_end_lateness.mean))
            .collect()
    }
}

/// Raw measurements of one replication at one system size: the engine's
/// unit of work, checkpointing and shard merging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationRecord {
    /// Number of processors this replication was scheduled on.
    pub system_size: usize,
    /// Replication index (also the seed-stream coordinate).
    pub replication: usize,
    /// Maximum task lateness.
    pub max_lateness: f64,
    /// End-to-end lateness of output subtasks.
    pub end_to_end: f64,
    /// Schedule makespan.
    pub makespan: f64,
    /// Did the schedule meet every assigned deadline?
    pub feasible: bool,
    /// Structural violations found by validation (window + schedule).
    pub violations: usize,
    /// Deadline-window violations (assignment checker) within
    /// [`ReplicationRecord::violations`]. `None` on legacy checkpoint
    /// records written before the audit split.
    pub window_violations: Option<usize>,
    /// Schedule violations (`Schedule::validate`) within
    /// [`ReplicationRecord::violations`]. `None` on legacy checkpoint
    /// records written before the audit split.
    pub schedule_violations: Option<usize>,
}

/// A replication that failed after every retry and was degraded to a
/// typed outcome instead of aborting the sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailedReplication {
    /// Number of processors the replication was aimed at.
    pub system_size: usize,
    /// Replication index (also the seed-stream coordinate).
    pub replication: usize,
    /// The pipeline stage that failed: `generate`, `distribute`,
    /// `schedule` or `panic`.
    pub stage: String,
    /// The failure, rendered for humans and logs.
    pub error: String,
}

/// The outcome of one `(system size, replication)` cell: either a
/// completed measurement or a typed failure.
///
/// Under the engine's degrade-don't-die policy a cell that keeps failing
/// after bounded retries becomes [`ReplicationOutcome::Failed`]: the
/// sweep continues, the failure is checkpointed and counted explicitly
/// ([`ScenarioPoint::failed`]), and the cell is excluded from the
/// statistics — never silently folded into them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplicationOutcome {
    /// The replication completed and was measured.
    Ok(ReplicationRecord),
    /// The replication failed after retries.
    Failed(FailedReplication),
}

impl ReplicationOutcome {
    /// The completed record, if the replication succeeded.
    pub fn record(&self) -> Option<&ReplicationRecord> {
        match self {
            ReplicationOutcome::Ok(r) => Some(r),
            ReplicationOutcome::Failed(_) => None,
        }
    }

    /// The cell's `(system size, replication)` coordinates.
    pub fn cell(&self) -> (usize, usize) {
        match self {
            ReplicationOutcome::Ok(r) => (r.system_size, r.replication),
            ReplicationOutcome::Failed(f) => (f.system_size, f.replication),
        }
    }
}

/// One shard of a replicated sweep: this worker computes exactly the
/// replications `r` with `r % count == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This worker's shard index, in `0..count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// The unsharded (whole-sweep) shard.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// A shard covering every `count`-th replication starting at `index`.
    pub fn new(index: usize, count: usize) -> ShardSpec {
        ShardSpec { index, count }
    }

    /// Does this shard own replication `replication`?
    pub fn owns(self, replication: usize) -> bool {
        self.count != 0 && replication % self.count == self.index
    }

    /// Is this the whole sweep?
    pub fn is_full(self) -> bool {
        self.count == 1
    }

    /// Checks that the shard is addressable.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidShard`] if `count == 0` or
    /// `index >= count`.
    pub fn validate(self) -> Result<(), RunError> {
        if self.count == 0 || self.index >= self.count {
            return Err(RunError::InvalidShard {
                index: self.index,
                count: self.count,
            });
        }
        Ok(())
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::FULL
    }
}

/// A cooperative cancellation flag, checked by the engine between
/// replications.
///
/// Clone the token (cheap, shared) before handing the [`Runner`] to a
/// worker thread; calling [`CancelToken::cancel`] makes the run stop at
/// the next replication boundary with [`RunError::Cancelled`], leaving any
/// configured checkpoint valid for resumption.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One shard's completed records, ready to be folded into a
/// [`ScenarioResult`] by [`PartialResult::merge`]. Serializable, so shard
/// workers on different machines can exchange it as JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialResult {
    /// The scenario's display label.
    pub label: String,
    /// Fingerprint of the scenario the records belong to (seed, workload,
    /// technique, platform — everything that influences measurements).
    pub fingerprint: u64,
    /// Total replications of the full sweep (not just this shard's).
    pub replications: usize,
    /// System sizes of the full sweep, in sweep order.
    pub system_sizes: Vec<usize>,
    /// The shard that produced these records.
    pub shard: ShardSpec,
    /// Completed records, sorted by `(system_size, replication)`.
    pub records: Vec<ReplicationRecord>,
    /// Cells that degraded to typed failures, sorted by
    /// `(system_size, replication)`; disjoint from `records`.
    pub failed: Vec<FailedReplication>,
}

impl PartialResult {
    /// Folds shard outputs into the [`ScenarioResult`] of the full sweep.
    ///
    /// The merge recombines raw per-replication records in replication
    /// order — not floating-point summaries — so the result is
    /// bit-identical to a monolithic [`Runner::run`] of the same scenario.
    /// Overlapping shards are fine (first record per cell wins; by
    /// determinism duplicates are equal anyway).
    ///
    /// # Errors
    ///
    /// [`RunError::MergeMismatch`] if the parts disagree on scenario
    /// fingerprint, label or sweep shape; [`RunError::MergeIncomplete`] if
    /// the union of records does not cover every
    /// `(system size, replication)` cell.
    pub fn merge(parts: &[PartialResult]) -> Result<ScenarioResult, RunError> {
        let first = parts
            .first()
            .ok_or_else(|| RunError::MergeMismatch("no partial results to merge".to_owned()))?;
        for p in &parts[1..] {
            if p.fingerprint != first.fingerprint {
                return Err(RunError::MergeMismatch(format!(
                    "scenario fingerprints differ ({:#x} vs {:#x})",
                    first.fingerprint, p.fingerprint
                )));
            }
            if p.label != first.label {
                return Err(RunError::MergeMismatch(format!(
                    "labels differ ({:?} vs {:?})",
                    first.label, p.label
                )));
            }
            if p.replications != first.replications || p.system_sizes != first.system_sizes {
                return Err(RunError::MergeMismatch(
                    "sweep shapes (replications / system sizes) differ".to_owned(),
                ));
            }
        }

        let in_sweep = |size: usize, rep: usize| {
            rep < first.replications && first.system_sizes.contains(&size)
        };
        let mut cells: BTreeMap<(usize, usize), ReplicationOutcome> = BTreeMap::new();
        for part in parts {
            // Failed cells first, so that any part that completed the
            // cell wins over a part that degraded it.
            for f in &part.failed {
                if in_sweep(f.system_size, f.replication) {
                    cells
                        .entry((f.system_size, f.replication))
                        .or_insert_with(|| ReplicationOutcome::Failed(f.clone()));
                }
            }
        }
        for part in parts {
            for r in &part.records {
                if in_sweep(r.system_size, r.replication) {
                    match cells.entry((r.system_size, r.replication)) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(ReplicationOutcome::Ok(*r));
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            if e.get().record().is_none() {
                                e.insert(ReplicationOutcome::Ok(*r));
                            }
                        }
                    }
                }
            }
        }
        fold_records(
            first.label.clone(),
            &first.system_sizes,
            first.replications,
            &cells,
            None,
        )
    }
}

/// Builds the full sweep's points (in sweep order) from completed cells,
/// verifying coverage. `events` receives one `Point` event per size when
/// given.
fn fold_records(
    label: String,
    system_sizes: &[usize],
    replications: usize,
    cells: &BTreeMap<(usize, usize), ReplicationOutcome>,
    events: Option<&EventScope>,
) -> Result<ScenarioResult, RunError> {
    let mut unique_sizes: Vec<usize> = system_sizes.to_vec();
    unique_sizes.sort_unstable();
    unique_sizes.dedup();
    // A typed failure covers its cell: degraded sweeps fold, they are
    // just counted. Only cells with *no* recorded outcome are missing.
    let missing = unique_sizes.len() * replications
        - cells
            .keys()
            .filter(|(s, r)| unique_sizes.contains(s) && *r < replications)
            .count();
    if missing > 0 {
        return Err(RunError::MergeIncomplete { missing });
    }

    let mut points = Vec::with_capacity(system_sizes.len());
    for &size in system_sizes {
        let mut records = Vec::with_capacity(replications);
        let mut failed = 0usize;
        for rep in 0..replications {
            match &cells[&(size, rep)] {
                ReplicationOutcome::Ok(r) => records.push(*r),
                ReplicationOutcome::Failed(_) => failed += 1,
            }
        }
        let point = ScenarioPoint::from_cell(size, &records, failed);
        if point.violations > 0 {
            tracing::warn!(
                scenario = %label,
                system_size = size,
                violations = point.violations,
                "structural violations detected"
            );
        }
        if point.failed > 0 {
            tracing::warn!(
                scenario = %label,
                system_size = size,
                failed = point.failed,
                "replications degraded to failed outcomes and were excluded from statistics"
            );
        }
        tracing::debug!(
            scenario = %label,
            system_size = size,
            mean_max_lateness = point.max_lateness.mean,
            feasible_fraction = point.feasible_fraction,
            "scenario point complete"
        );
        if let Some(scope) = events {
            scope.emit(|| RunEvent::Point {
                scenario: label.clone(),
                system_size: size,
                mean_max_lateness: point.max_lateness.mean,
                feasible_fraction: point.feasible_fraction,
                violations: point.violations,
                failed: point.failed,
            });
        }
        points.push(point);
    }
    Ok(ScenarioResult { label, points })
}

/// Where a run's events go: its own sink if one was configured with
/// [`Runner::events`], else the process-global stream.
#[derive(Debug, Clone, Default)]
struct EventScope(Option<Arc<EventSink>>);

impl EventScope {
    fn emit(&self, f: impl FnOnce() -> RunEvent) {
        match &self.0 {
            Some(sink) => sink.emit(&f()),
            None => telemetry::emit_with(f),
        }
    }

    fn flush(&self) {
        match &self.0 {
            Some(sink) => sink.flush(),
            // Events went to the process-global stream: flush the sink
            // installed there (if any), so `events.jsonl` is complete even
            // when the process keeps running after a degraded replication.
            None => {
                if let Some(sink) = telemetry::installed() {
                    sink.flush();
                }
            }
        }
    }
}

/// The engine's view of the fault plan: a real plan under the
/// `fault-inject` feature, a zero-sized always-false stub otherwise, so
/// release builds pay nothing for the hooks.
#[derive(Debug, Clone, Default)]
struct FaultCtx {
    #[cfg(feature = "fault-inject")]
    plan: Option<Arc<FaultPlan>>,
}

#[cfg(feature = "fault-inject")]
impl FaultCtx {
    /// Does `site` fire at `(system_size, replication)` on this
    /// `attempt`? Firing is logged and emitted as a
    /// [`RunEvent::FaultInjected`] event.
    fn fires(
        &self,
        site: FaultSite,
        system_size: usize,
        replication: usize,
        attempt: u64,
        events: &EventScope,
    ) -> bool {
        let Some(plan) = &self.plan else {
            return false;
        };
        if !plan.should_fire(site, system_size, replication, attempt) {
            return false;
        }
        tracing::warn!(
            site = %site,
            system_size = system_size,
            replication = replication,
            attempt = attempt,
            "injecting fault"
        );
        events.emit(|| RunEvent::FaultInjected {
            site: site.name().to_owned(),
            system_size,
            replication,
            attempt,
        });
        true
    }
}

#[cfg(not(feature = "fault-inject"))]
impl FaultCtx {
    #[inline(always)]
    fn fires(
        &self,
        _site: FaultSite,
        _system_size: usize,
        _replication: usize,
        _attempt: u64,
        _events: &EventScope,
    ) -> bool {
        false
    }
}

/// Fingerprint of everything that influences a scenario's measurements:
/// workload, technique, platform family, scheduler and base seed — but not
/// the label or the sweep shape, so a checkpoint stays valid when the user
/// extends `replications` or `system_sizes`.
///
/// Options that default to "off" (currently `strict_windows`) are stripped
/// from the canonical form when disabled, so checkpoints written before an
/// option existed keep fingerprinting identically.
pub(crate) fn fingerprint(scenario: &Scenario) -> u64 {
    let mut canonical = scenario.clone();
    canonical.label = String::new();
    canonical.replications = 0;
    canonical.system_sizes = Vec::new();
    let mut value = canonical.to_value();
    if let serde::Value::Object(entries) = &mut value {
        entries.retain(|(key, _)| key != "strict_windows" || canonical.strict_windows);
    }
    let json = serde_json::to_string(&value).expect("scenario serializes");
    stream_label(json.as_bytes())
}

/// The workload's seed-stream coordinate: a stable hash of the workload
/// *source* only. Deliberately independent of the technique, so competing
/// techniques draw identical graphs (the paper's paired comparison).
fn workload_stream(workload: &WorkloadSource) -> u64 {
    let json = serde_json::to_string(workload).expect("workload serializes");
    stream_label(json.as_bytes())
}

/// Generates the workload for replication `rep`, retrying rejected draws
/// on fresh sub-streams a bounded number of times.
///
/// Seeds depend only on `(base_seed, workload stream, rep)` — not on the
/// technique or the system size — so different techniques and sizes see
/// the same graphs (paired comparison), and any replication is computable
/// in isolation.
///
/// Injected `generate-reject` faults are *virtual* rejections: they
/// consume retry budget without advancing the sub-stream, so a recovered
/// draw reproduces the fault-free graph bit-identically.
fn workload(
    scenario: &Scenario,
    stream: u64,
    rep: usize,
    fault: &FaultCtx,
    events: &EventScope,
) -> Result<TaskGraph, RunError> {
    let seed = stream_seed(scenario.base_seed, stream, 0, rep as u64);
    let mut injected = 0u64;
    while fault.fires(FaultSite::GenerateReject, 0, rep, injected, events) {
        injected += 1;
        if injected >= Runner::MAX_GENERATE_ATTEMPTS {
            return Err(RunError::GenerateRejected {
                replication: rep,
                attempts: injected as usize,
                last: GenerateError::InvalidSpec(
                    "injected generation rejection (fault plan)".to_owned(),
                ),
            });
        }
    }
    let mut last = None;
    for attempt in 0..Runner::MAX_GENERATE_ATTEMPTS.saturating_sub(injected) {
        let attempt_seed = sub_stream(seed, attempt);
        let result = match &scenario.workload {
            WorkloadSource::Random(spec) => generate_seeded(spec, attempt_seed),
            WorkloadSource::Shaped { shape, spec } => {
                generate_shape_seeded(*shape, spec, attempt_seed)
            }
        };
        match result {
            Ok(graph) => return Ok(graph),
            // An invalid spec is deterministic: retrying cannot help.
            Err(e @ GenerateError::InvalidSpec(_)) => return Err(e.into()),
            Err(e) => {
                tracing::warn!(
                    replication = rep,
                    attempt = attempt,
                    "workload draw rejected: {e}; retrying on a fresh sub-stream"
                );
                last = Some(e);
            }
        }
    }
    Err(RunError::GenerateRejected {
        replication: rep,
        attempts: Runner::MAX_GENERATE_ATTEMPTS as usize,
        last: last.expect("at least one attempt was made"),
    })
}

/// Runs one full replication through the [`Pipeline`] facade: distribute
/// deadlines, schedule, measure.
///
/// `pipeline` is per-worker: it owns the scheduler scratch state, which
/// every trial fully resets on entry, so reusing one pipeline across
/// replications (even after a caught panic) changes nothing but the
/// allocation count.
///
/// Stage timing is self-time: `distribute_us` covers the slicer alone and
/// `schedule_us` the list scheduler alone, while both validation passes
/// (window audit + schedule audit) are accounted to [`Stage::Audit`].
/// Every `profile_every`-th replication additionally emits a
/// [`RunEvent::Profile`] with the per-stage breakdown (`0` disables
/// sampling).
fn run_once(
    scenario: &Scenario,
    graph: &TaskGraph,
    platform: &Platform,
    rep: usize,
    events: &EventScope,
    pipeline: &mut Pipeline,
    profile_every: usize,
) -> Result<ReplicationRecord, RunError> {
    let verdict = pipeline.slice(graph, platform)?.trial(platform)?;
    let violations = verdict.violations();
    let record = ReplicationRecord {
        system_size: platform.processor_count(),
        replication: rep,
        max_lateness: verdict.max_lateness.as_f64(),
        end_to_end: verdict.end_to_end.as_f64(),
        makespan: verdict.makespan.as_f64(),
        feasible: verdict.admit,
        violations,
        window_violations: Some(verdict.window_violations),
        schedule_violations: Some(verdict.schedule_violations),
    };

    let registry = telemetry::global();
    registry.record_stage(Stage::Distribute, verdict.distribute);
    registry.record_stage(Stage::Schedule, verdict.schedule_time);
    registry.record_stage(Stage::Audit, verdict.audit);
    registry.count_schedule(record.feasible, violations);
    registry.count_audit(verdict.window_violations, verdict.schedule_violations);
    if profile_every != 0 && rep.is_multiple_of(profile_every) {
        events.emit(|| RunEvent::Profile {
            scenario: scenario.label.clone(),
            system_size: platform.processor_count(),
            replication: rep,
            distribute_us: verdict.distribute.as_micros() as u64,
            schedule_us: verdict.schedule_time.as_micros() as u64,
            audit_us: verdict.audit.as_micros() as u64,
        });
    }
    if violations > 0 {
        events.emit(|| RunEvent::AuditViolation {
            scenario: scenario.label.clone(),
            system_size: platform.processor_count(),
            replication: rep,
            window: verdict.window_violations,
            schedule: verdict.schedule_violations,
        });
    }
    events.emit(|| RunEvent::Replication {
        scenario: scenario.label.clone(),
        system_size: platform.processor_count(),
        replication: rep,
        distribute_us: verdict.distribute.as_micros() as u64,
        schedule_us: verdict.schedule_time.as_micros() as u64,
        feasible: record.feasible,
        violations,
        max_lateness: record.max_lateness,
    });
    Ok(record)
}

/// One line of a `checkpoint.jsonl` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum CheckpointLine {
    /// First line: identifies the scenario the records belong to.
    Header {
        /// Scenario fingerprint (see [`fingerprint`]).
        fingerprint: u64,
        /// Scenario label, for human readers of the file.
        label: String,
        /// Base seed, for human readers of the file.
        base_seed: u64,
    },
    /// One completed replication (legacy, checksum-less format; still
    /// read, no longer written).
    Record(ReplicationRecord),
    /// One completed replication, sealed with the CRC32 of the record's
    /// canonical JSON so silent corruption is detected on resume.
    Sealed {
        /// IEEE CRC32 of `serde_json::to_string(&record)`.
        crc: u32,
        /// The completed replication.
        record: ReplicationRecord,
    },
    /// One degraded replication, sealed like [`CheckpointLine::Sealed`].
    /// Read back for audit trails, but *not* loaded as a completed cell:
    /// a resumed run retries failed cells.
    Failed {
        /// IEEE CRC32 of `serde_json::to_string(&record)`.
        crc: u32,
        /// The recorded failure.
        record: FailedReplication,
    },
}

/// IEEE CRC32 (the zlib/PNG polynomial), bitwise — checkpoint lines are
/// short, so no table is needed.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

/// The CRC32 sealing a record: computed over the record's own canonical
/// JSON (not the enclosing line), so any value-altering corruption —
/// a flipped digit included — changes either the payload or the stored
/// checksum, and re-serializing the parsed record exposes the mismatch.
pub(crate) fn seal<T: Serialize>(record: &T) -> u32 {
    crc32(
        serde_json::to_string(record)
            .expect("plain data serializes")
            .as_bytes(),
    )
}

/// An append-only, crash-tolerant JSONL checkpoint.
struct CheckpointWriter {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Appends one outcome and flushes it to the OS, so a killed process
    /// loses at most the replication in flight. Transient I/O failures
    /// are retried with exponential backoff
    /// ([`Runner::CHECKPOINT_RETRY_LIMIT`] /
    /// [`Runner::CHECKPOINT_BACKOFF_BASE`]); a failure that survives
    /// every retry aborts the run with a typed I/O error.
    fn append(
        &self,
        outcome: &ReplicationOutcome,
        fault: &FaultCtx,
        events: &EventScope,
    ) -> Result<(), RunError> {
        let (size, rep) = outcome.cell();
        let line = match outcome {
            ReplicationOutcome::Ok(record) => CheckpointLine::Sealed {
                crc: seal(record),
                record: *record,
            },
            ReplicationOutcome::Failed(record) => CheckpointLine::Failed {
                crc: seal(record),
                record: record.clone(),
            },
        };
        #[allow(unused_mut)] // mutated only by the fault-inject hook below
        let mut text = serde_json::to_string(&line).expect("plain data serializes");
        #[cfg(feature = "fault-inject")]
        if fault.fires(FaultSite::CheckpointCorrupt, size, rep, 0, events) {
            corrupt_digit(&mut text);
        }

        let mut attempt: u64 = 0;
        loop {
            let injected = fault.fires(FaultSite::CheckpointIo, size, rep, attempt, events);
            let result: Result<(), std::io::Error> = if injected {
                Err(std::io::Error::other("injected checkpoint write failure"))
            } else {
                let mut writer = self.writer.lock().expect("checkpoint writer poisoned");
                writeln!(writer, "{text}").and_then(|()| writer.flush())
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) if attempt < u64::from(Runner::CHECKPOINT_RETRY_LIMIT) => {
                    let backoff = Runner::CHECKPOINT_BACKOFF_BASE * 2u32.pow(attempt as u32);
                    tracing::warn!(
                        path = %self.path.display(),
                        attempt = attempt,
                        backoff_ms = backoff.as_millis() as u64,
                        "checkpoint append failed ({e}); retrying"
                    );
                    telemetry::global().count_checkpoint_retry();
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Replaces the last decimal digit of `text` with a different digit:
/// the deterministic "silent disk corruption" a `checkpoint-corrupt`
/// fault writes. The line stays parseable, so only the CRC seal can
/// catch it.
#[cfg(feature = "fault-inject")]
pub(crate) fn corrupt_digit(text: &mut String) {
    if let Some(pos) = text.rfind(|c: char| c.is_ascii_digit()) {
        let old = text.as_bytes()[pos];
        let new = b'0' + (old - b'0' + 1) % 10;
        text.replace_range(pos..=pos, &char::from(new).to_string());
    }
}

/// Opens (or creates) the checkpoint at `path`, loading completed records
/// into `cells`. Records of cells outside the current sweep are left in
/// the file but ignored; degraded (`Failed`) records are acknowledged but
/// not loaded, so a resumed run retries them. An unparseable *final* line
/// (a torn write from a killed process) is skipped with a warning; any
/// other unreadable or checksum-mismatching line is rejected with
/// [`RunError::CheckpointCorrupt`] — corruption is detected, never
/// silently folded into statistics.
fn open_checkpoint(
    path: &Path,
    scenario: &Scenario,
    fp: u64,
    cells: &mut BTreeMap<(usize, usize), ReplicationOutcome>,
    events: &EventScope,
) -> Result<CheckpointWriter, RunError> {
    let corrupt = |line_no: usize, detail: &str| RunError::CheckpointCorrupt {
        path: path.to_path_buf(),
        detail: format!("{detail} at line {line_no}"),
    };
    let existing = match File::open(path) {
        Ok(file) => {
            let lines: Vec<String> = BufReader::new(file)
                .lines()
                .collect::<Result<_, _>>()
                .map_err(RunError::Io)?;
            match lines.first() {
                None => false, // created but never written: treat as fresh
                Some(first) => {
                    match serde_json::from_str::<CheckpointLine>(first) {
                        Ok(CheckpointLine::Header { fingerprint, .. }) if fingerprint == fp => {}
                        Ok(CheckpointLine::Header { .. }) => {
                            return Err(RunError::CheckpointMismatch {
                                path: path.to_path_buf(),
                            });
                        }
                        _ => {
                            return Err(RunError::CheckpointCorrupt {
                                path: path.to_path_buf(),
                                detail: "first line is not a checkpoint header".to_owned(),
                            });
                        }
                    }
                    let mut loaded = 0usize;
                    for (i, line) in lines.iter().enumerate().skip(1) {
                        let line_no = i + 1;
                        let last = i + 1 == lines.len();
                        let parsed = match serde_json::from_str::<CheckpointLine>(line) {
                            Ok(parsed) => parsed,
                            Err(_) if last => {
                                tracing::warn!(
                                    path = %path.display(),
                                    line = line_no,
                                    "skipping unparseable final checkpoint line (torn write)"
                                );
                                continue;
                            }
                            Err(_) => {
                                return Err(corrupt(line_no, "unparseable record"));
                            }
                        };
                        let record = match parsed {
                            CheckpointLine::Header { .. } => {
                                return Err(corrupt(line_no, "unexpected extra header"));
                            }
                            // Legacy checksum-less record: accepted as-is.
                            CheckpointLine::Record(r) => r,
                            CheckpointLine::Sealed { crc, record } => {
                                if seal(&record) != crc {
                                    return Err(corrupt(line_no, "record checksum mismatch"));
                                }
                                record
                            }
                            CheckpointLine::Failed { crc, record } => {
                                if seal(&record) != crc {
                                    return Err(corrupt(line_no, "record checksum mismatch"));
                                }
                                tracing::debug!(
                                    system_size = record.system_size,
                                    replication = record.replication,
                                    stage = %record.stage,
                                    "checkpoint records a degraded cell; it will be retried"
                                );
                                continue;
                            }
                        };
                        if record.replication < scenario.replications
                            && scenario.system_sizes.contains(&record.system_size)
                        {
                            cells
                                .entry((record.system_size, record.replication))
                                .or_insert(ReplicationOutcome::Ok(record));
                            loaded += 1;
                        }
                    }
                    tracing::info!(
                        path = %path.display(),
                        records = loaded,
                        "resuming from checkpoint"
                    );
                    events.emit(|| RunEvent::CheckpointLoaded {
                        path: path.display().to_string(),
                        records: loaded,
                    });
                    true
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
        Err(e) => return Err(e.into()),
    };

    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let writer = CheckpointWriter {
        writer: Mutex::new(BufWriter::new(file)),
        path: path.to_path_buf(),
    };
    if !existing {
        let header = serde_json::to_string(&CheckpointLine::Header {
            fingerprint: fp,
            label: scenario.label.clone(),
            base_seed: scenario.base_seed,
        })
        .expect("plain data serializes");
        let mut w = writer.writer.lock().expect("checkpoint writer poisoned");
        writeln!(w, "{header}")?;
        w.flush()?;
        drop(w);
    }
    Ok(writer)
}

/// Splits `items` into at most `threads` contiguous chunks and runs
/// `work` on each chunk in a scoped worker thread, collecting the chunk
/// results in order. Worker panics surface as
/// [`RunError::WorkerPanic`]`(stage)`.
fn fan_out<T, R, F>(
    items: &[T],
    threads: usize,
    stage: &'static str,
    work: F,
) -> Result<Vec<R>, RunError>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return Ok(vec![work(items)]);
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let work = &work;
                scope.spawn(move || work(c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| RunError::WorkerPanic(stage)))
            .collect()
    })
}

/// The sharded, resumable experiment engine: builds and executes one
/// scenario sweep.
///
/// # Examples
///
/// A plain (monolithic) run:
///
/// ```
/// use feast::{Runner, Scenario};
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), feast::RunError> {
/// let scenario = Scenario::paper(
///     "PURE/CCNE",
///     WorkloadSpec::paper(ExecVariation::Mdet),
///     MetricKind::pure(),
///     CommEstimate::Ccne,
/// )
/// .with_replications(4)
/// .with_system_sizes(vec![2]);
/// let result = Runner::new(scenario).threads(1).run()?;
/// assert_eq!(result.points.len(), 1);
/// # Ok(())
/// # }
/// ```
///
/// A two-shard run folded back together (each `run_partial` could execute
/// on a different machine):
///
/// ```
/// use feast::{PartialResult, Runner, Scenario, ShardSpec};
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), feast::RunError> {
/// let scenario = Scenario::paper(
///     "PURE/CCNE",
///     WorkloadSpec::paper(ExecVariation::Mdet),
///     MetricKind::pure(),
///     CommEstimate::Ccne,
/// )
/// .with_replications(4)
/// .with_system_sizes(vec![2]);
/// let parts: Vec<PartialResult> = (0..2)
///     .map(|i| {
///         Runner::new(scenario.clone())
///             .threads(1)
///             .shard(ShardSpec::new(i, 2))
///             .run_partial()
///     })
///     .collect::<Result<_, _>>()?;
/// let merged = PartialResult::merge(&parts)?;
/// let monolithic = Runner::new(scenario).threads(1).run()?;
/// assert_eq!(merged, monolithic); // bit-identical f64 statistics
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Runner {
    scenario: Scenario,
    threads: usize,
    shard: ShardSpec,
    checkpoint: Option<PathBuf>,
    events: EventScope,
    cancel: CancelToken,
    strict_validate: bool,
    fail_fast: bool,
    progress: Arc<ProgressTracker>,
    metrics: Option<Arc<MetricsWriter>>,
    profile_every: usize,
    miss_warn_limit: u64,
    #[cfg(feature = "fault-inject")]
    faults: Option<Arc<FaultPlan>>,
}

impl Runner {
    /// Maximum fresh [`sub_stream`]s tried when a workload draw is
    /// rejected before the replication fails with
    /// [`RunError::GenerateRejected`].
    ///
    /// Retrying on *sub*-streams (rather than walking an RNG forward)
    /// keeps every replication independently addressable: the retry
    /// sequence of replication `r` is a pure function of `r`, never of
    /// what other replications did.
    ///
    /// [`sub_stream`]: taskgraph::gen::sub_stream
    pub const MAX_GENERATE_ATTEMPTS: u64 = 8;

    /// Maximum *retries* of a failed checkpoint append (so up to
    /// `CHECKPOINT_RETRY_LIMIT + 1` attempts in total) before the run
    /// aborts with the underlying I/O error.
    pub const CHECKPOINT_RETRY_LIMIT: u32 = 4;

    /// Backoff before the first checkpoint-append retry; it doubles on
    /// every subsequent retry (1 ms, 2 ms, 4 ms, 8 ms at the default
    /// limit).
    pub const CHECKPOINT_BACKOFF_BASE: Duration = Duration::from_millis(1);

    /// Default stage-profile sampling period: every Nth replication emits
    /// a [`RunEvent::Profile`] with its per-stage self-times.
    pub const PROFILE_SAMPLE_EVERY: usize = 16;

    /// Default per-scenario budget of full deadline-miss WARN lines; the
    /// rest are counted and summarised in one
    /// [`RunEvent::DeadlineMissSummary`] at the end of the run.
    pub const MISS_WARN_LIMIT: u64 = 8;

    /// Minimum spacing between periodic `metrics.json` writes.
    pub const METRICS_WRITE_INTERVAL: Duration = Duration::from_secs(2);

    /// A runner for `scenario` with default settings: all cores, no shard,
    /// no checkpoint, events to the process-global stream, degrade-don't-
    /// die failure policy, non-strict audit, profile sampling every
    /// [`PROFILE_SAMPLE_EVERY`](Runner::PROFILE_SAMPLE_EVERY)th
    /// replication, deadline-miss warnings capped at
    /// [`MISS_WARN_LIMIT`](Runner::MISS_WARN_LIMIT), no metrics file.
    pub fn new(scenario: Scenario) -> Runner {
        Runner {
            scenario,
            threads: 0,
            shard: ShardSpec::FULL,
            checkpoint: None,
            events: EventScope::default(),
            cancel: CancelToken::new(),
            strict_validate: false,
            fail_fast: false,
            progress: Arc::new(ProgressTracker::new()),
            metrics: None,
            profile_every: Runner::PROFILE_SAMPLE_EVERY,
            miss_warn_limit: Runner::MISS_WARN_LIMIT,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// Sets the worker-thread count (`0` = all available cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Runner {
        self.threads = threads;
        self
    }

    /// Restricts this runner to one shard of the replication indices.
    #[must_use]
    pub fn shard(mut self, shard: ShardSpec) -> Runner {
        self.shard = shard;
        self
    }

    /// Checkpoints completed replications to (and resumes them from) the
    /// JSONL file at `path`.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Runner {
        self.checkpoint = Some(path.into());
        self
    }

    /// Streams this run's events to `sink` instead of the process-global
    /// stream — shard workers can keep separate event files.
    #[must_use]
    pub fn events(mut self, sink: EventSink) -> Runner {
        self.events = EventScope(Some(Arc::new(sink)));
        self
    }

    /// Makes the always-on audit *strict*: any structural violation (or
    /// degraded replication) found during the run turns into a typed
    /// error — [`RunError::AuditFailed`] / [`RunError::DegradedRun`] —
    /// instead of being counted and surfaced in the results.
    #[must_use]
    pub fn strict_validate(mut self, strict: bool) -> Runner {
        self.strict_validate = strict;
        self
    }

    /// Restores abort-on-first-failure: a replication that fails after
    /// retries aborts the run with its typed error instead of degrading
    /// to a [`ReplicationOutcome::Failed`] cell.
    #[must_use]
    pub fn fail_fast(mut self, fail_fast: bool) -> Runner {
        self.fail_fast = fail_fast;
        self
    }

    /// Shares `tracker` as this run's progress state. The runner arms it
    /// ([`ProgressTracker::configure`]) once the shard's workload is known
    /// and feeds it as cells complete, so a caller-owned render thread
    /// (the sweep bin's `--progress` view) can poll the same tracker live.
    #[must_use]
    pub fn progress(mut self, tracker: Arc<ProgressTracker>) -> Runner {
        self.progress = tracker;
        self
    }

    /// Serializes progress + metrics snapshots to `path` (atomically, via
    /// temp file + rename): periodically during the run — at most every
    /// [`METRICS_WRITE_INTERVAL`](Runner::METRICS_WRITE_INTERVAL) — and
    /// unconditionally at exit, on the error path included.
    #[must_use]
    pub fn metrics_out(mut self, path: impl Into<PathBuf>) -> Runner {
        self.metrics = Some(Arc::new(MetricsWriter::new(
            path,
            Runner::METRICS_WRITE_INTERVAL,
        )));
        self
    }

    /// Sets the stage-profile sampling period: every `n`th replication
    /// emits a [`RunEvent::Profile`] event (`0` disables sampling).
    #[must_use]
    pub fn profile_every(mut self, n: usize) -> Runner {
        self.profile_every = n;
        self
    }

    /// Caps full deadline-miss WARN lines at `limit` per scenario run;
    /// further misses are counted and reported once via
    /// [`RunEvent::DeadlineMissSummary`].
    #[must_use]
    pub fn miss_warn_limit(mut self, limit: u64) -> Runner {
        self.miss_warn_limit = limit;
        self
    }

    /// Injects faults from `plan` at the engine's named sites (only
    /// available with the `fault-inject` cargo feature).
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn faults(mut self, plan: crate::fault::FaultPlan) -> Runner {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// A clone of this runner's cancellation token. Cancel it from any
    /// thread to stop the run at the next replication boundary.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs the full sweep and aggregates every system size.
    ///
    /// # Errors
    ///
    /// [`RunError::ShardedRun`] if a multi-shard [`ShardSpec`] is
    /// configured (use [`Runner::run_partial`] + [`PartialResult::merge`]);
    /// otherwise any engine error (validation, generation, scheduling,
    /// checkpoint, cancellation, I/O).
    pub fn run(self) -> Result<ScenarioResult, RunError> {
        self.shard.validate()?;
        if !self.shard.is_full() {
            return Err(RunError::ShardedRun {
                count: self.shard.count,
            });
        }
        let label = self.scenario.label.clone();
        let system_sizes = self.scenario.system_sizes.clone();
        let replications = self.scenario.replications;
        let events = self.events.clone();
        let partial = self.run_partial()?;
        let mut cells: BTreeMap<(usize, usize), ReplicationOutcome> = BTreeMap::new();
        for f in partial.failed {
            cells.insert(
                (f.system_size, f.replication),
                ReplicationOutcome::Failed(f),
            );
        }
        for r in partial.records {
            cells.insert((r.system_size, r.replication), ReplicationOutcome::Ok(r));
        }
        fold_records(label, &system_sizes, replications, &cells, Some(&events))
    }

    /// Runs this runner's shard of the sweep and returns its records.
    ///
    /// Honours the checkpoint (completed cells are loaded, not recomputed)
    /// and the cancellation token (checked between replications). The
    /// returned [`PartialResult`] contains every known record for the
    /// shard — freshly computed and resumed alike — sorted by
    /// `(system size, replication)`.
    ///
    /// # Errors
    ///
    /// Any engine error; see [`RunError`].
    pub fn run_partial(self) -> Result<PartialResult, RunError> {
        let label = self.scenario.label.clone();
        let events = self.events.clone();
        let progress = Arc::clone(&self.progress);
        let metrics = self.metrics.clone();
        let miss_log = Arc::new(MissLog::new(self.miss_warn_limit));
        let result = self.run_partial_inner(&miss_log);

        // Exit accounting runs on success *and* on the degraded/error
        // paths: the miss summary, the terminal progress state, the final
        // metrics.json snapshot, and a last event flush.
        if miss_log.suppressed() > 0 {
            tracing::warn!(
                scenario = %label,
                emitted = miss_log.emitted(),
                suppressed = miss_log.suppressed(),
                "deadline-miss warnings were rate-limited; see the summary event"
            );
        }
        if miss_log.total() > 0 {
            events.emit(|| RunEvent::DeadlineMissSummary {
                scenario: label.clone(),
                emitted: miss_log.emitted(),
                suppressed: miss_log.suppressed(),
            });
        }
        match &result {
            Ok(_) => progress.finish("complete"),
            Err(e) => progress.finish(&e.to_string()),
        }
        if let Some(m) = &metrics {
            m.write_now(&progress, telemetry::global().snapshot());
        }
        events.flush();
        result
    }

    /// The body of [`Runner::run_partial`]; the wrapper owns the exit
    /// accounting so early returns here cannot skip it.
    fn run_partial_inner(self, miss_log: &Arc<MissLog>) -> Result<PartialResult, RunError> {
        let fault = FaultCtx {
            #[cfg(feature = "fault-inject")]
            plan: self.faults.clone(),
        };
        let Runner {
            scenario,
            threads,
            shard,
            checkpoint,
            events,
            cancel,
            strict_validate,
            fail_fast,
            progress,
            metrics,
            profile_every,
            ..
        } = self;
        scenario.validate()?;
        shard.validate()?;
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
        .min(scenario.replications.max(1));

        let _span = tracing::info_span!(
            "scenario",
            label = %scenario.label,
            replications = scenario.replications,
            threads = threads,
            shard_index = shard.index,
            shard_count = shard.count
        )
        .entered();

        let fp = fingerprint(&scenario);
        let stream = workload_stream(&scenario.workload);

        let mut cells: BTreeMap<(usize, usize), ReplicationOutcome> = BTreeMap::new();
        let writer = match &checkpoint {
            Some(path) => Some(open_checkpoint(path, &scenario, fp, &mut cells, &events)?),
            None => None,
        };

        let owned: Vec<usize> = (0..scenario.replications)
            .filter(|&r| shard.owns(r))
            .collect();

        // Arm the progress tracker now that the shard's workload is known:
        // one cell per owned replication per distinct system size, minus
        // whatever the checkpoint already resumed.
        let unique_sizes: BTreeSet<usize> = scenario.system_sizes.iter().copied().collect();
        let resumed_cells = cells
            .keys()
            .filter(|(size, rep)| unique_sizes.contains(size) && shard.owns(*rep))
            .count() as u64;
        progress.configure(
            &scenario.label,
            shard.index,
            shard.count,
            (owned.len() * unique_sizes.len()) as u64,
            resumed_cells,
        );

        // Workloads are shared across system sizes: generate each needed
        // replication's graph once, fanning out over the worker threads.
        // Telemetry is emitted afterwards on the caller thread so
        // `GraphGenerated` events stay ordered by replication index.
        let needed: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|&rep| {
                scenario
                    .system_sizes
                    .iter()
                    .any(|&size| !cells.contains_key(&(size, rep)))
            })
            .collect();
        type Generated = (usize, Result<(TaskGraph, std::time::Duration), RunError>);
        let generated: Vec<Vec<Generated>> =
            fan_out(&needed, threads, "generate", |chunk: &[usize]| {
                chunk
                    .iter()
                    .take_while(|_| !cancel.is_cancelled())
                    .map(|&rep| {
                        let started = Instant::now();
                        let graph = workload(&scenario, stream, rep, &fault, &events);
                        (rep, graph.map(|g| (g, started.elapsed())))
                    })
                    .collect()
            })?;
        if cancel.is_cancelled() {
            events.flush();
            return Err(RunError::Cancelled);
        }
        let mut graphs: BTreeMap<usize, TaskGraph> = BTreeMap::new();
        // Replications whose workload could not be generated. Under the
        // degrade-don't-die policy they become typed failed cells at
        // every swept size; `fail_fast` (and any deterministic spec
        // error, where retrying cannot help) aborts instead.
        let mut failed_generation: BTreeMap<usize, String> = BTreeMap::new();
        for (rep, result) in generated.into_iter().flatten() {
            let (graph, elapsed) = match result {
                Ok(ok) => ok,
                Err(e @ RunError::GenerateRejected { .. }) if !fail_fast => {
                    tracing::warn!(replication = rep, "degrading replication: {e}");
                    failed_generation.insert(rep, e.to_string());
                    continue;
                }
                Err(e) => return Err(e),
            };
            let registry = telemetry::global();
            registry.record_stage(Stage::Generate, elapsed);
            registry.count_graph();
            events.emit(|| RunEvent::GraphGenerated {
                replication: rep,
                subtasks: graph.subtask_count(),
                messages: graph.edge_count(),
                generate_us: elapsed.as_micros() as u64,
            });
            graphs.insert(rep, graph);
        }

        for &size in &scenario.system_sizes {
            let missing: Vec<usize> = owned
                .iter()
                .copied()
                .filter(|&rep| !cells.contains_key(&(size, rep)))
                .collect();
            if missing.is_empty() {
                continue;
            }
            if cancel.is_cancelled() {
                events.flush();
                return Err(RunError::Cancelled);
            }
            let _size_span = tracing::debug_span!("system_size", procs = size).entered();
            let topology = scenario.topology.build(size, scenario.cost_per_item);
            let platform = Platform::homogeneous(size, topology)?;

            let mut schedulable = Vec::with_capacity(missing.len());
            for &rep in &missing {
                match failed_generation.get(&rep) {
                    None => schedulable.push(rep),
                    Some(error) => {
                        let outcome = ReplicationOutcome::Failed(FailedReplication {
                            system_size: size,
                            replication: rep,
                            stage: "generate".to_owned(),
                            error: error.clone(),
                        });
                        telemetry::global().count_failed_replication();
                        events.emit(|| RunEvent::ReplicationFailed {
                            scenario: scenario.label.clone(),
                            system_size: size,
                            replication: rep,
                            stage: "generate".to_owned(),
                            error: error.clone(),
                        });
                        // Failure events reach disk immediately: a process
                        // that dies later still leaves them in events.jsonl.
                        events.flush();
                        if let Some(w) = &writer {
                            w.append(&outcome, &fault, &events)?;
                        }
                        progress.record_cell(false, 0);
                        cells.insert((size, rep), outcome);
                    }
                }
            }

            let computed: Vec<Result<Vec<ReplicationOutcome>, RunError>> =
                fan_out(&schedulable, threads, "schedule", |chunk: &[usize]| {
                    let mut out = Vec::with_capacity(chunk.len());
                    // One pipeline (and thus one scheduling workspace) per
                    // worker: steady-state replications run allocation-free.
                    // All workers share the run's deadline-miss budget.
                    let mut pipeline = Pipeline::new(&scenario);
                    pipeline.set_miss_log(Some(Arc::clone(miss_log)));
                    for &rep in chunk {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let graph = &graphs[&rep];
                        let inject_panic =
                            fault.fires(FaultSite::WorkerPanic, size, rep, 0, &events);
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if inject_panic {
                                panic!("injected worker panic (fault plan)");
                            }
                            run_once(
                                &scenario,
                                graph,
                                &platform,
                                rep,
                                &events,
                                &mut pipeline,
                                profile_every,
                            )
                        }));
                        let outcome = match result {
                            Ok(Ok(record)) => ReplicationOutcome::Ok(record),
                            Ok(Err(e)) => {
                                if fail_fast {
                                    return Err(e);
                                }
                                let stage = match &e {
                                    RunError::Slice(_) => "distribute",
                                    _ => "schedule",
                                };
                                ReplicationOutcome::Failed(FailedReplication {
                                    system_size: size,
                                    replication: rep,
                                    stage: stage.to_owned(),
                                    error: e.to_string(),
                                })
                            }
                            Err(panic) => {
                                if fail_fast {
                                    return Err(RunError::WorkerPanic("schedule"));
                                }
                                ReplicationOutcome::Failed(FailedReplication {
                                    system_size: size,
                                    replication: rep,
                                    stage: "panic".to_owned(),
                                    error: panic_message(panic.as_ref()),
                                })
                            }
                        };
                        if let ReplicationOutcome::Failed(f) = &outcome {
                            tracing::warn!(
                                system_size = size,
                                replication = rep,
                                stage = %f.stage,
                                "degrading replication: {}",
                                f.error
                            );
                            telemetry::global().count_failed_replication();
                            events.emit(|| RunEvent::ReplicationFailed {
                                scenario: scenario.label.clone(),
                                system_size: size,
                                replication: rep,
                                stage: f.stage.clone(),
                                error: f.error.clone(),
                            });
                            // Flush straight after a degraded replication so
                            // events.jsonl records it even if the process is
                            // killed before the end-of-run flush.
                            events.flush();
                        }
                        if let Some(w) = &writer {
                            w.append(&outcome, &fault, &events)?;
                        }
                        match &outcome {
                            ReplicationOutcome::Ok(r) => {
                                progress.record_cell(true, r.violations as u64);
                            }
                            ReplicationOutcome::Failed(_) => progress.record_cell(false, 0),
                        }
                        if let Some(m) = &metrics {
                            m.maybe_write(&progress, || telemetry::global().snapshot());
                        }
                        out.push(outcome);
                        if fault.fires(FaultSite::CancelRace, size, rep, 0, &events) {
                            cancel.cancel();
                        }
                    }
                    Ok(out)
                })?;
            for worker in computed {
                for outcome in worker? {
                    cells.insert(outcome.cell(), outcome);
                }
            }
            if cancel.is_cancelled() {
                events.flush();
                return Err(RunError::Cancelled);
            }
        }

        if strict_validate {
            strict_checks(&cells)?;
        }

        events.flush();
        let mut records = Vec::new();
        let mut failed = Vec::new();
        for outcome in cells.into_values() {
            match outcome {
                ReplicationOutcome::Ok(r) => records.push(r),
                ReplicationOutcome::Failed(f) => failed.push(f),
            }
        }
        Ok(PartialResult {
            label: scenario.label.clone(),
            fingerprint: fp,
            replications: scenario.replications,
            system_sizes: scenario.system_sizes.clone(),
            shard,
            records,
            failed,
        })
    }
}

/// Renders a panic payload for the degraded-cell record.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// The strict-audit gate: rejects any structural violation, then any
/// degraded cell, with typed errors.
fn strict_checks(cells: &BTreeMap<(usize, usize), ReplicationOutcome>) -> Result<(), RunError> {
    let mut violations = 0usize;
    let mut violating_cells = 0usize;
    let mut failed = 0usize;
    for outcome in cells.values() {
        match outcome {
            ReplicationOutcome::Ok(r) if r.violations > 0 => {
                violations += r.violations;
                violating_cells += 1;
            }
            ReplicationOutcome::Ok(_) => {}
            ReplicationOutcome::Failed(_) => failed += 1,
        }
    }
    if violations > 0 {
        return Err(RunError::AuditFailed {
            violations,
            cells: violating_cells,
        });
    }
    if failed > 0 {
        return Err(RunError::DegradedRun { failed });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use slicing::{CommEstimate, MetricKind};
    use taskgraph::gen::{ExecVariation, WorkloadSpec};

    use crate::ScenarioError;

    use super::*;

    fn tiny_scenario(metric: MetricKind) -> Scenario {
        Scenario::paper(
            "test",
            WorkloadSpec::paper(ExecVariation::Mdet),
            metric,
            CommEstimate::Ccne,
        )
        .with_replications(4)
        .with_system_sizes(vec![2, 8])
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let scenario = tiny_scenario(MetricKind::pure());
        let seq = Runner::new(scenario.clone()).threads(1).run().unwrap();
        let par = Runner::new(scenario).threads(4).run().unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn pipeline_produces_no_structural_violations() {
        for metric in [
            MetricKind::norm(),
            MetricKind::pure(),
            MetricKind::thres(1.0),
            MetricKind::adapt(),
        ] {
            let result = Runner::new(tiny_scenario(metric)).threads(1).run().unwrap();
            for p in &result.points {
                assert_eq!(p.violations, 0, "{} at n={}", result.label, p.system_size);
            }
        }
    }

    #[test]
    fn more_processors_do_not_hurt_lateness() {
        let result = Runner::new(tiny_scenario(MetricKind::pure()))
            .threads(1)
            .run()
            .unwrap();
        let series = result.lateness_series();
        assert_eq!(series.len(), 2);
        assert!(
            series[1].1 <= series[0].1 + 1e-9,
            "lateness should improve (or stay) from 2 to 8 processors: {series:?}"
        );
    }

    #[test]
    fn rejects_degenerate_scenarios_with_typed_errors() {
        let s = tiny_scenario(MetricKind::pure()).with_replications(0);
        assert!(matches!(
            Runner::new(s).run(),
            Err(RunError::Scenario(ScenarioError::NoReplications))
        ));
        let s = tiny_scenario(MetricKind::pure()).with_system_sizes(vec![]);
        assert!(matches!(
            Runner::new(s).run(),
            Err(RunError::Scenario(ScenarioError::NoSystemSizes))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let scenario = tiny_scenario(MetricKind::adapt());
        let a = Runner::new(scenario.clone()).threads(1).run().unwrap();
        let b = Runner::new(scenario).threads(1).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shard_spec_partitions_and_validates() {
        let shards: Vec<ShardSpec> = (0..3).map(|i| ShardSpec::new(i, 3)).collect();
        for rep in 0..20 {
            let owners = shards.iter().filter(|s| s.owns(rep)).count();
            assert_eq!(owners, 1, "replication {rep} must have exactly one owner");
        }
        assert!(ShardSpec::new(0, 1).validate().is_ok());
        assert!(ShardSpec::FULL.is_full());
        assert!(matches!(
            ShardSpec::new(2, 2).validate(),
            Err(RunError::InvalidShard { index: 2, count: 2 })
        ));
        assert!(matches!(
            ShardSpec::new(0, 0).validate(),
            Err(RunError::InvalidShard { .. })
        ));
    }

    #[test]
    fn run_on_sharded_runner_is_a_typed_error() {
        let runner = Runner::new(tiny_scenario(MetricKind::pure())).shard(ShardSpec::new(0, 2));
        assert!(matches!(
            runner.run(),
            Err(RunError::ShardedRun { count: 2 })
        ));
    }

    #[test]
    fn cancel_token_stops_the_run() {
        let runner = Runner::new(tiny_scenario(MetricKind::pure())).threads(1);
        let token = runner.cancel_token();
        token.cancel();
        assert!(matches!(runner.run(), Err(RunError::Cancelled)));
    }

    #[test]
    fn fingerprint_ignores_label_and_sweep_shape() {
        let a = tiny_scenario(MetricKind::pure());
        let mut b = a.clone().with_replications(99).with_system_sizes(vec![4]);
        b.label = "renamed".to_owned();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = a.clone().with_base_seed(1);
        assert_ne!(fingerprint(&a), fingerprint(&c));
        let d = tiny_scenario(MetricKind::adapt());
        assert_ne!(fingerprint(&a), fingerprint(&d));
    }

    #[test]
    fn fingerprint_strips_the_disabled_strict_windows_option() {
        // The canonical form with the option off must match what pre-option
        // releases fingerprinted, so their checkpoints stay loadable.
        let a = tiny_scenario(MetricKind::pure());
        let mut legacy = a.clone();
        legacy.label = String::new();
        legacy.replications = 0;
        legacy.system_sizes = Vec::new();
        let mut value = legacy.to_value();
        if let serde::Value::Object(entries) = &mut value {
            entries.retain(|(key, _)| key != "strict_windows");
        }
        let legacy_json = serde_json::to_string(&value).unwrap();
        assert!(!legacy_json.contains("strict_windows"));
        assert_eq!(fingerprint(&a), stream_label(legacy_json.as_bytes()));
        // Turning the clamp on is a measurement change: new fingerprint.
        let strict = a.clone().with_strict_windows(true);
        assert_ne!(fingerprint(&a), fingerprint(&strict));
    }

    #[test]
    fn workload_stream_is_technique_independent() {
        let pure = tiny_scenario(MetricKind::pure());
        let adapt = tiny_scenario(MetricKind::adapt());
        assert_eq!(
            workload_stream(&pure.workload),
            workload_stream(&adapt.workload)
        );
        let other = pure.with_workload(WorkloadSource::Random(WorkloadSpec::paper(
            ExecVariation::Hdet,
        )));
        assert_ne!(
            workload_stream(&tiny_scenario(MetricKind::pure()).workload),
            workload_stream(&other.workload)
        );
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    fn record(size: usize, rep: usize, lateness: f64, violations: usize) -> ReplicationRecord {
        ReplicationRecord {
            system_size: size,
            replication: rep,
            max_lateness: lateness,
            end_to_end: lateness,
            makespan: lateness.abs(),
            feasible: violations == 0,
            violations,
            window_violations: Some(violations),
            schedule_violations: Some(0),
        }
    }

    fn failure(size: usize, rep: usize) -> FailedReplication {
        FailedReplication {
            system_size: size,
            replication: rep,
            stage: "schedule".to_owned(),
            error: "synthetic failure".to_owned(),
        }
    }

    #[test]
    fn degraded_cells_fold_with_explicit_counts() {
        let mut cells = BTreeMap::new();
        cells.insert((2, 0), ReplicationOutcome::Ok(record(2, 0, -1.0, 0)));
        cells.insert((2, 1), ReplicationOutcome::Failed(failure(2, 1)));
        cells.insert((2, 2), ReplicationOutcome::Ok(record(2, 2, -3.0, 0)));
        let result = fold_records("t".to_owned(), &[2], 3, &cells, None).unwrap();
        let p = &result.points[0];
        assert_eq!(p.failed, 1);
        assert_eq!(p.max_lateness.count, 2);
        assert_eq!(p.max_lateness.mean, -2.0);
        assert_eq!(p.feasible_fraction, 1.0);
        assert_eq!(p.window_violations, Some(0));
        assert_eq!(p.schedule_violations, Some(0));
    }

    #[test]
    fn all_failed_point_keeps_finite_empty_statistics() {
        let mut cells = BTreeMap::new();
        cells.insert((4, 0), ReplicationOutcome::Failed(failure(4, 0)));
        cells.insert((4, 1), ReplicationOutcome::Failed(failure(4, 1)));
        let result = fold_records("t".to_owned(), &[4], 2, &cells, None).unwrap();
        let p = &result.points[0];
        assert_eq!(p.failed, 2);
        assert_eq!(p.max_lateness.count, 0);
        assert_eq!(p.feasible_fraction, 0.0);
        // The point must stay serializable (no NaN/infinity anywhere).
        let json = serde_json::to_string(&result).unwrap();
        let back: ScenarioResult = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, &result);
    }

    #[test]
    fn legacy_records_without_audit_split_degrade_the_point_split() {
        let mut with_split = record(2, 0, -1.0, 1);
        let mut legacy = record(2, 1, -2.0, 2);
        legacy.window_violations = None;
        legacy.schedule_violations = None;
        with_split.violations = 1;
        let mut cells = BTreeMap::new();
        cells.insert((2, 0), ReplicationOutcome::Ok(with_split));
        cells.insert((2, 1), ReplicationOutcome::Ok(legacy));
        let result = fold_records("t".to_owned(), &[2], 2, &cells, None).unwrap();
        let p = &result.points[0];
        assert_eq!(p.violations, 3, "the total audit count never degrades");
        assert_eq!(p.window_violations, None);
        assert_eq!(p.schedule_violations, None);
    }

    #[test]
    fn strict_checks_reject_violations_then_degraded_cells() {
        let mut clean = BTreeMap::new();
        clean.insert((2, 0), ReplicationOutcome::Ok(record(2, 0, -1.0, 0)));
        assert!(strict_checks(&clean).is_ok());

        let mut violating = clean.clone();
        violating.insert((2, 1), ReplicationOutcome::Ok(record(2, 1, 0.5, 2)));
        assert!(matches!(
            strict_checks(&violating),
            Err(RunError::AuditFailed {
                violations: 2,
                cells: 1
            })
        ));

        let mut degraded = clean.clone();
        degraded.insert((2, 1), ReplicationOutcome::Failed(failure(2, 1)));
        assert!(matches!(
            strict_checks(&degraded),
            Err(RunError::DegradedRun { failed: 1 })
        ));
    }

    #[test]
    fn strict_validate_passes_on_a_clean_scenario() {
        let result = Runner::new(tiny_scenario(MetricKind::pure()))
            .threads(1)
            .strict_validate(true)
            .run()
            .unwrap();
        assert!(result.points.iter().all(|p| p.failed == 0));
    }

    #[test]
    fn panic_messages_render_for_common_payloads() {
        let p = catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "plain str");
        let p = catch_unwind(|| panic!("{}", String::from("formatted"))).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "opaque panic payload");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn corrupt_digit_keeps_the_line_parseable_but_breaks_the_seal() {
        let record = record(2, 0, -1.5, 0);
        let line = CheckpointLine::Sealed {
            crc: seal(&record),
            record,
        };
        let mut text = serde_json::to_string(&line).unwrap();
        corrupt_digit(&mut text);
        let parsed: CheckpointLine = serde_json::from_str(&text).expect("still parses");
        match parsed {
            CheckpointLine::Sealed { crc, record } => {
                assert_ne!(seal(&record), crc, "corruption must break the seal");
            }
            other => panic!("expected Sealed, got {other:?}"),
        }
    }
}
