//! Scenario execution: the generate → distribute → schedule → measure
//! pipeline, swept over system sizes and replications by a sharded,
//! checkpointable, cancellable [`Runner`].
//!
//! # The engine
//!
//! Every replication's workload seed is derived from its coordinates via
//! [`stream_seed`] (never from a sequential RNG walk), so any replication
//! is independently computable in any order on any worker. On top of that
//! the engine layers:
//!
//! * **sharding** — [`ShardSpec`] partitions the replication indices;
//!   [`Runner::run_partial`] computes one shard's [`PartialResult`] and
//!   [`PartialResult::merge`] folds N shard outputs into the exact
//!   [`ScenarioResult`] a monolithic run produces (bit-identical `f64`s,
//!   because the merge recombines raw per-replication records in
//!   replication order rather than combining floating-point summaries);
//! * **checkpointing** — [`Runner::checkpoint`] appends every completed
//!   replication to a JSONL file; a restarted run loads it, skips the
//!   completed `(system size, replication)` cells and computes only the
//!   rest;
//! * **cancellation** — a [`CancelToken`] checked between replications
//!   stops the run with [`RunError::Cancelled`] while preserving the
//!   checkpoint;
//! * **bounded retry** — a rejected workload draw is retried on fresh
//!   [`sub_stream`]s a bounded number of times before the run fails with
//!   a typed error.
//!
//! [`stream_seed`]: taskgraph::gen::stream_seed
//! [`sub_stream`]: taskgraph::gen::sub_stream

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use platform::Platform;
use sched::{LatenessReport, ListScheduler};
use slicing::{distribute_baseline, Slicer};
use taskgraph::gen::{
    generate_seeded, generate_shape_seeded, stream_label, stream_seed, sub_stream, GenerateError,
};
use taskgraph::TaskGraph;

use crate::telemetry::{self, EventSink, RunEvent, Stage};
use crate::{RunError, Scenario, SummaryStats, Technique, WorkloadSource};

/// Measurements of one scenario at one system size, aggregated over all
/// replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Number of processors.
    pub system_size: usize,
    /// Maximum task lateness (the paper's headline measure).
    pub max_lateness: SummaryStats,
    /// Lateness of output subtasks against their end-to-end deadlines.
    pub end_to_end_lateness: SummaryStats,
    /// Schedule makespan.
    pub makespan: SummaryStats,
    /// Fraction of replications whose schedules met every assigned
    /// deadline.
    pub feasible_fraction: f64,
    /// Structural violations found across all replications (0 for a sound
    /// pipeline).
    pub violations: usize,
}

impl ScenarioPoint {
    /// Aggregates one system size's records (already in replication order)
    /// into a point. All folds — monolithic, sharded-and-merged,
    /// resumed-from-checkpoint — go through this one function, which is
    /// what makes their `f64` statistics bit-identical.
    fn from_records(system_size: usize, records: &[ReplicationRecord]) -> ScenarioPoint {
        debug_assert!(!records.is_empty());
        let collect =
            |f: fn(&ReplicationRecord) -> f64| -> Vec<f64> { records.iter().map(f).collect() };
        ScenarioPoint {
            system_size,
            max_lateness: SummaryStats::from_values(&collect(|r| r.max_lateness)),
            end_to_end_lateness: SummaryStats::from_values(&collect(|r| r.end_to_end)),
            makespan: SummaryStats::from_values(&collect(|r| r.makespan)),
            feasible_fraction: records.iter().filter(|r| r.feasible).count() as f64
                / records.len() as f64,
            violations: records.iter().map(|r| r.violations).sum(),
        }
    }
}

/// The outcome of running one scenario over its system-size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario's display label.
    pub label: String,
    /// One point per system size, in sweep order.
    pub points: Vec<ScenarioPoint>,
}

impl ScenarioResult {
    /// The mean maximum task lateness per system size, in sweep order —
    /// the series plotted in every figure of the paper.
    pub fn lateness_series(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.system_size, p.max_lateness.mean))
            .collect()
    }

    /// The mean end-to-end lateness (output subtasks against their given
    /// end-to-end deadlines) per system size — the technique-neutral
    /// measure used when comparing against the UD/ED baselines, whose
    /// local deadlines are not comparable to sliced windows.
    pub fn end_to_end_series(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.system_size, p.end_to_end_lateness.mean))
            .collect()
    }
}

/// Raw measurements of one replication at one system size: the engine's
/// unit of work, checkpointing and shard merging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationRecord {
    /// Number of processors this replication was scheduled on.
    pub system_size: usize,
    /// Replication index (also the seed-stream coordinate).
    pub replication: usize,
    /// Maximum task lateness.
    pub max_lateness: f64,
    /// End-to-end lateness of output subtasks.
    pub end_to_end: f64,
    /// Schedule makespan.
    pub makespan: f64,
    /// Did the schedule meet every assigned deadline?
    pub feasible: bool,
    /// Structural violations found by validation.
    pub violations: usize,
}

/// One shard of a replicated sweep: this worker computes exactly the
/// replications `r` with `r % count == index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This worker's shard index, in `0..count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// The unsharded (whole-sweep) shard.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// A shard covering every `count`-th replication starting at `index`.
    pub fn new(index: usize, count: usize) -> ShardSpec {
        ShardSpec { index, count }
    }

    /// Does this shard own replication `replication`?
    pub fn owns(self, replication: usize) -> bool {
        self.count != 0 && replication % self.count == self.index
    }

    /// Is this the whole sweep?
    pub fn is_full(self) -> bool {
        self.count == 1
    }

    /// Checks that the shard is addressable.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidShard`] if `count == 0` or
    /// `index >= count`.
    pub fn validate(self) -> Result<(), RunError> {
        if self.count == 0 || self.index >= self.count {
            return Err(RunError::InvalidShard {
                index: self.index,
                count: self.count,
            });
        }
        Ok(())
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::FULL
    }
}

/// A cooperative cancellation flag, checked by the engine between
/// replications.
///
/// Clone the token (cheap, shared) before handing the [`Runner`] to a
/// worker thread; calling [`CancelToken::cancel`] makes the run stop at
/// the next replication boundary with [`RunError::Cancelled`], leaving any
/// configured checkpoint valid for resumption.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One shard's completed records, ready to be folded into a
/// [`ScenarioResult`] by [`PartialResult::merge`]. Serializable, so shard
/// workers on different machines can exchange it as JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialResult {
    /// The scenario's display label.
    pub label: String,
    /// Fingerprint of the scenario the records belong to (seed, workload,
    /// technique, platform — everything that influences measurements).
    pub fingerprint: u64,
    /// Total replications of the full sweep (not just this shard's).
    pub replications: usize,
    /// System sizes of the full sweep, in sweep order.
    pub system_sizes: Vec<usize>,
    /// The shard that produced these records.
    pub shard: ShardSpec,
    /// Completed records, sorted by `(system_size, replication)`.
    pub records: Vec<ReplicationRecord>,
}

impl PartialResult {
    /// Folds shard outputs into the [`ScenarioResult`] of the full sweep.
    ///
    /// The merge recombines raw per-replication records in replication
    /// order — not floating-point summaries — so the result is
    /// bit-identical to a monolithic [`Runner::run`] of the same scenario.
    /// Overlapping shards are fine (first record per cell wins; by
    /// determinism duplicates are equal anyway).
    ///
    /// # Errors
    ///
    /// [`RunError::MergeMismatch`] if the parts disagree on scenario
    /// fingerprint, label or sweep shape; [`RunError::MergeIncomplete`] if
    /// the union of records does not cover every
    /// `(system size, replication)` cell.
    pub fn merge(parts: &[PartialResult]) -> Result<ScenarioResult, RunError> {
        let first = parts
            .first()
            .ok_or_else(|| RunError::MergeMismatch("no partial results to merge".to_owned()))?;
        for p in &parts[1..] {
            if p.fingerprint != first.fingerprint {
                return Err(RunError::MergeMismatch(format!(
                    "scenario fingerprints differ ({:#x} vs {:#x})",
                    first.fingerprint, p.fingerprint
                )));
            }
            if p.label != first.label {
                return Err(RunError::MergeMismatch(format!(
                    "labels differ ({:?} vs {:?})",
                    first.label, p.label
                )));
            }
            if p.replications != first.replications || p.system_sizes != first.system_sizes {
                return Err(RunError::MergeMismatch(
                    "sweep shapes (replications / system sizes) differ".to_owned(),
                ));
            }
        }

        let mut cells: BTreeMap<(usize, usize), ReplicationRecord> = BTreeMap::new();
        for part in parts {
            for r in &part.records {
                if r.replication < first.replications && first.system_sizes.contains(&r.system_size)
                {
                    cells.entry((r.system_size, r.replication)).or_insert(*r);
                }
            }
        }
        fold_records(
            first.label.clone(),
            &first.system_sizes,
            first.replications,
            &cells,
            None,
        )
    }
}

/// Builds the full sweep's points (in sweep order) from completed cells,
/// verifying coverage. `events` receives one `Point` event per size when
/// given.
fn fold_records(
    label: String,
    system_sizes: &[usize],
    replications: usize,
    cells: &BTreeMap<(usize, usize), ReplicationRecord>,
    events: Option<&EventScope>,
) -> Result<ScenarioResult, RunError> {
    let mut unique_sizes: Vec<usize> = system_sizes.to_vec();
    unique_sizes.sort_unstable();
    unique_sizes.dedup();
    let missing = unique_sizes.len() * replications
        - cells
            .keys()
            .filter(|(s, r)| unique_sizes.contains(s) && *r < replications)
            .count();
    if missing > 0 {
        return Err(RunError::MergeIncomplete { missing });
    }

    let mut points = Vec::with_capacity(system_sizes.len());
    for &size in system_sizes {
        let records: Vec<ReplicationRecord> =
            (0..replications).map(|rep| cells[&(size, rep)]).collect();
        let point = ScenarioPoint::from_records(size, &records);
        if point.violations > 0 {
            tracing::warn!(
                scenario = %label,
                system_size = size,
                violations = point.violations,
                "structural violations detected"
            );
        }
        tracing::debug!(
            scenario = %label,
            system_size = size,
            mean_max_lateness = point.max_lateness.mean,
            feasible_fraction = point.feasible_fraction,
            "scenario point complete"
        );
        if let Some(scope) = events {
            scope.emit(|| RunEvent::Point {
                scenario: label.clone(),
                system_size: size,
                mean_max_lateness: point.max_lateness.mean,
                feasible_fraction: point.feasible_fraction,
                violations: point.violations,
            });
        }
        points.push(point);
    }
    Ok(ScenarioResult { label, points })
}

/// Where a run's events go: its own sink if one was configured with
/// [`Runner::events`], else the process-global stream.
#[derive(Debug, Clone, Default)]
struct EventScope(Option<Arc<EventSink>>);

impl EventScope {
    fn emit(&self, f: impl FnOnce() -> RunEvent) {
        match &self.0 {
            Some(sink) => sink.emit(&f()),
            None => telemetry::emit_with(f),
        }
    }

    fn flush(&self) {
        if let Some(sink) = &self.0 {
            sink.flush();
        }
    }
}

/// Maximum fresh sub-streams tried when a workload draw is rejected.
const MAX_GENERATE_ATTEMPTS: u64 = 8;

/// Fingerprint of everything that influences a scenario's measurements:
/// workload, technique, platform family, scheduler and base seed — but not
/// the label or the sweep shape, so a checkpoint stays valid when the user
/// extends `replications` or `system_sizes`.
fn fingerprint(scenario: &Scenario) -> u64 {
    let mut canonical = scenario.clone();
    canonical.label = String::new();
    canonical.replications = 0;
    canonical.system_sizes = Vec::new();
    let json = serde_json::to_string(&canonical).expect("scenario serializes");
    stream_label(json.as_bytes())
}

/// The workload's seed-stream coordinate: a stable hash of the workload
/// *source* only. Deliberately independent of the technique, so competing
/// techniques draw identical graphs (the paper's paired comparison).
fn workload_stream(workload: &WorkloadSource) -> u64 {
    let json = serde_json::to_string(workload).expect("workload serializes");
    stream_label(json.as_bytes())
}

/// Generates the workload for replication `rep`, retrying rejected draws
/// on fresh sub-streams a bounded number of times.
///
/// Seeds depend only on `(base_seed, workload stream, rep)` — not on the
/// technique or the system size — so different techniques and sizes see
/// the same graphs (paired comparison), and any replication is computable
/// in isolation.
fn workload(scenario: &Scenario, stream: u64, rep: usize) -> Result<TaskGraph, RunError> {
    let seed = stream_seed(scenario.base_seed, stream, 0, rep as u64);
    let mut last = None;
    for attempt in 0..MAX_GENERATE_ATTEMPTS {
        let attempt_seed = sub_stream(seed, attempt);
        let result = match &scenario.workload {
            WorkloadSource::Random(spec) => generate_seeded(spec, attempt_seed),
            WorkloadSource::Shaped { shape, spec } => {
                generate_shape_seeded(*shape, spec, attempt_seed)
            }
        };
        match result {
            Ok(graph) => return Ok(graph),
            // An invalid spec is deterministic: retrying cannot help.
            Err(e @ GenerateError::InvalidSpec(_)) => return Err(e.into()),
            Err(e) => {
                tracing::warn!(
                    replication = rep,
                    attempt = attempt,
                    "workload draw rejected: {e}; retrying on a fresh sub-stream"
                );
                last = Some(e);
            }
        }
    }
    Err(RunError::GenerateRejected {
        replication: rep,
        attempts: MAX_GENERATE_ATTEMPTS as usize,
        last: last.expect("at least one attempt was made"),
    })
}

/// Runs one full pipeline: distribute deadlines, schedule, measure.
fn run_once(
    scenario: &Scenario,
    graph: &TaskGraph,
    platform: &Platform,
    rep: usize,
    events: &EventScope,
) -> Result<ReplicationRecord, RunError> {
    let distribute_started = Instant::now();
    let assignment = match &scenario.technique {
        Technique::Slicing { metric, estimate } => Slicer::new(*metric)
            .with_estimate(estimate.clone())
            .distribute(graph, platform)?,
        Technique::Baseline(strategy) => distribute_baseline(graph, *strategy),
    };
    // Baselines produce deliberately overlapping windows, so structural
    // window validation only applies to the slicing techniques.
    let mut violations = match &scenario.technique {
        Technique::Slicing { .. } => assignment.validate(graph).violations().len(),
        Technique::Baseline(_) => 0,
    };
    let distribute_elapsed = distribute_started.elapsed();

    let pinning = scenario.pinning.build(graph, platform)?;
    let scheduler = ListScheduler::new()
        .with_respect_release(scenario.scheduler.respect_release)
        .with_bus_model(scenario.scheduler.bus_model)
        .with_placement(scenario.scheduler.placement);
    let schedule_started = Instant::now();
    let schedule = scheduler.schedule(graph, platform, &assignment, &pinning)?;
    violations += schedule
        .validate(
            graph,
            platform,
            &pinning,
            scenario.scheduler.bus_model == sched::BusModel::Contention,
        )
        .len();
    let schedule_elapsed = schedule_started.elapsed();

    let report = LatenessReport::new(graph, &assignment, &schedule);
    let record = ReplicationRecord {
        system_size: platform.processor_count(),
        replication: rep,
        max_lateness: report.max_lateness().as_f64(),
        end_to_end: report.end_to_end_lateness().as_f64(),
        makespan: report.makespan().as_f64(),
        feasible: report.is_feasible(),
        violations,
    };

    let registry = telemetry::global();
    registry.record_stage(Stage::Distribute, distribute_elapsed);
    registry.record_stage(Stage::Schedule, schedule_elapsed);
    registry.count_schedule(record.feasible, violations);
    events.emit(|| RunEvent::Replication {
        scenario: scenario.label.clone(),
        system_size: platform.processor_count(),
        replication: rep,
        distribute_us: distribute_elapsed.as_micros() as u64,
        schedule_us: schedule_elapsed.as_micros() as u64,
        feasible: record.feasible,
        violations,
        max_lateness: record.max_lateness,
    });
    Ok(record)
}

/// One line of a `checkpoint.jsonl` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum CheckpointLine {
    /// First line: identifies the scenario the records belong to.
    Header {
        /// Scenario fingerprint (see [`fingerprint`]).
        fingerprint: u64,
        /// Scenario label, for human readers of the file.
        label: String,
        /// Base seed, for human readers of the file.
        base_seed: u64,
    },
    /// One completed replication.
    Record(ReplicationRecord),
}

/// An append-only, crash-tolerant JSONL checkpoint.
struct CheckpointWriter {
    writer: Mutex<BufWriter<File>>,
}

impl CheckpointWriter {
    /// Appends one record and flushes it to the OS, so a killed process
    /// loses at most the replication in flight.
    fn append(&self, record: &ReplicationRecord) -> Result<(), RunError> {
        let line =
            serde_json::to_string(&CheckpointLine::Record(*record)).expect("plain data serializes");
        let mut writer = self.writer.lock().expect("checkpoint writer poisoned");
        writeln!(writer, "{line}")?;
        writer.flush()?;
        Ok(())
    }
}

/// Opens (or creates) the checkpoint at `path`, loading completed records
/// into `cells`. Records of cells outside the current sweep are left in
/// the file but ignored; unparseable non-header lines (torn writes from a
/// killed process) are skipped with a warning.
fn open_checkpoint(
    path: &Path,
    scenario: &Scenario,
    fp: u64,
    cells: &mut BTreeMap<(usize, usize), ReplicationRecord>,
    events: &EventScope,
) -> Result<CheckpointWriter, RunError> {
    let existing = match File::open(path) {
        Ok(file) => {
            let mut lines = BufReader::new(file).lines();
            match lines.next() {
                None => false, // created but never written: treat as fresh
                Some(first) => {
                    let first = first?;
                    match serde_json::from_str::<CheckpointLine>(&first) {
                        Ok(CheckpointLine::Header { fingerprint, .. }) if fingerprint == fp => {}
                        Ok(CheckpointLine::Header { .. }) => {
                            return Err(RunError::CheckpointMismatch {
                                path: path.to_path_buf(),
                            });
                        }
                        _ => {
                            return Err(RunError::CheckpointCorrupt {
                                path: path.to_path_buf(),
                                detail: "first line is not a checkpoint header".to_owned(),
                            });
                        }
                    }
                    let mut loaded = 0usize;
                    for line in lines {
                        let line = line?;
                        match serde_json::from_str::<CheckpointLine>(&line) {
                            Ok(CheckpointLine::Record(r)) => {
                                if r.replication < scenario.replications
                                    && scenario.system_sizes.contains(&r.system_size)
                                {
                                    cells.entry((r.system_size, r.replication)).or_insert(r);
                                    loaded += 1;
                                }
                            }
                            Ok(CheckpointLine::Header { .. }) | Err(_) => {
                                tracing::warn!(
                                    path = %path.display(),
                                    "skipping unparseable checkpoint line (torn write?)"
                                );
                            }
                        }
                    }
                    tracing::info!(
                        path = %path.display(),
                        records = loaded,
                        "resuming from checkpoint"
                    );
                    events.emit(|| RunEvent::CheckpointLoaded {
                        path: path.display().to_string(),
                        records: loaded,
                    });
                    true
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
        Err(e) => return Err(e.into()),
    };

    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let writer = CheckpointWriter {
        writer: Mutex::new(BufWriter::new(file)),
    };
    if !existing {
        let header = serde_json::to_string(&CheckpointLine::Header {
            fingerprint: fp,
            label: scenario.label.clone(),
            base_seed: scenario.base_seed,
        })
        .expect("plain data serializes");
        let mut w = writer.writer.lock().expect("checkpoint writer poisoned");
        writeln!(w, "{header}")?;
        w.flush()?;
        drop(w);
    }
    Ok(writer)
}

/// Splits `items` into at most `threads` contiguous chunks and runs
/// `work` on each chunk in a scoped worker thread, collecting the chunk
/// results in order. Worker panics surface as
/// [`RunError::WorkerPanic`]`(stage)`.
fn fan_out<T, R, F>(
    items: &[T],
    threads: usize,
    stage: &'static str,
    work: F,
) -> Result<Vec<R>, RunError>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return Ok(vec![work(items)]);
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let work = &work;
                scope.spawn(move || work(c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| RunError::WorkerPanic(stage)))
            .collect()
    })
}

/// The sharded, resumable experiment engine: builds and executes one
/// scenario sweep.
///
/// # Examples
///
/// A plain (monolithic) run:
///
/// ```
/// use feast::{Runner, Scenario};
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), feast::RunError> {
/// let scenario = Scenario::paper(
///     "PURE/CCNE",
///     WorkloadSpec::paper(ExecVariation::Mdet),
///     MetricKind::pure(),
///     CommEstimate::Ccne,
/// )
/// .with_replications(4)
/// .with_system_sizes(vec![2]);
/// let result = Runner::new(scenario).threads(1).run()?;
/// assert_eq!(result.points.len(), 1);
/// # Ok(())
/// # }
/// ```
///
/// A two-shard run folded back together (each `run_partial` could execute
/// on a different machine):
///
/// ```
/// use feast::{PartialResult, Runner, Scenario, ShardSpec};
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), feast::RunError> {
/// let scenario = Scenario::paper(
///     "PURE/CCNE",
///     WorkloadSpec::paper(ExecVariation::Mdet),
///     MetricKind::pure(),
///     CommEstimate::Ccne,
/// )
/// .with_replications(4)
/// .with_system_sizes(vec![2]);
/// let parts: Vec<PartialResult> = (0..2)
///     .map(|i| {
///         Runner::new(scenario.clone())
///             .threads(1)
///             .shard(ShardSpec::new(i, 2))
///             .run_partial()
///     })
///     .collect::<Result<_, _>>()?;
/// let merged = PartialResult::merge(&parts)?;
/// let monolithic = Runner::new(scenario).threads(1).run()?;
/// assert_eq!(merged, monolithic); // bit-identical f64 statistics
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Runner {
    scenario: Scenario,
    threads: usize,
    shard: ShardSpec,
    checkpoint: Option<PathBuf>,
    events: EventScope,
    cancel: CancelToken,
}

impl Runner {
    /// A runner for `scenario` with default settings: all cores, no shard,
    /// no checkpoint, events to the process-global stream.
    pub fn new(scenario: Scenario) -> Runner {
        Runner {
            scenario,
            threads: 0,
            shard: ShardSpec::FULL,
            checkpoint: None,
            events: EventScope::default(),
            cancel: CancelToken::new(),
        }
    }

    /// Sets the worker-thread count (`0` = all available cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Runner {
        self.threads = threads;
        self
    }

    /// Restricts this runner to one shard of the replication indices.
    #[must_use]
    pub fn shard(mut self, shard: ShardSpec) -> Runner {
        self.shard = shard;
        self
    }

    /// Checkpoints completed replications to (and resumes them from) the
    /// JSONL file at `path`.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Runner {
        self.checkpoint = Some(path.into());
        self
    }

    /// Streams this run's events to `sink` instead of the process-global
    /// stream — shard workers can keep separate event files.
    #[must_use]
    pub fn events(mut self, sink: EventSink) -> Runner {
        self.events = EventScope(Some(Arc::new(sink)));
        self
    }

    /// A clone of this runner's cancellation token. Cancel it from any
    /// thread to stop the run at the next replication boundary.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs the full sweep and aggregates every system size.
    ///
    /// # Errors
    ///
    /// [`RunError::ShardedRun`] if a multi-shard [`ShardSpec`] is
    /// configured (use [`Runner::run_partial`] + [`PartialResult::merge`]);
    /// otherwise any engine error (validation, generation, scheduling,
    /// checkpoint, cancellation, I/O).
    pub fn run(self) -> Result<ScenarioResult, RunError> {
        self.shard.validate()?;
        if !self.shard.is_full() {
            return Err(RunError::ShardedRun {
                count: self.shard.count,
            });
        }
        let label = self.scenario.label.clone();
        let system_sizes = self.scenario.system_sizes.clone();
        let replications = self.scenario.replications;
        let events = self.events.clone();
        let partial = self.run_partial()?;
        let cells: BTreeMap<(usize, usize), ReplicationRecord> = partial
            .records
            .into_iter()
            .map(|r| ((r.system_size, r.replication), r))
            .collect();
        fold_records(label, &system_sizes, replications, &cells, Some(&events))
    }

    /// Runs this runner's shard of the sweep and returns its records.
    ///
    /// Honours the checkpoint (completed cells are loaded, not recomputed)
    /// and the cancellation token (checked between replications). The
    /// returned [`PartialResult`] contains every known record for the
    /// shard — freshly computed and resumed alike — sorted by
    /// `(system size, replication)`.
    ///
    /// # Errors
    ///
    /// Any engine error; see [`RunError`].
    pub fn run_partial(self) -> Result<PartialResult, RunError> {
        let Runner {
            scenario,
            threads,
            shard,
            checkpoint,
            events,
            cancel,
        } = self;
        scenario.validate()?;
        shard.validate()?;
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
        .min(scenario.replications.max(1));

        let _span = tracing::info_span!(
            "scenario",
            label = %scenario.label,
            replications = scenario.replications,
            threads = threads,
            shard_index = shard.index,
            shard_count = shard.count
        )
        .entered();

        let fp = fingerprint(&scenario);
        let stream = workload_stream(&scenario.workload);

        let mut cells: BTreeMap<(usize, usize), ReplicationRecord> = BTreeMap::new();
        let writer = match &checkpoint {
            Some(path) => Some(open_checkpoint(path, &scenario, fp, &mut cells, &events)?),
            None => None,
        };

        let owned: Vec<usize> = (0..scenario.replications)
            .filter(|&r| shard.owns(r))
            .collect();

        // Workloads are shared across system sizes: generate each needed
        // replication's graph once, fanning out over the worker threads.
        // Telemetry is emitted afterwards on the caller thread so
        // `GraphGenerated` events stay ordered by replication index.
        let needed: Vec<usize> = owned
            .iter()
            .copied()
            .filter(|&rep| {
                scenario
                    .system_sizes
                    .iter()
                    .any(|&size| !cells.contains_key(&(size, rep)))
            })
            .collect();
        type Generated = (usize, Result<(TaskGraph, std::time::Duration), RunError>);
        let generated: Vec<Vec<Generated>> =
            fan_out(&needed, threads, "generate", |chunk: &[usize]| {
                chunk
                    .iter()
                    .take_while(|_| !cancel.is_cancelled())
                    .map(|&rep| {
                        let started = Instant::now();
                        let graph = workload(&scenario, stream, rep);
                        (rep, graph.map(|g| (g, started.elapsed())))
                    })
                    .collect()
            })?;
        if cancel.is_cancelled() {
            events.flush();
            return Err(RunError::Cancelled);
        }
        let mut graphs: BTreeMap<usize, TaskGraph> = BTreeMap::new();
        for (rep, result) in generated.into_iter().flatten() {
            let (graph, elapsed) = result?;
            let registry = telemetry::global();
            registry.record_stage(Stage::Generate, elapsed);
            registry.count_graph();
            events.emit(|| RunEvent::GraphGenerated {
                replication: rep,
                subtasks: graph.subtask_count(),
                messages: graph.edge_count(),
                generate_us: elapsed.as_micros() as u64,
            });
            graphs.insert(rep, graph);
        }

        for &size in &scenario.system_sizes {
            let missing: Vec<usize> = owned
                .iter()
                .copied()
                .filter(|&rep| !cells.contains_key(&(size, rep)))
                .collect();
            if missing.is_empty() {
                continue;
            }
            if cancel.is_cancelled() {
                events.flush();
                return Err(RunError::Cancelled);
            }
            let _size_span = tracing::debug_span!("system_size", procs = size).entered();
            let topology = scenario.topology.build(size, scenario.cost_per_item);
            let platform = Platform::homogeneous(size, topology)?;

            let computed: Vec<Result<Vec<ReplicationRecord>, RunError>> =
                fan_out(&missing, threads, "schedule", |chunk: &[usize]| {
                    let mut out = Vec::with_capacity(chunk.len());
                    for &rep in chunk {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let graph = &graphs[&rep];
                        let record = run_once(&scenario, graph, &platform, rep, &events)?;
                        if let Some(w) = &writer {
                            w.append(&record)?;
                        }
                        out.push(record);
                    }
                    Ok(out)
                })?;
            for worker in computed {
                for record in worker? {
                    cells.insert((record.system_size, record.replication), record);
                }
            }
            if cancel.is_cancelled() {
                events.flush();
                return Err(RunError::Cancelled);
            }
        }

        events.flush();
        Ok(PartialResult {
            label: scenario.label.clone(),
            fingerprint: fp,
            replications: scenario.replications,
            system_sizes: scenario.system_sizes.clone(),
            shard,
            records: cells.into_values().collect(),
        })
    }
}

/// Runs a scenario sequentially (all sizes × all replications on the
/// calling thread).
#[deprecated(since = "0.2.0", note = "use `Runner::new(scenario).threads(1).run()`")]
pub fn run_scenario_sequential(scenario: &Scenario) -> Result<ScenarioResult, RunError> {
    Runner::new(scenario.clone()).threads(1).run()
}

/// Runs a scenario, parallelizing replications over the available cores.
///
/// # Errors
///
/// Propagates workload-generation, distribution, platform and scheduling
/// errors; the first error encountered aborts the run.
#[deprecated(since = "0.2.0", note = "use `Runner::new(scenario).run()`")]
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, RunError> {
    Runner::new(scenario.clone()).run()
}

/// Runs a scenario with an explicit worker-thread count.
///
/// # Errors
///
/// See [`Runner::run`].
#[deprecated(since = "0.2.0", note = "use `Runner::new(scenario).threads(n).run()`")]
pub fn run_scenario_with_threads(
    scenario: &Scenario,
    threads: usize,
) -> Result<ScenarioResult, RunError> {
    Runner::new(scenario.clone()).threads(threads.max(1)).run()
}

#[cfg(test)]
mod tests {
    use slicing::{CommEstimate, MetricKind};
    use taskgraph::gen::{ExecVariation, WorkloadSpec};

    use crate::ScenarioError;

    use super::*;

    fn tiny_scenario(metric: MetricKind) -> Scenario {
        Scenario::paper(
            "test",
            WorkloadSpec::paper(ExecVariation::Mdet),
            metric,
            CommEstimate::Ccne,
        )
        .with_replications(4)
        .with_system_sizes(vec![2, 8])
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let scenario = tiny_scenario(MetricKind::pure());
        let seq = Runner::new(scenario.clone()).threads(1).run().unwrap();
        let par = Runner::new(scenario).threads(4).run().unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn pipeline_produces_no_structural_violations() {
        for metric in [
            MetricKind::norm(),
            MetricKind::pure(),
            MetricKind::thres(1.0),
            MetricKind::adapt(),
        ] {
            let result = Runner::new(tiny_scenario(metric)).threads(1).run().unwrap();
            for p in &result.points {
                assert_eq!(p.violations, 0, "{} at n={}", result.label, p.system_size);
            }
        }
    }

    #[test]
    fn more_processors_do_not_hurt_lateness() {
        let result = Runner::new(tiny_scenario(MetricKind::pure()))
            .threads(1)
            .run()
            .unwrap();
        let series = result.lateness_series();
        assert_eq!(series.len(), 2);
        assert!(
            series[1].1 <= series[0].1 + 1e-9,
            "lateness should improve (or stay) from 2 to 8 processors: {series:?}"
        );
    }

    #[test]
    fn rejects_degenerate_scenarios_with_typed_errors() {
        let s = tiny_scenario(MetricKind::pure()).with_replications(0);
        assert!(matches!(
            Runner::new(s).run(),
            Err(RunError::Scenario(ScenarioError::NoReplications))
        ));
        let s = tiny_scenario(MetricKind::pure()).with_system_sizes(vec![]);
        assert!(matches!(
            Runner::new(s).run(),
            Err(RunError::Scenario(ScenarioError::NoSystemSizes))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let scenario = tiny_scenario(MetricKind::adapt());
        let a = Runner::new(scenario.clone()).threads(1).run().unwrap();
        let b = Runner::new(scenario).threads(1).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn deprecated_wrappers_still_run() {
        #[allow(deprecated)]
        let seq = run_scenario_sequential(&tiny_scenario(MetricKind::pure())).unwrap();
        let new = Runner::new(tiny_scenario(MetricKind::pure()))
            .threads(1)
            .run()
            .unwrap();
        assert_eq!(seq, new);
    }

    #[test]
    fn shard_spec_partitions_and_validates() {
        let shards: Vec<ShardSpec> = (0..3).map(|i| ShardSpec::new(i, 3)).collect();
        for rep in 0..20 {
            let owners = shards.iter().filter(|s| s.owns(rep)).count();
            assert_eq!(owners, 1, "replication {rep} must have exactly one owner");
        }
        assert!(ShardSpec::new(0, 1).validate().is_ok());
        assert!(ShardSpec::FULL.is_full());
        assert!(matches!(
            ShardSpec::new(2, 2).validate(),
            Err(RunError::InvalidShard { index: 2, count: 2 })
        ));
        assert!(matches!(
            ShardSpec::new(0, 0).validate(),
            Err(RunError::InvalidShard { .. })
        ));
    }

    #[test]
    fn run_on_sharded_runner_is_a_typed_error() {
        let runner = Runner::new(tiny_scenario(MetricKind::pure())).shard(ShardSpec::new(0, 2));
        assert!(matches!(
            runner.run(),
            Err(RunError::ShardedRun { count: 2 })
        ));
    }

    #[test]
    fn cancel_token_stops_the_run() {
        let runner = Runner::new(tiny_scenario(MetricKind::pure())).threads(1);
        let token = runner.cancel_token();
        token.cancel();
        assert!(matches!(runner.run(), Err(RunError::Cancelled)));
    }

    #[test]
    fn fingerprint_ignores_label_and_sweep_shape() {
        let a = tiny_scenario(MetricKind::pure());
        let mut b = a.clone().with_replications(99).with_system_sizes(vec![4]);
        b.label = "renamed".to_owned();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = a.clone().with_base_seed(1);
        assert_ne!(fingerprint(&a), fingerprint(&c));
        let d = tiny_scenario(MetricKind::adapt());
        assert_ne!(fingerprint(&a), fingerprint(&d));
    }

    #[test]
    fn workload_stream_is_technique_independent() {
        let pure = tiny_scenario(MetricKind::pure());
        let adapt = tiny_scenario(MetricKind::adapt());
        assert_eq!(
            workload_stream(&pure.workload),
            workload_stream(&adapt.workload)
        );
        let other = pure.with_workload(WorkloadSource::Random(WorkloadSpec::paper(
            ExecVariation::Hdet,
        )));
        assert_ne!(
            workload_stream(&tiny_scenario(MetricKind::pure()).workload),
            workload_stream(&other.workload)
        );
    }
}
