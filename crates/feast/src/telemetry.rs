//! Run-wide pipeline metrics and the machine-readable run-event stream.
//!
//! Two complementary mechanisms:
//!
//! * a process-global [`Registry`] of lock-free counters and log-scale
//!   duration histograms, fed by the runner for every pipeline stage
//!   (generate → distribute → schedule) and summarized by
//!   [`Registry::snapshot`];
//! * an optional [`EventSink`] writing one JSON object per line
//!   (`events.jsonl`): install it with [`install`] and every replication
//!   the runner executes is recorded as a [`RunEvent`] with its per-stage
//!   timings and feasibility outcome.
//!
//! Both are no-ops by default: with no sink installed [`emit_with`] never
//! even constructs the event, and the registry is a handful of relaxed
//! atomic increments per replication.

use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// The pipeline stages measured by the [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Random task-graph generation.
    Generate,
    /// Deadline distribution (slicing or a baseline).
    Distribute,
    /// Incremental re-slicing after a graph delta
    /// ([`Slicer::redistribute`](slicing::Slicer::redistribute)).
    Redistribute,
    /// List scheduling.
    Schedule,
    /// The always-on audit (assignment checker plus schedule validation),
    /// timed separately from the stages it checks.
    Audit,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Generate,
        Stage::Distribute,
        Stage::Redistribute,
        Stage::Schedule,
        Stage::Audit,
    ];

    /// The stage's snake_case label, as used in event fields.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::Distribute => "distribute",
            Stage::Redistribute => "redistribute",
            Stage::Schedule => "schedule",
            Stage::Audit => "audit",
        }
    }
}

/// Number of power-of-two histogram buckets; bucket `i` counts durations
/// with `floor(log2(µs)) == i - 1` (bucket 0 is `< 1 µs`), so the top
/// bucket covers everything from ~35 minutes up.
const BUCKETS: usize = 32;

/// A lock-free histogram of wall-clock durations with power-of-two
/// microsecond buckets.
#[derive(Debug)]
pub struct DurationHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl DurationHistogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn total(&self) -> Duration {
        Duration::from_micros(self.total_us.load(Ordering::Relaxed))
    }

    /// Mean observation (zero when empty).
    pub fn mean(&self) -> Duration {
        let total = self.total_us.load(Ordering::Relaxed);
        total
            .checked_div(self.count())
            .map_or(Duration::ZERO, Duration::from_micros)
    }

    /// The `p`-th percentile observation (`0.0 < p <= 1.0`), estimated from
    /// the log2 buckets by nearest rank; exact to within one power-of-two
    /// bucket of the true order statistic (zero when empty).
    pub fn percentile(&self, p: f64) -> Duration {
        let snap = self.snapshot();
        Duration::from_micros(percentile_from_buckets(
            snap.count,
            snap.max_us,
            &snap.buckets,
            p,
        ))
    }

    /// An immutable copy of the histogram's state.
    pub fn snapshot(&self) -> StageSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then(|| (upper_bound_us(i), count))
            })
            .collect();
        StageSnapshot::from_parts(
            self.count(),
            self.total_us.load(Ordering::Relaxed),
            self.max_us.load(Ordering::Relaxed),
            buckets,
        )
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_us.store(0, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
    }
}

/// Exclusive upper bound (µs) of histogram bucket `i`.
fn upper_bound_us(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Nearest-rank percentile over sparse `(exclusive upper bound µs, count)`
/// buckets: walks the cumulative counts to the bucket holding rank
/// `ceil(p · count)` and reports that bucket's largest representable value,
/// clamped to the recorded maximum so the estimate always lies inside the
/// selected bucket. Exact to within one log2 bucket of the true order
/// statistic; zero when empty.
fn percentile_from_buckets(count: u64, max_us: u64, buckets: &[(u64, u64)], p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for &(upper, n) in buckets {
        seen += n;
        if seen >= rank {
            return max_us.min(upper.saturating_sub(1));
        }
    }
    max_us
}

/// Exact nearest-rank percentile of a **sorted** slice: the reference the
/// histogram estimate is property-tested against. Returns the element at
/// rank `ceil(p · len)` (1-based); zero when empty.
pub fn percentile_reference(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Merges two sorted sparse bucket lists by summing counts per bound.
fn merge_buckets(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(ub, n)), None) => {
                out.push((ub, n));
                i += 1;
            }
            (None, Some(&(ub, n))) => {
                out.push((ub, n));
                j += 1;
            }
            (Some(&(ua, na)), Some(&(ub, nb))) => {
                if ua == ub {
                    out.push((ua, na + nb));
                    i += 1;
                    j += 1;
                } else if ua < ub {
                    out.push((ua, na));
                    i += 1;
                } else {
                    out.push((ub, nb));
                    j += 1;
                }
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

/// Aggregated pipeline metrics: counters plus one duration histogram per
/// [`Stage`].
#[derive(Debug, Default)]
pub struct Registry {
    graphs_generated: AtomicU64,
    schedules_built: AtomicU64,
    feasibility_failures: AtomicU64,
    structural_violations: AtomicU64,
    window_violations: AtomicU64,
    schedule_violations: AtomicU64,
    replications_failed: AtomicU64,
    checkpoint_retries: AtomicU64,
    delta_cache_hits: AtomicU64,
    delta_cache_misses: AtomicU64,
    delta_dirty_nodes: AtomicU64,
    delta_scanned_nodes: AtomicU64,
    admissions_admitted: AtomicU64,
    admissions_rejected: AtomicU64,
    admissions_shed: AtomicU64,
    admissions_worker_failed: AtomicU64,
    admissions_evicted: AtomicU64,
    admissions_prefiltered: AtomicU64,
    admissions_structural_fallbacks: AtomicU64,
    slice_cache_hits: AtomicU64,
    slice_cache_misses: AtomicU64,
    slice_cache_evictions: AtomicU64,
    admission_log_retries: AtomicU64,
    admission_log_failures: AtomicU64,
    admission: DurationHistogram,
    admission_sojourn: DurationHistogram,
    generate: DurationHistogram,
    distribute: DurationHistogram,
    redistribute: DurationHistogram,
    schedule: DurationHistogram,
    audit: DurationHistogram,
}

impl Registry {
    /// The stage's histogram.
    pub fn stage(&self, stage: Stage) -> &DurationHistogram {
        match stage {
            Stage::Generate => &self.generate,
            Stage::Distribute => &self.distribute,
            Stage::Redistribute => &self.redistribute,
            Stage::Schedule => &self.schedule,
            Stage::Audit => &self.audit,
        }
    }

    /// Records a stage's wall-clock time.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.stage(stage).record(elapsed);
    }

    /// Counts one generated task graph.
    pub fn count_graph(&self) {
        self.graphs_generated.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one completed schedule, its feasibility outcome and any
    /// structural violations found by validation.
    pub fn count_schedule(&self, feasible: bool, violations: usize) {
        self.schedules_built.fetch_add(1, Ordering::Relaxed);
        if !feasible {
            self.feasibility_failures.fetch_add(1, Ordering::Relaxed);
        }
        self.structural_violations
            .fetch_add(violations as u64, Ordering::Relaxed);
    }

    /// Counts one replication's audit outcome, split into deadline-window
    /// violations (the assignment checker) and schedule violations
    /// ([`Schedule::validate`]). The split sums to the total recorded by
    /// [`Registry::count_schedule`].
    ///
    /// [`Schedule::validate`]: sched::Schedule::validate
    pub fn count_audit(&self, window: usize, schedule: usize) {
        self.window_violations
            .fetch_add(window as u64, Ordering::Relaxed);
        self.schedule_violations
            .fetch_add(schedule as u64, Ordering::Relaxed);
    }

    /// Counts one replication that degraded to a failed outcome (excluded
    /// from statistics instead of aborting the sweep).
    pub fn count_failed_replication(&self) {
        self.replications_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one retried checkpoint append (transient I/O failure).
    pub fn count_checkpoint_retry(&self) {
        self.checkpoint_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates one incremental redistribution's cache-effectiveness
    /// counters ([`slicing::RedistributeStats`]).
    pub fn count_redistribute(&self, stats: &slicing::RedistributeStats) {
        self.delta_cache_hits
            .fetch_add(stats.cache_hits, Ordering::Relaxed);
        self.delta_cache_misses
            .fetch_add(stats.cache_misses, Ordering::Relaxed);
        self.delta_dirty_nodes
            .fetch_add(stats.dirty_nodes, Ordering::Relaxed);
        self.delta_scanned_nodes
            .fetch_add(stats.scanned_nodes, Ordering::Relaxed);
    }

    /// Records one admission decision and the service time spent deciding
    /// it (the trial-schedule + commit/discard critical section).
    pub fn record_admission(&self, admitted: bool, elapsed: Duration) {
        if admitted {
            self.admissions_admitted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.admissions_rejected.fetch_add(1, Ordering::Relaxed);
        }
        self.admission.record(elapsed);
    }

    /// Admission requests answered with an admit verdict.
    pub fn admissions_admitted(&self) -> u64 {
        self.admissions_admitted.load(Ordering::Relaxed)
    }

    /// Admission requests answered with a reject verdict.
    pub fn admissions_rejected(&self) -> u64 {
        self.admissions_rejected.load(Ordering::Relaxed)
    }

    /// The admission-decision service-time histogram.
    pub fn admission(&self) -> &DurationHistogram {
        &self.admission
    }

    /// Counts one request shed for out-waiting its decision budget.
    pub fn count_admission_shed(&self) {
        self.admissions_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request degraded to a `WorkerFailed` verdict by a
    /// slicer-worker panic.
    pub fn count_admission_worker_failed(&self) {
        self.admissions_worker_failed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one resident evicted by the capacity bound's eviction
    /// policy (retirement at the horizon is not an eviction).
    pub fn count_admission_evicted(&self) {
        self.admissions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one admission refused by the feasibility pre-filter before
    /// any slicing work.
    pub fn count_admission_prefiltered(&self) {
        self.admissions_prefiltered.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one slicing run answered from the cross-request slice
    /// cache.
    pub fn count_slice_cache_hit(&self) {
        self.slice_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one slicing run that missed the cross-request slice cache
    /// and ran the DP live.
    pub fn count_slice_cache_miss(&self) {
        self.slice_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one entry evicted from the cross-request slice cache by
    /// its LRU bound.
    pub fn count_slice_cache_eviction(&self) {
        self.slice_cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one structural amendment that fell back to a full rebuild
    /// and re-trial instead of the schedule-repair fast path.
    pub fn count_admission_structural_fallback(&self) {
        self.admissions_structural_fallbacks
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one retried admission-WAL append (transient I/O failure).
    pub fn count_admission_log_retry(&self) {
        self.admission_log_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one admission-WAL append that failed past every retry (the
    /// verdict was still returned; durability for that record is lost).
    pub fn count_admission_log_failure(&self) {
        self.admission_log_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one non-shed request's queue sojourn: submission to
    /// decision, including queue wait and slicing.
    pub fn record_admission_sojourn(&self, elapsed: Duration) {
        self.admission_sojourn.record(elapsed);
    }

    /// Requests shed for out-waiting their decision budget.
    pub fn admissions_shed(&self) -> u64 {
        self.admissions_shed.load(Ordering::Relaxed)
    }

    /// Requests degraded to `WorkerFailed` verdicts by worker panics.
    pub fn admissions_worker_failed(&self) -> u64 {
        self.admissions_worker_failed.load(Ordering::Relaxed)
    }

    /// Residents evicted by the capacity bound's eviction policy.
    pub fn admissions_evicted(&self) -> u64 {
        self.admissions_evicted.load(Ordering::Relaxed)
    }

    /// Admissions refused by the feasibility pre-filter.
    pub fn admissions_prefiltered(&self) -> u64 {
        self.admissions_prefiltered.load(Ordering::Relaxed)
    }

    /// Slicing runs answered from the cross-request slice cache.
    pub fn slice_cache_hits(&self) -> u64 {
        self.slice_cache_hits.load(Ordering::Relaxed)
    }

    /// Slicing runs that missed the cross-request slice cache.
    pub fn slice_cache_misses(&self) -> u64 {
        self.slice_cache_misses.load(Ordering::Relaxed)
    }

    /// Entries evicted from the cross-request slice cache.
    pub fn slice_cache_evictions(&self) -> u64 {
        self.slice_cache_evictions.load(Ordering::Relaxed)
    }

    /// Structural amendments that fell back to full rebuild + re-trial.
    pub fn admissions_structural_fallbacks(&self) -> u64 {
        self.admissions_structural_fallbacks.load(Ordering::Relaxed)
    }

    /// Admission-WAL appends that had to be retried.
    pub fn admission_log_retries(&self) -> u64 {
        self.admission_log_retries.load(Ordering::Relaxed)
    }

    /// Admission-WAL appends that failed past every retry.
    pub fn admission_log_failures(&self) -> u64 {
        self.admission_log_failures.load(Ordering::Relaxed)
    }

    /// The submission-to-decision sojourn histogram (non-shed requests).
    pub fn admission_sojourn(&self) -> &DurationHistogram {
        &self.admission_sojourn
    }

    /// Number of graphs generated so far.
    pub fn graphs_generated(&self) -> u64 {
        self.graphs_generated.load(Ordering::Relaxed)
    }

    /// Number of schedules built so far.
    pub fn schedules_built(&self) -> u64 {
        self.schedules_built.load(Ordering::Relaxed)
    }

    /// Number of schedules that missed at least one assigned deadline.
    pub fn feasibility_failures(&self) -> u64 {
        self.feasibility_failures.load(Ordering::Relaxed)
    }

    /// Total structural violations across all replications.
    pub fn structural_violations(&self) -> u64 {
        self.structural_violations.load(Ordering::Relaxed)
    }

    /// Deadline-window violations found by the assignment audit.
    pub fn window_violations(&self) -> u64 {
        self.window_violations.load(Ordering::Relaxed)
    }

    /// Schedule violations found by [`Schedule::validate`].
    ///
    /// [`Schedule::validate`]: sched::Schedule::validate
    pub fn schedule_violations(&self) -> u64 {
        self.schedule_violations.load(Ordering::Relaxed)
    }

    /// Replications degraded to failed outcomes.
    pub fn replications_failed(&self) -> u64 {
        self.replications_failed.load(Ordering::Relaxed)
    }

    /// Checkpoint appends that had to be retried.
    pub fn checkpoint_retries(&self) -> u64 {
        self.checkpoint_retries.load(Ordering::Relaxed)
    }

    /// Per-start path searches answered from the delta cache.
    pub fn delta_cache_hits(&self) -> u64 {
        self.delta_cache_hits.load(Ordering::Relaxed)
    }

    /// Per-start path searches that ran the DP live during redistribution.
    pub fn delta_cache_misses(&self) -> u64 {
        self.delta_cache_misses.load(Ordering::Relaxed)
    }

    /// Dirty (node, iteration) pairs seen by redistributions.
    pub fn delta_dirty_nodes(&self) -> u64 {
        self.delta_dirty_nodes.load(Ordering::Relaxed)
    }

    /// Scanned (node, iteration) pairs — the denominator of
    /// [`delta_dirty_frac`](Registry::delta_dirty_frac).
    pub fn delta_scanned_nodes(&self) -> u64 {
        self.delta_scanned_nodes.load(Ordering::Relaxed)
    }

    /// Fraction of scanned per-iteration node states that were dirty
    /// across all redistributions (zero when none ran).
    pub fn delta_dirty_frac(&self) -> f64 {
        let scanned = self.delta_scanned_nodes();
        if scanned == 0 {
            0.0
        } else {
            self.delta_dirty_nodes() as f64 / scanned as f64
        }
    }

    /// An immutable, serializable copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            graphs_generated: self.graphs_generated(),
            schedules_built: self.schedules_built(),
            feasibility_failures: self.feasibility_failures(),
            structural_violations: self.structural_violations(),
            window_violations: self.window_violations(),
            schedule_violations: self.schedule_violations(),
            replications_failed: self.replications_failed(),
            checkpoint_retries: self.checkpoint_retries(),
            delta_cache_hits: self.delta_cache_hits(),
            delta_cache_misses: self.delta_cache_misses(),
            delta_dirty_nodes: self.delta_dirty_nodes(),
            delta_scanned_nodes: self.delta_scanned_nodes(),
            admissions_admitted: self.admissions_admitted(),
            admissions_rejected: self.admissions_rejected(),
            admissions_shed: self.admissions_shed(),
            admissions_worker_failed: self.admissions_worker_failed(),
            admissions_evicted: self.admissions_evicted(),
            admissions_prefiltered: self.admissions_prefiltered(),
            admissions_structural_fallbacks: self.admissions_structural_fallbacks(),
            slice_cache_hits: self.slice_cache_hits(),
            slice_cache_misses: self.slice_cache_misses(),
            slice_cache_evictions: self.slice_cache_evictions(),
            admission_log_retries: self.admission_log_retries(),
            admission_log_failures: self.admission_log_failures(),
            admission: self.admission.snapshot(),
            admission_sojourn: self.admission_sojourn.snapshot(),
            generate: self.generate.snapshot(),
            distribute: self.distribute.snapshot(),
            redistribute: self.redistribute.snapshot(),
            schedule: self.schedule.snapshot(),
            audit: self.audit.snapshot(),
        }
    }

    /// Zeroes every counter and histogram (for tests and repeated runs).
    pub fn reset(&self) {
        self.graphs_generated.store(0, Ordering::Relaxed);
        self.schedules_built.store(0, Ordering::Relaxed);
        self.feasibility_failures.store(0, Ordering::Relaxed);
        self.structural_violations.store(0, Ordering::Relaxed);
        self.window_violations.store(0, Ordering::Relaxed);
        self.schedule_violations.store(0, Ordering::Relaxed);
        self.replications_failed.store(0, Ordering::Relaxed);
        self.checkpoint_retries.store(0, Ordering::Relaxed);
        self.delta_cache_hits.store(0, Ordering::Relaxed);
        self.delta_cache_misses.store(0, Ordering::Relaxed);
        self.delta_dirty_nodes.store(0, Ordering::Relaxed);
        self.delta_scanned_nodes.store(0, Ordering::Relaxed);
        self.admissions_admitted.store(0, Ordering::Relaxed);
        self.admissions_rejected.store(0, Ordering::Relaxed);
        self.admissions_shed.store(0, Ordering::Relaxed);
        self.admissions_worker_failed.store(0, Ordering::Relaxed);
        self.admissions_evicted.store(0, Ordering::Relaxed);
        self.admissions_prefiltered.store(0, Ordering::Relaxed);
        self.admissions_structural_fallbacks
            .store(0, Ordering::Relaxed);
        self.slice_cache_hits.store(0, Ordering::Relaxed);
        self.slice_cache_misses.store(0, Ordering::Relaxed);
        self.slice_cache_evictions.store(0, Ordering::Relaxed);
        self.admission_log_retries.store(0, Ordering::Relaxed);
        self.admission_log_failures.store(0, Ordering::Relaxed);
        self.admission.reset();
        self.admission_sojourn.reset();
        self.generate.reset();
        self.distribute.reset();
        self.redistribute.reset();
        self.schedule.reset();
        self.audit.reset();
    }
}

/// The process-global registry the runner feeds.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Serializable copy of one stage's histogram. The default value is an
/// empty histogram (it also backs deserialization of snapshots written
/// before a stage existed).
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub total_us: u64,
    /// Mean observation, µs.
    pub mean_us: u64,
    /// Median observation, µs (nearest rank, within one log2 bucket).
    pub p50_us: u64,
    /// 90th-percentile observation, µs (within one log2 bucket).
    pub p90_us: u64,
    /// 99th-percentile observation, µs (within one log2 bucket).
    pub p99_us: u64,
    /// Largest observation, µs.
    pub max_us: u64,
    /// Non-empty `(exclusive upper bound µs, count)` power-of-two buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl StageSnapshot {
    /// Builds a snapshot from raw accumulator state, deriving the mean and
    /// the percentile estimates.
    fn from_parts(count: u64, total_us: u64, max_us: u64, buckets: Vec<(u64, u64)>) -> Self {
        StageSnapshot {
            count,
            total_us,
            mean_us: total_us.checked_div(count).unwrap_or(0),
            p50_us: percentile_from_buckets(count, max_us, &buckets, 0.50),
            p90_us: percentile_from_buckets(count, max_us, &buckets, 0.90),
            p99_us: percentile_from_buckets(count, max_us, &buckets, 0.99),
            max_us,
            buckets,
        }
    }

    /// The `p`-th percentile (`0.0 < p <= 1.0`) of this snapshot, within
    /// one log2 bucket of the true order statistic.
    pub fn percentile_us(&self, p: f64) -> u64 {
        percentile_from_buckets(self.count, self.max_us, &self.buckets, p)
    }

    /// Combines two snapshots as if every observation had been recorded
    /// into one histogram: counts, totals and buckets add, the max is the
    /// larger max, and the derived mean/percentiles are recomputed from the
    /// merged buckets. Shard merging relies on this being associative and
    /// commutative.
    #[must_use]
    pub fn merge(&self, other: &StageSnapshot) -> StageSnapshot {
        StageSnapshot::from_parts(
            self.count + other.count,
            self.total_us + other.total_us,
            self.max_us.max(other.max_us),
            merge_buckets(&self.buckets, &other.buckets),
        )
    }

    /// The observations recorded between `earlier` and `self` (two
    /// snapshots of the *same* histogram): counts, totals and buckets
    /// subtract and the derived statistics are recomputed. The max cannot
    /// be windowed from snapshots alone, so the later max is kept as an
    /// upper bound.
    #[must_use]
    pub fn delta(&self, earlier: &StageSnapshot) -> StageSnapshot {
        let mut buckets: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        for &(upper, n) in &self.buckets {
            let before = earlier
                .buckets
                .iter()
                .find(|&&(u, _)| u == upper)
                .map_or(0, |&(_, c)| c);
            let remaining = n.saturating_sub(before);
            if remaining > 0 {
                buckets.push((upper, remaining));
            }
        }
        StageSnapshot::from_parts(
            self.count.saturating_sub(earlier.count),
            self.total_us.saturating_sub(earlier.total_us),
            self.max_us,
            buckets,
        )
    }
}

/// Serializable copy of the whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Task graphs generated.
    pub graphs_generated: u64,
    /// Schedules built.
    pub schedules_built: u64,
    /// Schedules that missed at least one assigned deadline.
    pub feasibility_failures: u64,
    /// Structural violations across all replications.
    pub structural_violations: u64,
    /// Deadline-window violations found by the assignment audit.
    pub window_violations: u64,
    /// Schedule violations found by schedule validation.
    pub schedule_violations: u64,
    /// Replications degraded to failed outcomes.
    pub replications_failed: u64,
    /// Checkpoint appends that had to be retried.
    pub checkpoint_retries: u64,
    /// Per-start path searches answered from the delta cache.
    /// (Defaulted so snapshots written before the delta pipeline parse.)
    #[serde(default)]
    pub delta_cache_hits: u64,
    /// Per-start path searches run live during redistribution.
    #[serde(default)]
    pub delta_cache_misses: u64,
    /// Dirty (node, iteration) pairs seen by redistributions.
    #[serde(default)]
    pub delta_dirty_nodes: u64,
    /// Scanned (node, iteration) pairs (the dirty-fraction denominator).
    #[serde(default)]
    pub delta_scanned_nodes: u64,
    /// Admission requests answered with an admit verdict.
    /// (Defaulted so snapshots written before the admission service parse.)
    #[serde(default)]
    pub admissions_admitted: u64,
    /// Admission requests answered with a reject verdict.
    #[serde(default)]
    pub admissions_rejected: u64,
    /// Admission requests shed for out-waiting their decision budget.
    /// (Defaulted so snapshots written before PR 9's robustness layer parse.)
    #[serde(default)]
    pub admissions_shed: u64,
    /// Admission requests degraded to `WorkerFailed` verdicts.
    #[serde(default)]
    pub admissions_worker_failed: u64,
    /// Residents evicted by the capacity bound's eviction policy.
    #[serde(default)]
    pub admissions_evicted: u64,
    /// Admissions refused by the feasibility pre-filter before slicing.
    /// (Defaulted so snapshots written before the fast lane parse.)
    #[serde(default)]
    pub admissions_prefiltered: u64,
    /// Structural amendments that fell back to full rebuild + re-trial.
    #[serde(default)]
    pub admissions_structural_fallbacks: u64,
    /// Slicing runs answered from the cross-request slice cache.
    #[serde(default)]
    pub slice_cache_hits: u64,
    /// Slicing runs that missed the cross-request slice cache.
    #[serde(default)]
    pub slice_cache_misses: u64,
    /// Entries evicted from the cross-request slice cache.
    #[serde(default)]
    pub slice_cache_evictions: u64,
    /// Admission-WAL appends that had to be retried.
    #[serde(default)]
    pub admission_log_retries: u64,
    /// Admission-WAL appends that failed past every retry.
    #[serde(default)]
    pub admission_log_failures: u64,
    /// Admission-decision service-time histogram.
    #[serde(default)]
    pub admission: StageSnapshot,
    /// Submission-to-decision sojourn histogram (non-shed requests).
    #[serde(default)]
    pub admission_sojourn: StageSnapshot,
    /// Generation-stage timings.
    pub generate: StageSnapshot,
    /// Distribution-stage timings.
    pub distribute: StageSnapshot,
    /// Redistribution-stage timings (incremental re-slicing).
    #[serde(default)]
    pub redistribute: StageSnapshot,
    /// Scheduling-stage timings.
    pub schedule: StageSnapshot,
    /// Audit-stage timings (assignment checker + schedule validation).
    pub audit: StageSnapshot,
}

impl MetricsSnapshot {
    /// The named stage's snapshot.
    pub fn stage(&self, stage: Stage) -> &StageSnapshot {
        match stage {
            Stage::Generate => &self.generate,
            Stage::Distribute => &self.distribute,
            Stage::Redistribute => &self.redistribute,
            Stage::Schedule => &self.schedule,
            Stage::Audit => &self.audit,
        }
    }

    /// Combines two snapshots as if both registries' observations had been
    /// recorded into one: counters add and each stage histogram merges via
    /// [`StageSnapshot::merge`]. Used to aggregate per-shard `metrics.json`
    /// files into a sweep-wide view.
    #[must_use]
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            graphs_generated: self.graphs_generated + other.graphs_generated,
            schedules_built: self.schedules_built + other.schedules_built,
            feasibility_failures: self.feasibility_failures + other.feasibility_failures,
            structural_violations: self.structural_violations + other.structural_violations,
            window_violations: self.window_violations + other.window_violations,
            schedule_violations: self.schedule_violations + other.schedule_violations,
            replications_failed: self.replications_failed + other.replications_failed,
            checkpoint_retries: self.checkpoint_retries + other.checkpoint_retries,
            delta_cache_hits: self.delta_cache_hits + other.delta_cache_hits,
            delta_cache_misses: self.delta_cache_misses + other.delta_cache_misses,
            delta_dirty_nodes: self.delta_dirty_nodes + other.delta_dirty_nodes,
            delta_scanned_nodes: self.delta_scanned_nodes + other.delta_scanned_nodes,
            admissions_admitted: self.admissions_admitted + other.admissions_admitted,
            admissions_rejected: self.admissions_rejected + other.admissions_rejected,
            admissions_shed: self.admissions_shed + other.admissions_shed,
            admissions_worker_failed: self.admissions_worker_failed
                + other.admissions_worker_failed,
            admissions_evicted: self.admissions_evicted + other.admissions_evicted,
            admissions_prefiltered: self.admissions_prefiltered + other.admissions_prefiltered,
            admissions_structural_fallbacks: self.admissions_structural_fallbacks
                + other.admissions_structural_fallbacks,
            slice_cache_hits: self.slice_cache_hits + other.slice_cache_hits,
            slice_cache_misses: self.slice_cache_misses + other.slice_cache_misses,
            slice_cache_evictions: self.slice_cache_evictions + other.slice_cache_evictions,
            admission_log_retries: self.admission_log_retries + other.admission_log_retries,
            admission_log_failures: self.admission_log_failures + other.admission_log_failures,
            admission: self.admission.merge(&other.admission),
            admission_sojourn: self.admission_sojourn.merge(&other.admission_sojourn),
            generate: self.generate.merge(&other.generate),
            distribute: self.distribute.merge(&other.distribute),
            redistribute: self.redistribute.merge(&other.redistribute),
            schedule: self.schedule.merge(&other.schedule),
            audit: self.audit.merge(&other.audit),
        }
    }

    /// Everything recorded between `earlier` and `self` (two snapshots of
    /// the *same* registry): counters subtract and each stage histogram is
    /// windowed via [`StageSnapshot::delta`]. Used to attribute the
    /// process-global registry to one experiment.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            graphs_generated: self
                .graphs_generated
                .saturating_sub(earlier.graphs_generated),
            schedules_built: self.schedules_built.saturating_sub(earlier.schedules_built),
            feasibility_failures: self
                .feasibility_failures
                .saturating_sub(earlier.feasibility_failures),
            structural_violations: self
                .structural_violations
                .saturating_sub(earlier.structural_violations),
            window_violations: self
                .window_violations
                .saturating_sub(earlier.window_violations),
            schedule_violations: self
                .schedule_violations
                .saturating_sub(earlier.schedule_violations),
            replications_failed: self
                .replications_failed
                .saturating_sub(earlier.replications_failed),
            checkpoint_retries: self
                .checkpoint_retries
                .saturating_sub(earlier.checkpoint_retries),
            delta_cache_hits: self
                .delta_cache_hits
                .saturating_sub(earlier.delta_cache_hits),
            delta_cache_misses: self
                .delta_cache_misses
                .saturating_sub(earlier.delta_cache_misses),
            delta_dirty_nodes: self
                .delta_dirty_nodes
                .saturating_sub(earlier.delta_dirty_nodes),
            delta_scanned_nodes: self
                .delta_scanned_nodes
                .saturating_sub(earlier.delta_scanned_nodes),
            admissions_admitted: self
                .admissions_admitted
                .saturating_sub(earlier.admissions_admitted),
            admissions_rejected: self
                .admissions_rejected
                .saturating_sub(earlier.admissions_rejected),
            admissions_shed: self.admissions_shed.saturating_sub(earlier.admissions_shed),
            admissions_worker_failed: self
                .admissions_worker_failed
                .saturating_sub(earlier.admissions_worker_failed),
            admissions_evicted: self
                .admissions_evicted
                .saturating_sub(earlier.admissions_evicted),
            admissions_prefiltered: self
                .admissions_prefiltered
                .saturating_sub(earlier.admissions_prefiltered),
            admissions_structural_fallbacks: self
                .admissions_structural_fallbacks
                .saturating_sub(earlier.admissions_structural_fallbacks),
            slice_cache_hits: self
                .slice_cache_hits
                .saturating_sub(earlier.slice_cache_hits),
            slice_cache_misses: self
                .slice_cache_misses
                .saturating_sub(earlier.slice_cache_misses),
            slice_cache_evictions: self
                .slice_cache_evictions
                .saturating_sub(earlier.slice_cache_evictions),
            admission_log_retries: self
                .admission_log_retries
                .saturating_sub(earlier.admission_log_retries),
            admission_log_failures: self
                .admission_log_failures
                .saturating_sub(earlier.admission_log_failures),
            admission: self.admission.delta(&earlier.admission),
            admission_sojourn: self.admission_sojourn.delta(&earlier.admission_sojourn),
            generate: self.generate.delta(&earlier.generate),
            distribute: self.distribute.delta(&earlier.distribute),
            redistribute: self.redistribute.delta(&earlier.redistribute),
            schedule: self.schedule.delta(&earlier.schedule),
            audit: self.audit.delta(&earlier.audit),
        }
    }
}

/// One record of the `events.jsonl` stream, serialized externally tagged:
/// `{"Replication": {...}}`.
// The once-per-run `RunEnd` variant inlines the full `MetricsSnapshot`;
// boxing it is not an option (the vendored serde has no `Box` impls) and
// events live only briefly on the emitting thread's stack.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// A run began (emitted once by the driving binary).
    RunStart {
        /// Free-form description of what is being run (experiment ids,
        /// CLI arguments, …).
        command: String,
        /// Replications per scenario point.
        replications: usize,
        /// System sizes swept.
        system_sizes: Vec<usize>,
    },
    /// A checkpoint was loaded and its completed replications will be
    /// skipped (emitted by a resuming [`Runner`]).
    ///
    /// [`Runner`]: crate::Runner
    CheckpointLoaded {
        /// Checkpoint file.
        path: String,
        /// Completed `(system size, replication)` cells found in it.
        records: usize,
    },
    /// A workload was generated.
    GraphGenerated {
        /// Replication index (also the seed offset).
        replication: usize,
        /// Subtasks in the graph.
        subtasks: usize,
        /// Messages (edges) in the graph.
        messages: usize,
        /// Generation wall-clock, µs.
        generate_us: u64,
    },
    /// One full pipeline replication (distribute + schedule + measure)
    /// finished.
    Replication {
        /// Scenario label.
        scenario: String,
        /// Processors.
        system_size: usize,
        /// Replication index.
        replication: usize,
        /// Deadline-distribution wall-clock, µs.
        distribute_us: u64,
        /// List-scheduling wall-clock, µs.
        schedule_us: u64,
        /// Did the schedule meet every assigned deadline?
        feasible: bool,
        /// Structural violations found by validation.
        violations: usize,
        /// Maximum task lateness of this replication.
        max_lateness: f64,
    },
    /// The always-on audit found structural violations in one
    /// replication's output (also counted in the `Replication` event's
    /// `violations`; this event carries the window/schedule split).
    AuditViolation {
        /// Scenario label.
        scenario: String,
        /// Processors.
        system_size: usize,
        /// Replication index.
        replication: usize,
        /// Deadline-window violations (assignment checker).
        window: usize,
        /// Schedule violations (`Schedule::validate`).
        schedule: usize,
    },
    /// A replication failed after retries and was degraded to a typed
    /// failed outcome (excluded from statistics) instead of aborting the
    /// sweep.
    ReplicationFailed {
        /// Scenario label.
        scenario: String,
        /// Processors.
        system_size: usize,
        /// Replication index.
        replication: usize,
        /// Pipeline stage that failed (`generate`, `distribute`,
        /// `schedule`, `panic`).
        stage: String,
        /// The failure, rendered.
        error: String,
    },
    /// A sampled per-replication stage-profile breakdown (every Nth
    /// replication; see `Runner::profile_every`). Unlike the `Replication`
    /// event's coarse timings this separates audit self-time from the
    /// stages it checks.
    Profile {
        /// Scenario label.
        scenario: String,
        /// Processors.
        system_size: usize,
        /// Replication index.
        replication: usize,
        /// Deadline-distribution self-time, µs.
        distribute_us: u64,
        /// List-scheduling self-time, µs.
        schedule_us: u64,
        /// Audit self-time (assignment checker + schedule validation), µs.
        audit_us: u64,
    },
    /// Deadline-miss warnings were rate-limited: only the first K misses
    /// of the scenario were logged; the rest are accounted for here
    /// (emitted at most once per run, at the end).
    DeadlineMissSummary {
        /// Scenario label.
        scenario: String,
        /// Warnings actually emitted (at most the per-run limit).
        emitted: u64,
        /// Warnings suppressed beyond the limit.
        suppressed: u64,
    },
    /// A fault plan injected a fault (only emitted by `fault-inject`
    /// builds).
    FaultInjected {
        /// The fault site's kebab-case name.
        site: String,
        /// Processors (0 for size-independent sites).
        system_size: usize,
        /// Replication index.
        replication: usize,
        /// Which consecutive attempt at the cell was faulted.
        attempt: u64,
    },
    /// A scenario point (all replications at one system size) was
    /// aggregated.
    Point {
        /// Scenario label.
        scenario: String,
        /// Processors.
        system_size: usize,
        /// Mean maximum task lateness over the replications.
        mean_max_lateness: f64,
        /// Fraction of feasible replications.
        feasible_fraction: f64,
        /// Structural violations summed over the replications.
        violations: usize,
        /// Replications that degraded to failed outcomes and were
        /// excluded from the point's statistics.
        failed: usize,
    },
    /// The run finished (emitted once by the driving binary).
    RunEnd {
        /// Final registry snapshot.
        metrics: MetricsSnapshot,
    },
}

/// A line-buffered JSONL writer for [`RunEvent`]s.
#[derive(Debug)]
pub struct EventSink {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl EventSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<EventSink> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(EventSink {
            writer: Mutex::new(BufWriter::new(file)),
            path,
        })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event as a JSON line. I/O errors are reported once as a
    /// tracing error and otherwise ignored: diagnostics must never abort an
    /// experiment.
    pub fn emit(&self, event: &RunEvent) {
        let line = serde_json::to_string(event).expect("plain data serializes");
        let mut writer = self.writer.lock().expect("event sink poisoned");
        if let Err(e) = writeln!(writer, "{line}") {
            tracing::error!(path = %self.path.display(), "event sink write failed: {e}");
        }
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) {
        let _ = self.writer.lock().expect("event sink poisoned").flush();
    }
}

impl Drop for EventSink {
    fn drop(&mut self) {
        self.flush();
    }
}

fn sink_slot() -> &'static Mutex<Option<Arc<EventSink>>> {
    static SINK: OnceLock<Mutex<Option<Arc<EventSink>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Installs `sink` as the process-wide event stream, replacing (and
/// flushing) any previous one.
pub fn install(sink: EventSink) {
    *sink_slot().lock().expect("sink slot poisoned") = Some(Arc::new(sink));
}

/// Removes and returns the installed sink, flushing it first.
pub fn uninstall() -> Option<Arc<EventSink>> {
    let sink = sink_slot().lock().expect("sink slot poisoned").take();
    if let Some(sink) = &sink {
        sink.flush();
    }
    sink
}

/// The currently installed sink, if any.
pub fn installed() -> Option<Arc<EventSink>> {
    sink_slot().lock().expect("sink slot poisoned").clone()
}

/// Emits the event built by `f` to the installed sink; without a sink the
/// closure is never called.
pub fn emit_with(f: impl FnOnce() -> RunEvent) {
    if let Some(sink) = installed() {
        sink.emit(&f());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_counts_totals_and_buckets() {
        let h = DurationHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);

        h.record(Duration::from_micros(3)); // bucket for 2..4 µs
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(900)); // bucket for 512..1024 µs
        assert_eq!(h.count(), 3);
        assert_eq!(h.total(), Duration::from_micros(906));
        assert_eq!(h.mean(), Duration::from_micros(302));

        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.total_us, 906);
        assert_eq!(snap.max_us, 900);
        assert_eq!(snap.buckets, vec![(4, 2), (1024, 1)]);
        // Ranks 1..=2 land in the 2..4 µs bucket, rank 3 in 512..1024 µs.
        assert_eq!(snap.p50_us, 3); // bucket top (4 - 1)
        assert_eq!(snap.p90_us, 900); // clamped to the recorded max
        assert_eq!(snap.p99_us, 900);
        assert_eq!(h.percentile(0.5), Duration::from_micros(3));
        assert_eq!(h.percentile(1.0), Duration::from_micros(900));
    }

    #[test]
    fn percentiles_match_reference_on_a_known_series() {
        let h = DurationHistogram::default();
        let mut values: Vec<u64> = (1..=100).map(|i| i * 7).collect();
        for &v in &values {
            h.record(Duration::from_micros(v));
        }
        values.sort_unstable();
        for p in [0.5, 0.9, 0.99] {
            let reference = percentile_reference(&values, p);
            let estimate = h.percentile(p).as_micros() as u64;
            // Same log2 bucket: identical bit length.
            assert_eq!(
                64 - estimate.leading_zeros(),
                64 - reference.leading_zeros(),
                "p={p}: estimate {estimate} vs reference {reference}"
            );
            assert!(estimate >= reference, "nearest-rank upper bound");
        }
    }

    #[test]
    fn snapshots_merge_like_one_histogram() {
        let (a, b, both) = (
            DurationHistogram::default(),
            DurationHistogram::default(),
            DurationHistogram::default(),
        );
        for v in [3u64, 17, 900, 64] {
            a.record(Duration::from_micros(v));
            both.record(Duration::from_micros(v));
        }
        for v in [5u64, 5000, 12] {
            b.record(Duration::from_micros(v));
            both.record(Duration::from_micros(v));
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), both.snapshot());
        // Commutative, and merging an empty snapshot is the identity.
        assert_eq!(b.snapshot().merge(&a.snapshot()), both.snapshot());
        let empty = DurationHistogram::default().snapshot();
        assert_eq!(both.snapshot().merge(&empty), both.snapshot());
    }

    #[test]
    fn snapshot_delta_windows_the_new_observations() {
        let h = DurationHistogram::default();
        h.record(Duration::from_micros(10));
        let earlier = h.snapshot();
        h.record(Duration::from_micros(300));
        h.record(Duration::from_micros(12));
        let delta = h.snapshot().delta(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.total_us, 312);
        assert_eq!(delta.mean_us, 156);
        // 10 and 12 share the 8..16 bucket: one of its two entries remains.
        assert_eq!(delta.buckets, vec![(16, 1), (512, 1)]);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = DurationHistogram::default();
        h.record(Duration::ZERO); // sub-microsecond → bucket 0
        h.record(Duration::from_secs(1 << 30)); // saturates in the top bucket
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.buckets.first().unwrap().0, 1);
        assert_eq!(snap.buckets.last().unwrap().0, u64::MAX);
    }

    #[test]
    fn registry_counters_accumulate_and_reset() {
        let r = Registry::default();
        r.count_graph();
        r.count_graph();
        r.count_schedule(true, 0);
        r.count_schedule(false, 3);
        r.count_audit(2, 1);
        r.count_failed_replication();
        r.count_checkpoint_retry();
        r.count_checkpoint_retry();
        r.count_redistribute(&slicing::RedistributeStats {
            cache_hits: 10,
            cache_misses: 2,
            dirty_nodes: 3,
            scanned_nodes: 24,
            fell_back: false,
        });
        r.record_stage(Stage::Generate, Duration::from_micros(10));
        r.record_stage(Stage::Distribute, Duration::from_micros(20));
        r.record_stage(Stage::Redistribute, Duration::from_micros(15));
        r.record_stage(Stage::Schedule, Duration::from_micros(30));
        r.record_stage(Stage::Audit, Duration::from_micros(5));
        r.record_admission(true, Duration::from_micros(40));
        r.record_admission(true, Duration::from_micros(45));
        r.record_admission(false, Duration::from_micros(50));
        r.count_admission_prefiltered();
        r.count_slice_cache_hit();
        r.count_slice_cache_hit();
        r.count_slice_cache_miss();
        r.count_slice_cache_eviction();

        assert_eq!(r.graphs_generated(), 2);
        assert_eq!(r.schedules_built(), 2);
        assert_eq!(r.feasibility_failures(), 1);
        assert_eq!(r.structural_violations(), 3);
        assert_eq!(r.window_violations(), 2);
        assert_eq!(r.schedule_violations(), 1);
        assert_eq!(r.replications_failed(), 1);
        assert_eq!(r.checkpoint_retries(), 2);
        assert_eq!(r.delta_cache_hits(), 10);
        assert_eq!(r.delta_cache_misses(), 2);
        assert_eq!(r.delta_dirty_nodes(), 3);
        assert_eq!(r.delta_scanned_nodes(), 24);
        assert!((r.delta_dirty_frac() - 0.125).abs() < 1e-12);
        assert_eq!(r.admissions_admitted(), 2);
        assert_eq!(r.admissions_rejected(), 1);
        assert_eq!(r.admissions_prefiltered(), 1);
        assert_eq!(r.slice_cache_hits(), 2);
        assert_eq!(r.slice_cache_misses(), 1);
        assert_eq!(r.slice_cache_evictions(), 1);
        assert_eq!(r.admission().count(), 3);
        for stage in Stage::ALL {
            assert_eq!(r.stage(stage).count(), 1, "{}", stage.label());
        }

        let snap = r.snapshot();
        assert_eq!(snap.graphs_generated, 2);
        assert_eq!(snap.distribute.total_us, 20);
        assert_eq!(snap.redistribute.total_us, 15);
        assert_eq!(snap.delta_cache_hits, 10);
        assert_eq!(snap.admissions_admitted, 2);
        assert_eq!(snap.admissions_prefiltered, 1);
        assert_eq!(snap.slice_cache_hits, 2);
        assert_eq!(snap.admission.count, 3);

        r.reset();
        assert_eq!(r.graphs_generated(), 0);
        assert_eq!(r.admissions_prefiltered(), 0);
        assert_eq!(r.slice_cache_hits(), 0);
        assert_eq!(r.slice_cache_evictions(), 0);
        assert_eq!(r.schedules_built(), 0);
        assert_eq!(r.window_violations(), 0);
        assert_eq!(r.replications_failed(), 0);
        assert_eq!(r.checkpoint_retries(), 0);
        assert_eq!(r.delta_cache_hits(), 0);
        assert_eq!(r.delta_scanned_nodes(), 0);
        assert_eq!(r.delta_dirty_frac(), 0.0);
        assert_eq!(r.admissions_admitted(), 0);
        assert_eq!(r.admissions_rejected(), 0);
        assert_eq!(r.admission().count(), 0);
        assert_eq!(r.stage(Stage::Schedule).count(), 0);
        assert_eq!(r.stage(Stage::Redistribute).count(), 0);
        assert_eq!(r.snapshot().schedule.buckets, vec![]);
    }

    #[test]
    fn snapshot_serializes_and_round_trips() {
        let r = Registry::default();
        r.count_schedule(false, 1);
        r.record_stage(Stage::Schedule, Duration::from_micros(100));
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn event_sink_writes_one_json_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("feast-telemetry-test-{}.jsonl", std::process::id()));
        let sink = EventSink::create(&path).unwrap();
        sink.emit(&RunEvent::RunStart {
            command: "test".into(),
            replications: 2,
            system_sizes: vec![2, 4],
        });
        sink.emit(&RunEvent::Replication {
            scenario: "PURE/CCNE".into(),
            system_size: 4,
            replication: 0,
            distribute_us: 11,
            schedule_us: 22,
            feasible: true,
            violations: 0,
            max_lateness: -12.5,
        });
        sink.flush();

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: RunEvent = serde_json::from_str(lines[0]).unwrap();
        assert!(matches!(
            first,
            RunEvent::RunStart {
                replications: 2,
                ..
            }
        ));
        let second: RunEvent = serde_json::from_str(lines[1]).unwrap();
        match second {
            RunEvent::Replication {
                scenario,
                distribute_us,
                feasible,
                ..
            } => {
                assert_eq!(scenario, "PURE/CCNE");
                assert_eq!(distribute_us, 11);
                assert!(feasible);
            }
            other => panic!("expected Replication, got {other:?}"),
        }
    }

    #[test]
    fn emit_with_skips_construction_without_a_sink() {
        // `installed()` may race with other tests only if one installs a
        // global sink; none does, so the closure must not run.
        if installed().is_none() {
            emit_with(|| panic!("no sink installed: closure must not run"));
        }
    }
}
