//! Online admission control: the paper's pipeline as a long-running
//! scheduler service.
//!
//! The sweep engine answers an *offline* question — how late does a
//! technique run over thousands of independent replications. This module
//! answers the *online* one: task graphs arrive one by one at a live
//! platform that already carries committed reservations, and each must be
//! answered admit/reject **now**, with the predicted worst-case lateness
//! it would incur against the platform's current load.
//!
//! * [`AdmissionController`] — the sequential core. Owns one [`Pipeline`],
//!   one [`CommittedState`] and the resident set; [`admit`] trial-schedules
//!   a new graph around the committed reservations (admitted graphs commit
//!   exactly the trialed schedule, rejected ones leave no trace) and
//!   [`amend`] re-trials a resident after a [`GraphDelta`], preferring the
//!   rollback + schedule-repair fast path.
//! * [`AdmissionService`] — the same semantics behind a bounded queue:
//!   slicer workers distribute deadlines in parallel (stage one of the
//!   pipeline never reads committed load), a single coordinator re-orders
//!   their products by submission sequence and runs every trial + commit
//!   in submission order, so concurrency never changes a verdict.
//! * [`AdmissionLog`] — the service's full transcript: every request and
//!   outcome in submission order plus the final state digest. Replaying it
//!   through a fresh sequential controller ([`AdmissionLog::replay`])
//!   reproduces bit-identical verdicts — the determinism contract tests
//!   and load harnesses check.
//! * [`AdmissionWal`] — the durable half of the transcript: every
//!   concluded request is CRC32-sealed to an append-only JSONL
//!   write-ahead log *before* its verdict is returned, and
//!   [`AdmissionController::recover`] rebuilds the committed state from
//!   that log after a crash, bit-identical to the pre-crash digest.
//!
//! The service is built to *degrade, not die*: a slicer-worker panic
//! becomes a typed [`Failed`](AdmitOutcome::Failed) outcome and the
//! worker's pipeline is rebuilt in place; a request that out-waits its
//! [decision budget](AdmitConfig::with_decision_budget) is shed with a
//! typed [`Shed`](AdmitOutcome::Shed) outcome before any slicing work is
//! spent on it, bounding decision latency under overload; WAL appends
//! retry transiently failing I/O with bounded exponential backoff.
//!
//! A verdict is a *prediction under the trialed load*, not a
//! schedulability proof: admitted means the non-preemptive EDF trial met
//! every sliced deadline given the reservations committed at decision
//! time. Residents depart automatically once the decision clock passes
//! their horizon (last reserved completion), and a capacity bound evicts
//! residents chosen by the configured [`EvictionPolicy`] on admit so the
//! committed state stays small.
//!
//! [`admit`]: AdmissionController::admit
//! [`amend`]: AdmissionController::amend

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use platform::Platform;
use sched::{CommitReceipt, CommittedState, MissLog, Schedule};
use serde::{Deserialize, Serialize};
use slicing::{DeltaError, GraphDelta};
use taskgraph::gen::{stream_label, stream_seed};
use taskgraph::{TaskGraph, Time};

use crate::error::AdmitError;
use crate::fault::{FaultPlan, FaultSite};
use crate::pipeline::{Pipeline, SharedSliceCache, SliceOutput, Sliced, Verdict};
use crate::runner::{fingerprint, seal};
use crate::scenario::Scenario;
use crate::{telemetry, RunError, Runner};

/// Configuration of an admission controller or service: the pipeline
/// scenario, the platform size, and the service's operational bounds.
#[derive(Debug, Clone)]
pub struct AdmitConfig {
    /// The pipeline configuration: technique, scheduler spec, pinning
    /// policy. Sweep shape (sizes, replications, seeds) is ignored.
    pub scenario: Scenario,
    /// Number of processors in the live platform.
    pub system_size: usize,
    /// Bound of the service's ingress queue; [`AdmissionService::submit`]
    /// refuses with [`AdmitError::QueueFull`] instead of blocking.
    pub queue_depth: usize,
    /// Maximum number of resident (committed) graphs; an admit beyond the
    /// bound evicts residents chosen by [`eviction`](AdmitConfig::eviction).
    pub capacity: usize,
    /// Number of parallel slicer workers in an [`AdmissionService`].
    pub workers: usize,
    /// Per-service budget of individually logged deadline-miss warnings;
    /// misses beyond it are counted silently (see [`MissLog`]). The same
    /// budget bounds structural-fallback WARNs.
    pub miss_warn_limit: u64,
    /// The capacity bound's victim-selection policy (default
    /// [`OldestFirst`]). Part of the WAL fingerprint: recovery refuses a
    /// log written under a different policy.
    pub eviction: Arc<dyn EvictionPolicy>,
    /// Decision budget for staleness-aware shedding: a service request
    /// that has already waited longer than this when a worker or the
    /// coordinator picks it up is refused with [`AdmitError::Shed`]
    /// before any slicing or trial work is spent on it. `None` (the
    /// default) never sheds. The sequential controller has no queue and
    /// ignores the budget.
    pub decision_budget: Option<Duration>,
    /// Path of the durable write-ahead log. `Some` makes every concluded
    /// request durable before its verdict is returned (see
    /// [`AdmissionWal`]); `None` (the default) keeps the transcript
    /// in-memory only.
    pub wal_path: Option<PathBuf>,
    /// Deterministic fault plan for the admission fault sites. Only
    /// consulted when the `fault-inject` cargo feature is enabled;
    /// release builds compile the hooks to constant `false`.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Whether the feasibility pre-filter runs in front of slicing
    /// (default `true`). A pre-filtered graph is refused with the typed
    /// [`AdmitError::Prefilter`] before any DP work; the bounds are
    /// conservative, so the full path would have rejected it too.
    pub prefilter: bool,
    /// Capacity of the cross-request slice cache shared by the
    /// controller and its slicer workers (default 64 entries; `0`
    /// disables caching). The cache is invisible in transcripts — hits
    /// return bit-identical output — so it is a pure throughput knob,
    /// not part of the WAL fingerprint.
    pub slice_cache: usize,
}

impl AdmitConfig {
    /// A configuration with service defaults: queue depth 256, capacity
    /// 64 residents, 4 slicer workers, 8 logged miss warnings,
    /// oldest-first eviction, no shedding, no write-ahead log, the
    /// feasibility pre-filter on, and a 64-entry slice cache.
    pub fn new(scenario: Scenario, system_size: usize) -> AdmitConfig {
        AdmitConfig {
            scenario,
            system_size,
            queue_depth: 256,
            capacity: 64,
            workers: 4,
            miss_warn_limit: 8,
            eviction: Arc::new(OldestFirst),
            decision_budget: None,
            wal_path: None,
            fault_plan: None,
            prefilter: true,
            slice_cache: 64,
        }
    }

    /// Sets the ingress queue bound (clamped to at least 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the resident capacity bound (clamped to at least 1).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the number of slicer workers (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the deadline-miss warning budget.
    #[must_use]
    pub fn with_miss_warn_limit(mut self, limit: u64) -> Self {
        self.miss_warn_limit = limit;
        self
    }

    /// Sets the capacity bound's eviction policy.
    #[must_use]
    pub fn with_eviction(mut self, policy: impl EvictionPolicy + 'static) -> Self {
        self.eviction = Arc::new(policy);
        self
    }

    /// Sets the decision budget for staleness-aware shedding.
    #[must_use]
    pub fn with_decision_budget(mut self, budget: Duration) -> Self {
        self.decision_budget = Some(budget);
        self
    }

    /// Makes the transcript durable: every concluded request is sealed to
    /// the write-ahead log at `path` before its verdict is returned. A
    /// fresh controller truncates any existing file at `path`; use
    /// [`AdmissionController::recover`] to resume from one instead.
    #[must_use]
    pub fn durable(mut self, path: impl Into<PathBuf>) -> Self {
        self.wal_path = Some(path.into());
        self
    }

    /// Installs a deterministic fault plan for the admission fault sites
    /// (no effect unless built with the `fault-inject` feature).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Enables or disables the feasibility pre-filter.
    #[must_use]
    pub fn with_prefilter(mut self, enabled: bool) -> Self {
        self.prefilter = enabled;
        self
    }

    /// Sets the cross-request slice-cache capacity (`0` disables it).
    #[must_use]
    pub fn with_slice_cache(mut self, capacity: usize) -> Self {
        self.slice_cache = capacity;
        self
    }
}

/// One request to the admission service, identified by a caller-chosen id.
///
/// Requests are processed strictly in submission order; the id names the
/// resident for later amendment and must be unique among live residents.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitRequest {
    /// Admit a new task graph arriving at absolute time `origin`.
    Admit {
        /// Caller-chosen resident id (unique among live residents).
        id: u64,
        /// The arriving task graph, in graph-local time. Shared so the
        /// queue, the transcript, and the resident set all reference one
        /// allocation — cloning a request never copies the graph.
        graph: Arc<TaskGraph>,
        /// Absolute arrival time; every sliced window is re-anchored here.
        origin: Time,
    },
    /// Amend a resident graph and re-trial it at its original origin.
    Amend {
        /// The resident to amend.
        id: u64,
        /// The structural amendment to apply.
        delta: GraphDelta,
    },
}

impl AdmitRequest {
    /// The resident id this request names.
    pub fn id(&self) -> u64 {
        match self {
            AdmitRequest::Admit { id, .. } | AdmitRequest::Amend { id, .. } => *id,
        }
    }
}

/// The decision for one request: admit/reject plus the trial's predicted
/// lateness figures.
///
/// Deliberately excludes wall-clock latency (that goes to the telemetry
/// registry), so replaying a request log reproduces verdicts bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmitVerdict {
    /// The request's resident id.
    pub id: u64,
    /// Did the trial meet every sliced deadline? Admitted graphs have
    /// their trial schedule committed; rejected ones leave no trace.
    pub admitted: bool,
    /// Predicted maximum task lateness (negative values are slack).
    pub max_lateness: Time,
    /// Predicted maximum end-to-end lateness, relative to the origin.
    pub end_to_end: Time,
    /// Completion time of the trialed schedule (absolute time); an
    /// admitted resident departs once the decision clock passes it.
    pub makespan: Time,
    /// Structural violations found by the always-on window and schedule
    /// audits (expected zero).
    pub violations: usize,
    /// For amendments: whether the schedule-repair fast path produced the
    /// verdict (`false` when the trial re-ran in full — same result,
    /// more work).
    pub repaired: bool,
    /// Residents committed after this decision.
    pub residents: usize,
}

/// One resolved request: what the transcript and the write-ahead log
/// record per submission.
///
/// Splits the service's four ways of answering a request into variants a
/// replay can reason about: [`Verdict`](AdmitOutcome::Verdict) and
/// [`Refused`](AdmitOutcome::Refused) are *deterministic* — a fresh
/// controller fed the same request sequence reproduces them bit for bit —
/// while [`Shed`](AdmitOutcome::Shed) and [`Failed`](AdmitOutcome::Failed)
/// are *environmental* (wall-clock overload, injected or real panics):
/// replay copies them verbatim, which is sound because both conclude a
/// request **before** any state mutation, so they provably leave no trace
/// in committed state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmitOutcome {
    /// The trial completed: an admit or reject verdict.
    Verdict(AdmitVerdict),
    /// A deterministic typed refusal (duplicate id, unknown resident,
    /// inapplicable delta, pipeline failure), sealed in structured form.
    Refused(Refusal),
    /// The request out-waited its decision budget and was shed before any
    /// slicing or trial work was spent on it.
    Shed {
        /// How long the request had waited when it was shed, µs.
        waited_us: u64,
    },
    /// A slicer worker panicked while processing the request; the worker
    /// was respawned and the service kept running.
    Failed {
        /// The pipeline stage the worker died in.
        stage: String,
    },
}

impl AdmitOutcome {
    /// The transcript form of a controller result.
    pub fn of(result: &Result<AdmitVerdict, AdmitError>) -> AdmitOutcome {
        match result {
            Ok(verdict) => AdmitOutcome::Verdict(verdict.clone()),
            Err(AdmitError::Shed { waited_us }) => AdmitOutcome::Shed {
                waited_us: *waited_us,
            },
            Err(AdmitError::WorkerFailed { stage }) => AdmitOutcome::Failed {
                stage: (*stage).to_owned(),
            },
            Err(e) => AdmitOutcome::Refused(Refusal::of(e)),
        }
    }

    /// The verdict, when the trial completed.
    pub fn verdict(&self) -> Option<&AdmitVerdict> {
        match self {
            AdmitOutcome::Verdict(verdict) => Some(verdict),
            _ => None,
        }
    }

    /// Whether this outcome depends on the environment (queue timing,
    /// panics) rather than the request sequence. Environmental outcomes
    /// are copied verbatim on replay; deterministic ones are re-derived.
    pub fn is_environmental(&self) -> bool {
        matches!(
            self,
            AdmitOutcome::Shed { .. } | AdmitOutcome::Failed { .. }
        )
    }
}

/// The structured, message-stable form of a deterministic refusal: a
/// variant plus the fields replay re-derives from the request sequence.
///
/// This — not the rendered [`AdmitError`] message — is what the
/// write-ahead log seals and recovery compares, so rewording a `Display`
/// impl never invalidates an existing log. The variant shapes and the
/// kind tags ([`AdmitError::kind`], [`RunError::kind`], and the delta
/// tags below) are part of the WAL format contract and must stay stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Refusal {
    /// [`AdmitError::DuplicateId`].
    DuplicateId {
        /// The already-resident id.
        id: u64,
    },
    /// [`AdmitError::NoResident`].
    NoResident {
        /// The unknown resident id.
        id: u64,
    },
    /// [`AdmitError::Delta`]: the amendment did not apply.
    Delta {
        /// Stable tag of the delta failure: `unknown-subtask`,
        /// `unknown-edge` or `invalid-graph`.
        kind: String,
    },
    /// [`AdmitError::Trial`]: the pipeline itself failed.
    Trial {
        /// Stable tag of the failing stage ([`RunError::kind`]).
        kind: String,
    },
    /// [`AdmitError::Prefilter`]: the feasibility pre-filter proved the
    /// graph infeasible before slicing.
    Prefilter {
        /// Stable tag of the failed bound: `chain-bound` or
        /// `capacity-bound` ([`slicing::PrefilterReject::kind`]).
        bound: String,
    },
    /// Any other deterministic refusal, by its stable tag
    /// ([`AdmitError::kind`]).
    Other {
        /// The refusal's stable tag.
        kind: String,
    },
}

impl Refusal {
    /// The sealed form of a refusing [`AdmitError`].
    fn of(error: &AdmitError) -> Refusal {
        let delta_kind = |e: &DeltaError| match e {
            DeltaError::UnknownSubtask(_) => "unknown-subtask",
            DeltaError::UnknownEdge(..) => "unknown-edge",
            DeltaError::Graph(_) => "invalid-graph",
        };
        match error {
            AdmitError::DuplicateId { id } => Refusal::DuplicateId { id: *id },
            AdmitError::NoResident { id } => Refusal::NoResident { id: *id },
            AdmitError::Delta(e) => Refusal::Delta {
                kind: delta_kind(e).to_owned(),
            },
            AdmitError::Trial(e) => Refusal::Trial {
                kind: e.kind().to_owned(),
            },
            AdmitError::Prefilter(reject) => Refusal::Prefilter {
                bound: reject.kind().to_owned(),
            },
            other => Refusal::Other {
                kind: other.kind().to_owned(),
            },
        }
    }
}

/// One resident's identity and load figures, offered to an
/// [`EvictionPolicy`] when the capacity bound must choose a victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictionCandidate {
    /// The resident id.
    pub id: u64,
    /// Position in admission order (0 = oldest resident).
    pub seniority: usize,
    /// The resident's arrival time.
    pub origin: Time,
    /// Completion time of the resident's reserved schedule.
    pub horizon: Time,
    /// Total reserved processor-busy time of the resident's schedule.
    pub busy: Time,
}

impl EvictionCandidate {
    /// The resident's processor-time utilization over its reservation
    /// span: `busy / (horizon - origin)`. Low values mean the resident
    /// blocks capacity it barely uses.
    pub fn utilization(&self) -> f64 {
        let span = (self.horizon - self.origin).as_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.busy.as_f64() / span
        }
    }
}

/// Victim selection for the capacity bound: which resident departs when
/// an admit would exceed [`AdmitConfig::capacity`].
///
/// Policies must be deterministic functions of the candidate list — the
/// choice is part of the replay contract (and of the WAL fingerprint, so
/// recovery refuses a log written under a different policy).
pub trait EvictionPolicy: fmt::Debug + Send + Sync {
    /// The policy's stable name (used in the WAL fingerprint).
    fn name(&self) -> &'static str;
    /// Chooses the victim among `candidates` (never empty), returning its
    /// resident id.
    fn victim(&self, candidates: &[EvictionCandidate]) -> u64;
}

/// Evicts the longest-resident graph first — the default policy (and the
/// only behavior before eviction became pluggable).
#[derive(Debug, Clone, Copy, Default)]
pub struct OldestFirst;

impl EvictionPolicy for OldestFirst {
    fn name(&self) -> &'static str {
        "oldest-first"
    }

    fn victim(&self, candidates: &[EvictionCandidate]) -> u64 {
        candidates
            .iter()
            .min_by_key(|c| c.seniority)
            .expect("eviction candidates are never empty")
            .id
    }
}

/// Evicts the resident with the lowest processor-time utilization over
/// its reservation span (ties broken oldest-first): frees the most
/// blocked capacity per unit of reserved work discarded.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowestUtilization;

impl EvictionPolicy for LowestUtilization {
    fn name(&self) -> &'static str {
        "lowest-utilization"
    }

    fn victim(&self, candidates: &[EvictionCandidate]) -> u64 {
        candidates
            .iter()
            .min_by(|a, b| {
                a.utilization()
                    .partial_cmp(&b.utilization())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.seniority.cmp(&b.seniority))
            })
            .expect("eviction candidates are never empty")
            .id
    }
}

/// One committed admission: the graph, its reserved schedule, and when it
/// arrived / departs.
#[derive(Debug)]
struct Resident {
    graph: Arc<TaskGraph>,
    schedule: Schedule,
    origin: Time,
    horizon: Time,
}

/// One line of an admission write-ahead log.
// The variant size gap is harmless: a `WalLine` is a transient codec
// value (one per append / one per loaded line), never stored in bulk,
// and the vendored serde has no `Box` impls to shrink `Sealed` with.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum WalLine {
    /// First line: identifies the configuration the records belong to.
    Header {
        /// Configuration fingerprint (see [`wal_fingerprint`]).
        fingerprint: u64,
        /// Scenario label, for human readers of the file.
        label: String,
    },
    /// One concluded request, sealed with the CRC32 of the record's
    /// canonical JSON so silent corruption is detected on recovery.
    Sealed {
        /// IEEE CRC32 of `serde_json::to_string(&record)`.
        crc: u32,
        /// The concluded request.
        record: WalRecord,
    },
}

/// The wire form of an [`AdmitRequest`]: owns its graph, because the
/// vendored serde has no `Arc` impls and the log must be self-contained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum WalRequest {
    /// An [`AdmitRequest::Admit`].
    Admit {
        /// Resident id.
        id: u64,
        /// The arriving graph, owned.
        graph: TaskGraph,
        /// Absolute arrival time.
        origin: Time,
    },
    /// An [`AdmitRequest::Amend`].
    Amend {
        /// Resident id.
        id: u64,
        /// The amendment.
        delta: GraphDelta,
    },
}

impl WalRequest {
    fn of(request: &AdmitRequest) -> WalRequest {
        match request {
            AdmitRequest::Admit { id, graph, origin } => WalRequest::Admit {
                id: *id,
                graph: (**graph).clone(),
                origin: *origin,
            },
            AdmitRequest::Amend { id, delta } => WalRequest::Amend {
                id: *id,
                delta: delta.clone(),
            },
        }
    }

    fn into_request(self) -> AdmitRequest {
        match self {
            WalRequest::Admit { id, graph, origin } => AdmitRequest::Admit {
                id,
                graph: Arc::new(graph),
                origin,
            },
            WalRequest::Amend { id, delta } => AdmitRequest::Amend { id, delta },
        }
    }
}

/// One sealed record of the admission write-ahead log: a request, its
/// outcome, and the state digest *after* the outcome was applied — the
/// per-record self-check [`AdmissionController::recover`] verifies while
/// replaying.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WalRecord {
    /// Submission sequence (records are contiguous from 0).
    seq: u64,
    /// The concluded request.
    request: WalRequest,
    /// How it was concluded.
    outcome: AdmitOutcome,
    /// [`CommittedState::digest`] after this record's outcome.
    digest: u64,
}

/// Fingerprint of everything a write-ahead log's records depend on: the
/// scenario's measurement-relevant content (reusing the checkpoint
/// [`fingerprint`]), the platform size, the capacity bound and the
/// eviction policy. Operational knobs that cannot change a committed
/// record — queue depth, worker count, decision budget — are deliberately
/// excluded, so a log recovers under a differently-tuned service.
fn wal_fingerprint(config: &AdmitConfig) -> u64 {
    // Capacity and eviction policy feed separate chained mixing steps —
    // never XORed into one word — so distinct (capacity, policy) pairs
    // cannot cancel into the same fingerprint.
    let shape = stream_seed(
        fingerprint(&config.scenario),
        stream_label(b"admission-wal"),
        config.system_size as u64,
        config.capacity as u64,
    );
    stream_seed(
        shape,
        stream_label(b"admission-wal-eviction"),
        stream_label(config.eviction.name().as_bytes()),
        0,
    )
}

/// Does the admission fault `site` fire at `(system_size, seq, attempt)`?
/// Compiled to constant `false` without the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
fn fault_fires(
    plan: &Option<Arc<FaultPlan>>,
    site: FaultSite,
    system_size: usize,
    seq: u64,
    attempt: u64,
) -> bool {
    let Some(plan) = plan else {
        return false;
    };
    if !plan.should_fire(site, system_size, seq as usize, attempt) {
        return false;
    }
    tracing::warn!(
        site = %site,
        seq = seq,
        attempt = attempt,
        "injecting admission fault"
    );
    true
}

#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
fn fault_fires(
    _plan: &Option<Arc<FaultPlan>>,
    _site: crate::fault::FaultSite,
    _system_size: usize,
    _seq: u64,
    _attempt: u64,
) -> bool {
    false
}

/// The admission service's durable transcript: an append-only,
/// CRC32-sealed JSONL write-ahead log (the same on-disk discipline as the
/// Runner's checkpoints).
///
/// The first line is a header carrying a configuration fingerprint;
/// every further line seals one [`AdmitRequest`] + [`AdmitOutcome`] +
/// post-outcome state digest. Appends `flush` to the OS per record, so a
/// killed process loses at most the record in flight; transient append
/// failures retry with bounded exponential backoff (the Runner's
/// [`CHECKPOINT_RETRY_LIMIT`](Runner::CHECKPOINT_RETRY_LIMIT) /
/// [`CHECKPOINT_BACKOFF_BASE`](Runner::CHECKPOINT_BACKOFF_BASE) policy).
/// On load, a torn *final* line is tolerated (the in-flight record a
/// crash tore is simply not yet committed), and reopening for append
/// truncates the fragment first so the next record starts a fresh line;
/// any other unreadable or seal-mismatching line is a typed
/// [`CheckpointCorrupt`](RunError::CheckpointCorrupt) error — corruption
/// is detected, never silently replayed.
#[derive(Debug)]
pub struct AdmissionWal {
    writer: BufWriter<File>,
    path: PathBuf,
    /// Sequence the next sealed record will carry.
    seq: u64,
    system_size: usize,
    fault: Option<Arc<FaultPlan>>,
}

impl AdmissionWal {
    /// Creates (truncating) the log at `path` and writes its header.
    fn create(path: &Path, config: &AdmitConfig) -> Result<AdmissionWal, RunError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut wal = AdmissionWal {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            seq: 0,
            system_size: config.system_size,
            fault: config.fault_plan.clone(),
        };
        let header = serde_json::to_string(&WalLine::Header {
            fingerprint: wal_fingerprint(config),
            label: config.scenario.label.clone(),
        })
        .expect("plain data serializes");
        writeln!(wal.writer, "{header}")?;
        wal.writer.flush()?;
        Ok(wal)
    }

    /// Reopens the log at `path` for appending after recovery replayed
    /// `seq` sealed records from it. Anything past `valid_len` — the torn
    /// tail a crash left behind — is truncated first, and a final record
    /// that survived minus its newline (`terminated == false`) gets its
    /// terminator restored, so the next append always starts a fresh
    /// line instead of merging with the fragment.
    fn reopen(
        path: &Path,
        config: &AdmitConfig,
        seq: u64,
        valid_len: u64,
        terminated: bool,
    ) -> Result<AdmissionWal, RunError> {
        let file = OpenOptions::new().append(true).open(path)?;
        let len = file.metadata()?.len();
        if len > valid_len {
            tracing::warn!(
                path = %path.display(),
                kept = valid_len,
                dropped = len - valid_len,
                "truncating torn admission log tail before reopening for append"
            );
            file.set_len(valid_len)?;
        }
        let mut wal = AdmissionWal {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            seq,
            system_size: config.system_size,
            fault: config.fault_plan.clone(),
        };
        if !terminated {
            wal.writer.write_all(b"\n")?;
            wal.writer.flush()?;
        }
        Ok(wal)
    }

    /// Seals one concluded request to disk before its verdict is
    /// returned. Retries transiently failing appends with exponential
    /// backoff; an error is returned only once every retry is exhausted.
    fn append(&mut self, record: &WalRecord) -> Result<(), RunError> {
        let line = WalLine::Sealed {
            crc: seal(record),
            record: record.clone(),
        };
        #[allow(unused_mut)] // mutated only by the fault-inject hook below
        let mut text = serde_json::to_string(&line).expect("plain data serializes");
        #[cfg(feature = "fault-inject")]
        if fault_fires(
            &self.fault,
            FaultSite::AdmitLogCorrupt,
            self.system_size,
            record.seq,
            0,
        ) {
            crate::runner::corrupt_digit(&mut text);
        }

        let mut attempt: u64 = 0;
        loop {
            let injected = fault_fires(
                &self.fault,
                FaultSite::AdmitLogIo,
                self.system_size,
                record.seq,
                attempt,
            );
            let result: Result<(), std::io::Error> = if injected {
                Err(std::io::Error::other("injected admission log failure"))
            } else {
                writeln!(self.writer, "{text}").and_then(|()| self.writer.flush())
            };
            match result {
                Ok(()) => {
                    self.seq = record.seq + 1;
                    return Ok(());
                }
                Err(e) if attempt < u64::from(Runner::CHECKPOINT_RETRY_LIMIT) => {
                    let backoff = Runner::CHECKPOINT_BACKOFF_BASE * 2u32.pow(attempt as u32);
                    tracing::warn!(
                        path = %self.path.display(),
                        seq = record.seq,
                        attempt = attempt,
                        backoff_ms = backoff.as_millis() as u64,
                        "admission log append failed ({e}); retrying"
                    );
                    telemetry::global().count_admission_log_retry();
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Loads every sealed record from the log at `path`, verifying the
    /// header fingerprint against `config`, each record's CRC seal, and
    /// sequence contiguity. A torn final line is skipped with a warning;
    /// the returned [`LoadedWal`] carries the byte length of the valid
    /// prefix so [`reopen`](AdmissionWal::reopen) can truncate the torn
    /// fragment before appending to the file again.
    fn load(path: &Path, config: &AdmitConfig) -> Result<LoadedWal, RunError> {
        let corrupt = |line_no: usize, detail: &str| RunError::CheckpointCorrupt {
            path: path.to_path_buf(),
            detail: format!("{detail} at line {line_no}"),
        };
        let bytes = std::fs::read(path)?;
        // Split into lines by hand, keeping each line's end offset and
        // whether its `\n` terminator is present — `BufRead::lines` would
        // lose both, and recovery needs them to truncate a torn tail.
        let mut lines: Vec<(&[u8], u64, bool)> = Vec::new();
        let mut start = 0;
        while start < bytes.len() {
            match bytes[start..].iter().position(|&b| b == b'\n') {
                Some(p) => {
                    lines.push((&bytes[start..start + p], (start + p + 1) as u64, true));
                    start += p + 1;
                }
                None => {
                    lines.push((&bytes[start..], bytes.len() as u64, false));
                    break;
                }
            }
        }
        let (mut valid_len, mut terminated) = match lines.first() {
            Some(&(content, end, term)) => {
                match std::str::from_utf8(content)
                    .ok()
                    .and_then(|text| serde_json::from_str::<WalLine>(text).ok())
                {
                    Some(WalLine::Header { fingerprint, .. })
                        if fingerprint == wal_fingerprint(config) =>
                    {
                        (end, term)
                    }
                    Some(WalLine::Header { .. }) => {
                        return Err(RunError::CheckpointMismatch {
                            path: path.to_path_buf(),
                        });
                    }
                    _ => {
                        return Err(RunError::CheckpointCorrupt {
                            path: path.to_path_buf(),
                            detail: "first line is not an admission log header".to_owned(),
                        });
                    }
                }
            }
            None => {
                return Err(RunError::CheckpointCorrupt {
                    path: path.to_path_buf(),
                    detail: "log file is empty (no header)".to_owned(),
                });
            }
        };
        let mut records = Vec::new();
        for (i, &(content, end, term)) in lines.iter().enumerate().skip(1) {
            let line_no = i + 1;
            let last = i + 1 == lines.len();
            let parsed = match std::str::from_utf8(content)
                .ok()
                .and_then(|text| serde_json::from_str::<WalLine>(text).ok())
            {
                Some(parsed) => parsed,
                None if last => {
                    tracing::warn!(
                        path = %path.display(),
                        line = line_no,
                        "skipping unparseable final admission log line (torn write)"
                    );
                    continue;
                }
                None => return Err(corrupt(line_no, "unparseable record")),
            };
            match parsed {
                WalLine::Header { .. } => {
                    return Err(corrupt(line_no, "unexpected extra header"));
                }
                WalLine::Sealed { crc, record } => {
                    if seal(&record) != crc {
                        return Err(corrupt(line_no, "record checksum mismatch"));
                    }
                    if record.seq != records.len() as u64 {
                        return Err(corrupt(line_no, "record sequence gap"));
                    }
                    records.push(record);
                    valid_len = end;
                    terminated = term;
                }
            }
        }
        Ok(LoadedWal {
            records,
            valid_len,
            terminated,
        })
    }
}

/// Everything [`AdmissionWal::load`] learns from a log file: the sealed
/// records plus where the valid prefix ends, so
/// [`reopen`](AdmissionWal::reopen) can cut a torn tail off before
/// appending instead of merging the next record into the fragment.
#[derive(Debug)]
struct LoadedWal {
    /// The sealed records, in sequence order.
    records: Vec<WalRecord>,
    /// Byte offset just past the last valid line (header included);
    /// anything beyond it is a torn fragment.
    valid_len: u64,
    /// Whether the valid prefix ends with its `\n` terminator (`false`
    /// only when a crash tore exactly the final record's newline off).
    terminated: bool,
}

/// The sequential admission core: one pipeline, one committed state, the
/// resident set. Processes one request at a time; [`AdmissionService`]
/// wraps it with a queue and parallel slicers without changing any
/// verdict.
///
/// # Examples
///
/// ```
/// use feast::{AdmissionController, AdmitConfig, Scenario};
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
/// use taskgraph::Time;
///
/// # fn main() -> Result<(), feast::Error> {
/// let spec = WorkloadSpec::paper(ExecVariation::Mdet);
/// let scenario = Scenario::paper("ADM", spec.clone(), MetricKind::adapt(), CommEstimate::Ccne);
/// let mut controller = AdmissionController::new(AdmitConfig::new(scenario, 8))?;
///
/// let graph = generate_seeded(&spec, 1).unwrap();
/// let verdict = controller.admit(1, graph, Time::ZERO)?;
/// assert_eq!(controller.residents(), usize::from(verdict.admitted));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmitConfig,
    platform: Platform,
    pipeline: Pipeline,
    state: CommittedState,
    residents: BTreeMap<u64, Resident>,
    /// Resident ids in admission order — the capacity bound's eviction
    /// queue.
    order: VecDeque<u64>,
    /// The latest commit, if its receipt is still rollback-eligible:
    /// amendments to this resident can withdraw it without invalidating
    /// the scheduler's retained dispatch log.
    last_commit: Option<(u64, CommitReceipt)>,
    miss_log: Arc<MissLog>,
    /// The durable transcript, when [`AdmitConfig::wal_path`] is set.
    wal: Option<AdmissionWal>,
    /// Remaining individually-logged structural-fallback WARNs (shares
    /// the [`AdmitConfig::miss_warn_limit`] budget size).
    fallback_warns: u64,
    /// The cross-request slice cache, when enabled — shared with every
    /// slicer worker of an [`AdmissionService`] built on this controller.
    slice_cache: Option<SharedSliceCache>,
}

impl AdmissionController {
    /// Builds the live platform and an idle (empty) committed state for
    /// `config`.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError::Trial`] when the platform cannot be
    /// constructed (e.g. zero processors).
    pub fn new(config: AdmitConfig) -> Result<AdmissionController, AdmitError> {
        let topology = config
            .scenario
            .topology
            .build(config.system_size, config.scenario.cost_per_item);
        let platform =
            Platform::homogeneous(config.system_size, topology).map_err(RunError::Platform)?;
        let miss_log = Arc::new(MissLog::new(config.miss_warn_limit));
        let slice_cache: Option<SharedSliceCache> = if config.slice_cache > 0 {
            Some(Arc::new(Mutex::new(slicing::SliceCache::new(
                config.slice_cache,
            ))))
        } else {
            None
        };
        let mut pipeline = Pipeline::new(&config.scenario).with_delta_memo();
        if let Some(cache) = &slice_cache {
            pipeline = pipeline.with_slice_cache(Arc::clone(cache));
        }
        pipeline.set_miss_log(Some(Arc::clone(&miss_log)));
        let state = CommittedState::new(config.system_size, config.scenario.scheduler.bus_model);
        let wal = match &config.wal_path {
            Some(path) => Some(AdmissionWal::create(path, &config).map_err(AdmitError::Log)?),
            None => None,
        };
        let fallback_warns = config.miss_warn_limit;
        Ok(AdmissionController {
            config,
            platform,
            pipeline,
            state,
            residents: BTreeMap::new(),
            order: VecDeque::new(),
            last_commit: None,
            miss_log,
            wal,
            fallback_warns,
            slice_cache,
        })
    }

    /// Rebuilds a controller from the write-ahead log at `path`, replaying
    /// every sealed record through a fresh sequential controller and
    /// verifying each against its recorded outcome and post-outcome state
    /// digest — the recovered state is provably bit-identical to the
    /// pre-crash committed state. Environmental outcomes
    /// ([`Shed`](AdmitOutcome::Shed), [`Failed`](AdmitOutcome::Failed))
    /// are adopted verbatim (they concluded before any state mutation;
    /// the digest check still validates their no-trace invariant).
    ///
    /// Returns the recovered controller — re-attached to `path` for
    /// further appends — and the transcript of the replayed prefix.
    /// `config` must match the log's fingerprint (scenario, platform
    /// size, capacity, eviction policy); operational knobs may differ.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Log`] for an unreadable, corrupt, or
    /// fingerprint-mismatching log, and [`AdmitError::RecoveryDiverged`]
    /// when a replayed record does not reproduce its sealed outcome or
    /// digest.
    pub fn recover(
        config: AdmitConfig,
        path: impl AsRef<Path>,
    ) -> Result<(AdmissionController, AdmissionLog), AdmitError> {
        let path = path.as_ref();
        let LoadedWal {
            records,
            valid_len,
            terminated,
        } = AdmissionWal::load(path, &config).map_err(AdmitError::Log)?;
        let mut replay_config = config.clone();
        replay_config.wal_path = None;
        let mut controller = AdmissionController::new(replay_config)?;
        let mut log = AdmissionLog::default();
        for record in records {
            let WalRecord {
                seq,
                request,
                outcome: recorded,
                digest,
            } = record;
            let request = request.into_request();
            let outcome = if recorded.is_environmental() {
                recorded.clone()
            } else {
                // Schema-compatible replay: each record re-derives under
                // the slicing schema it was sealed with. A record sealed
                // as a pre-filter refusal re-derives through the
                // pre-filter; every other record re-derives through the
                // full slice + trial path — which is exactly what
                // produced it, whether the writing session predated the
                // pre-filter, had it disabled, or had it enabled (the
                // bounds are conservative, so a sealed verdict means the
                // pre-filter passed the graph through). Outcome and
                // digest stay strict bit-for-bit checks either way, and
                // the session's own knob is restored for post-recovery
                // appends.
                let sealed_prefiltered =
                    matches!(&recorded, AdmitOutcome::Refused(Refusal::Prefilter { .. }));
                let session = controller.config.prefilter;
                controller.config.prefilter = sealed_prefiltered;
                let outcome = AdmitOutcome::of(&controller.handle(&request));
                controller.config.prefilter = session;
                outcome
            };
            if outcome != recorded {
                return Err(AdmitError::RecoveryDiverged {
                    seq,
                    detail: format!("recorded outcome {recorded:?}, replay produced {outcome:?}"),
                });
            }
            if controller.digest() != digest {
                return Err(AdmitError::RecoveryDiverged {
                    seq,
                    detail: format!(
                        "recorded state digest {digest:#018x}, replay reached {:#018x}",
                        controller.digest()
                    ),
                });
            }
            log.requests.push(request);
            // The sealed record stays the truth in the recovered
            // transcript, even where the schema bridge accepted a
            // non-identical (but provably trace-free) derivation.
            log.outcomes.push(recorded);
        }
        log.digest = controller.digest();
        log.residents = controller.residents();
        let next = log.requests.len() as u64;
        controller.wal = Some(
            AdmissionWal::reopen(path, &config, next, valid_len, terminated)
                .map_err(AdmitError::Log)?,
        );
        controller.config.wal_path = Some(path.to_path_buf());
        Ok((controller, log))
    }

    /// Processes one request: [`admit`](AdmissionController::admit) or
    /// [`amend`](AdmissionController::amend). This is the replay entry
    /// point — feeding a recorded request sequence through `handle`
    /// reproduces the original verdicts bit for bit.
    ///
    /// # Errors
    ///
    /// Exactly those of the dispatched method.
    pub fn handle(&mut self, request: &AdmitRequest) -> Result<AdmitVerdict, AdmitError> {
        match request {
            AdmitRequest::Admit { id, graph, origin } => {
                self.admit(*id, Arc::clone(graph), *origin)
            }
            AdmitRequest::Amend { id, delta } => self.amend(*id, delta),
        }
    }

    /// Slices `graph` and trial-schedules it around the current committed
    /// reservations at absolute time `origin`. On admit the trial schedule
    /// is committed as a reservation; on reject the state is left exactly
    /// as the retirement of expired residents left it.
    ///
    /// Processing first advances the decision clock to `origin`: residents
    /// whose horizon has passed depart. That retirement depends only on
    /// `origin`, never on this request's verdict.
    ///
    /// # Errors
    ///
    /// [`AdmitError::DuplicateId`] when `id` is already resident, and
    /// [`AdmitError::Trial`] when the pipeline itself fails. A *reject* is
    /// not an error — it is an `Ok` verdict with `admitted == false`.
    pub fn admit(
        &mut self,
        id: u64,
        graph: impl Into<Arc<TaskGraph>>,
        origin: Time,
    ) -> Result<AdmitVerdict, AdmitError> {
        let graph = graph.into();
        let sliced = if self.config.prefilter {
            match self.pipeline.prefilter(&graph, &self.platform) {
                Some(reject) => Err(AdmitError::Prefilter(reject)),
                None => self
                    .pipeline
                    .slice(&graph, &self.platform)
                    .map(Sliced::into_output)
                    .map_err(AdmitError::Trial),
            }
        } else {
            self.pipeline
                .slice(&graph, &self.platform)
                .map(Sliced::into_output)
                .map_err(AdmitError::Trial)
        };
        let result = match sliced {
            Ok(output) => self.decide(id, &graph, origin, output),
            Err(e) => Err(e),
        };
        let request = AdmitRequest::Admit { id, graph, origin };
        self.conclude(&request, result)
    }

    /// The sealing choke point: records `result` for `request` in the
    /// write-ahead log (when durable) **before** handing the verdict back.
    /// Every public conclusion — the controller's own
    /// [`admit`](AdmissionController::admit) /
    /// [`amend`](AdmissionController::amend) and the service coordinator —
    /// funnels through here exactly once per request.
    ///
    /// An append that exhausts its retries degrades rather than dies: the
    /// failure is WARNed and counted
    /// ([`admission_log_failures`](crate::telemetry::MetricsSnapshot::admission_log_failures))
    /// and the verdict is still returned — the caller gets its answer, the
    /// operator gets the signal that durability lapsed.
    pub(crate) fn conclude(
        &mut self,
        request: &AdmitRequest,
        result: Result<AdmitVerdict, AdmitError>,
    ) -> Result<AdmitVerdict, AdmitError> {
        if matches!(result, Err(AdmitError::Prefilter(_))) {
            telemetry::global().count_admission_prefiltered();
        }
        if self.wal.is_some() {
            let outcome = AdmitOutcome::of(&result);
            let record = WalRecord {
                seq: self.wal.as_ref().map_or(0, |wal| wal.seq),
                request: WalRequest::of(request),
                outcome,
                digest: self.state.digest(),
            };
            if let Some(wal) = self.wal.as_mut() {
                if let Err(e) = wal.append(&record) {
                    tracing::warn!(
                        path = %wal.path.display(),
                        seq = record.seq,
                        "admission log append exhausted retries ({e}); verdict returned undurable"
                    );
                    telemetry::global().count_admission_log_failure();
                }
            }
        }
        result
    }

    /// The serial half of an admit: retire, trial against committed load,
    /// commit on admit. The service's coordinator calls this with products
    /// sliced on worker threads.
    pub(crate) fn decide(
        &mut self,
        id: u64,
        graph: &Arc<TaskGraph>,
        origin: Time,
        output: SliceOutput,
    ) -> Result<AdmitVerdict, AdmitError> {
        let started = Instant::now();
        self.retire(origin);
        if self.residents.contains_key(&id) {
            return Err(AdmitError::DuplicateId { id });
        }
        let verdict = self.pipeline.trial_output_against(
            graph,
            &self.platform,
            output,
            &self.state,
            origin,
        )?;
        let admitted = verdict.admit;
        if admitted {
            // The capacity bound evicts via the configured policy, only on
            // an actual admit. The trial ran with the evictees still
            // resident, so its schedule avoids their reservations too —
            // committing it after they leave is strictly sound.
            while self.residents.len() >= self.config.capacity.max(1) {
                let candidates: Vec<EvictionCandidate> = self
                    .order
                    .iter()
                    .enumerate()
                    .filter_map(|(seniority, &rid)| {
                        self.residents.get(&rid).map(|resident| EvictionCandidate {
                            id: rid,
                            seniority,
                            origin: resident.origin,
                            horizon: resident.horizon,
                            busy: resident
                                .schedule
                                .entries()
                                .iter()
                                .fold(Time::ZERO, |acc, entry| acc + (entry.finish - entry.start)),
                        })
                    })
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let victim = self.config.eviction.victim(&candidates);
                if !self.residents.contains_key(&victim) {
                    debug_assert!(false, "eviction policy chose a non-resident id {victim}");
                    break;
                }
                self.evict(victim);
                telemetry::global().count_admission_evicted();
            }
            let receipt = self.state.commit(&verdict.schedule)?;
            self.last_commit = Some((id, receipt));
            let decision = self.verdict_of(id, true, false, &verdict, self.residents.len() + 1);
            self.residents.insert(
                id,
                Resident {
                    graph: Arc::clone(graph),
                    horizon: verdict.makespan,
                    origin,
                    schedule: verdict.schedule,
                },
            );
            self.order.push_back(id);
            telemetry::global().record_admission(true, started.elapsed());
            Ok(decision)
        } else {
            let decision = self.verdict_of(id, false, false, &verdict, self.residents.len());
            telemetry::global().record_admission(false, started.elapsed());
            Ok(decision)
        }
    }

    /// Applies `delta` to the resident `id`, withdraws its reservation and
    /// re-trials the amended graph at its original origin. On admit the
    /// new schedule replaces the old reservation; on reject (or any
    /// pipeline error) the original reservation is restored unchanged.
    ///
    /// When the resident's commit is still the state's latest mutation,
    /// withdrawal is a receipt rollback and the re-trial runs through the
    /// scheduler's repair path, reusing every dispatch the amendment did
    /// not disturb; otherwise it releases and re-trials in full. Both
    /// paths produce bit-identical verdicts — the fast path is reported in
    /// [`AdmitVerdict::repaired`].
    ///
    /// # Errors
    ///
    /// [`AdmitError::NoResident`] for an unknown id,
    /// [`AdmitError::Delta`] when the amendment does not apply, and
    /// [`AdmitError::Trial`] when the pipeline itself fails.
    pub fn amend(&mut self, id: u64, delta: &GraphDelta) -> Result<AdmitVerdict, AdmitError> {
        let result = self.amend_unsealed(id, delta);
        let request = AdmitRequest::Amend {
            id,
            delta: delta.clone(),
        };
        self.conclude(&request, result)
    }

    /// [`amend`](AdmissionController::amend) without the sealing step —
    /// the service's coordinator runs this and seals through
    /// [`conclude`](AdmissionController::conclude) itself.
    pub(crate) fn amend_unsealed(
        &mut self,
        id: u64,
        delta: &GraphDelta,
    ) -> Result<AdmitVerdict, AdmitError> {
        let started = Instant::now();
        if !delta.is_attribute_only() {
            // Structural amendments can never ride the schedule-repair
            // fast path; count them so an operator can see when an
            // amendment-heavy workload degrades to full re-trials.
            telemetry::global().count_admission_structural_fallback();
            if self.fallback_warns > 0 {
                self.fallback_warns -= 1;
                tracing::warn!(
                    id = id,
                    remaining = self.fallback_warns,
                    "structural amendment forces a full re-slice (repair fast path unavailable)"
                );
            }
        }
        let resident = match self.residents.remove(&id) {
            Some(resident) => resident,
            None => return Err(AdmitError::NoResident { id }),
        };
        let (resident, result) = self.amend_inner(id, resident, delta);
        self.residents.insert(id, resident);
        if let Ok(decision) = &result {
            telemetry::global().record_admission(decision.admitted, started.elapsed());
        }
        result
    }

    /// Body of [`amend`](AdmissionController::amend) with the resident
    /// held out of the map (so the state and pipeline can be borrowed
    /// mutably alongside it); the caller re-inserts it on every path.
    fn amend_inner(
        &mut self,
        id: u64,
        mut resident: Resident,
        delta: &GraphDelta,
    ) -> (Resident, Result<AdmitVerdict, AdmitError>) {
        let pinning = match self
            .config
            .scenario
            .pinning
            .build(&resident.graph, &self.platform)
        {
            Ok(pinning) => pinning,
            Err(e) => return (resident, Err(AdmitError::Trial(RunError::Platform(e)))),
        };
        let amended = match delta.apply(&resident.graph, &pinning) {
            Ok(applied) => applied.graph,
            Err(e) => return (resident, Err(e.into())),
        };

        // Withdraw the resident's reservation. When it is the latest
        // commit, a receipt rollback restores the exact base content the
        // previous trial ran against, keeping the retained dispatch log
        // valid for repair; any other history forces release + full trial.
        let fast = match &self.last_commit {
            Some((last, receipt)) if *last == id => {
                self.state.rollback(&resident.schedule, receipt).is_ok()
            }
            _ => false,
        };
        if !fast {
            if let Err(e) = self.state.release(&resident.schedule) {
                return (resident, Err(e.into()));
            }
        }
        self.last_commit = None;

        match self.retrial(&amended, resident.origin, fast, &resident.schedule) {
            Ok(verdict) => {
                let repaired = verdict.repair_fell_back == Some(false);
                if verdict.admit {
                    let receipt = match self.state.commit(&verdict.schedule) {
                        Ok(receipt) => receipt,
                        Err(e) => return (resident, Err(e.into())),
                    };
                    self.last_commit = Some((id, receipt));
                    let decision =
                        self.verdict_of(id, true, repaired, &verdict, self.residents.len() + 1);
                    resident.graph = Arc::new(amended);
                    resident.horizon = verdict.makespan;
                    resident.schedule = verdict.schedule;
                    (resident, Ok(decision))
                } else {
                    // Reject leaves no trace: restore the original
                    // reservation (content-identical, so the state digest
                    // is unchanged).
                    let decision =
                        self.verdict_of(id, false, repaired, &verdict, self.residents.len() + 1);
                    match self.state.commit(&resident.schedule) {
                        Ok(receipt) => self.last_commit = Some((id, receipt)),
                        Err(e) => return (resident, Err(e.into())),
                    }
                    (resident, Ok(decision))
                }
            }
            Err(e) => {
                // Pipeline failure: restore the original reservation, then
                // surface the error.
                match self.state.commit(&resident.schedule) {
                    Ok(receipt) => self.last_commit = Some((id, receipt)),
                    Err(restore) => return (resident, Err(restore.into())),
                }
                (resident, Err(AdmitError::Trial(e)))
            }
        }
    }

    /// Re-slices and re-trials an amended graph, through the repair path
    /// when the preceding rollback kept the base content unchanged.
    fn retrial(
        &mut self,
        graph: &TaskGraph,
        origin: Time,
        fast: bool,
        prev: &Schedule,
    ) -> Result<Verdict, RunError> {
        // Amended graphs are per-resident mutations: bypass the
        // cross-request cache (see `Pipeline::suspend_slice_cache`) and
        // let the delta memo's incremental path do its work.
        let cache = self.pipeline.suspend_slice_cache();
        let sliced = self
            .pipeline
            .slice(graph, &self.platform)
            .map(Sliced::into_output);
        self.pipeline.resume_slice_cache(cache);
        let output = sliced?;
        if fast {
            self.pipeline.repair_output_against(
                graph,
                &self.platform,
                output,
                prev,
                &self.state,
                origin,
            )
        } else {
            self.pipeline
                .trial_output_against(graph, &self.platform, output, &self.state, origin)
        }
    }

    /// Releases every resident whose horizon has passed the decision
    /// clock `now` (all reserved work complete — the graph has departed).
    fn retire(&mut self, now: Time) {
        let expired: Vec<u64> = self
            .residents
            .iter()
            .filter(|(_, resident)| resident.horizon <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.evict(id);
        }
    }

    /// Removes a resident and releases its reservations. Departure stamps
    /// fresh state, so any retained rollback receipt is invalidated.
    fn evict(&mut self, id: u64) {
        if let Some(resident) = self.residents.remove(&id) {
            // Shape mismatch is impossible for a schedule this state
            // committed, so the release cannot fail meaningfully.
            let _ = self.state.release(&resident.schedule);
            self.order.retain(|&other| other != id);
            if matches!(self.last_commit, Some((last, _)) if last == id) {
                self.last_commit = None;
            }
        }
    }

    fn verdict_of(
        &self,
        id: u64,
        admitted: bool,
        repaired: bool,
        verdict: &Verdict,
        residents: usize,
    ) -> AdmitVerdict {
        AdmitVerdict {
            id,
            admitted,
            max_lateness: verdict.max_lateness,
            end_to_end: verdict.end_to_end,
            makespan: verdict.makespan,
            violations: verdict.violations(),
            repaired,
            residents,
        }
    }

    /// The committed reservations the next trial will run against.
    pub fn state(&self) -> &CommittedState {
        &self.state
    }

    /// Number of committed residents.
    pub fn residents(&self) -> usize {
        self.residents.len()
    }

    /// Whether `id` is currently resident.
    pub fn is_resident(&self, id: u64) -> bool {
        self.residents.contains_key(&id)
    }

    /// Content digest of the committed state (see
    /// [`CommittedState::digest`]); equal digests mean identical
    /// reservations.
    pub fn digest(&self) -> u64 {
        self.state.digest()
    }

    /// The configuration this controller was built from.
    pub fn config(&self) -> &AdmitConfig {
        &self.config
    }

    /// The shared deadline-miss warning budget (see
    /// [`AdmitConfig::miss_warn_limit`]).
    pub fn miss_log(&self) -> &Arc<MissLog> {
        &self.miss_log
    }
}

/// A slicing job shipped to a worker: stage one never reads committed
/// load, so it runs concurrently with other requests' trials.
struct WorkerJob {
    seq: u64,
    id: u64,
    graph: Arc<TaskGraph>,
    origin: Time,
    /// When [`AdmissionService::submit`] accepted the request — the
    /// decision budget's staleness clock.
    accepted: Instant,
}

/// A unit of serial coordinator work, tagged with its submission sequence.
enum CoordJob {
    Admit {
        seq: u64,
        id: u64,
        graph: Arc<TaskGraph>,
        origin: Time,
        accepted: Instant,
        output: Result<SliceOutput, AdmitError>,
    },
    Amend {
        seq: u64,
        id: u64,
        delta: GraphDelta,
        accepted: Instant,
    },
    /// A spurious redelivery of an already-shipped sequence (injected by
    /// the `admit-queue-race` fault site); the coordinator's dedup guard
    /// must drop it without disturbing the real job.
    Duplicate { seq: u64 },
}

impl CoordJob {
    fn seq(&self) -> u64 {
        match self {
            CoordJob::Admit { seq, .. }
            | CoordJob::Amend { seq, .. }
            | CoordJob::Duplicate { seq } => *seq,
        }
    }
}

/// How many queued requests a slicer worker drains per pickup. One
/// blocking receive plus up to `WORKER_BATCH - 1` opportunistic ones
/// amortizes the receiver-lock round trip under load, and duplicate
/// graphs inside a batch slice once; under light load `try_recv` comes
/// back empty immediately, so batching adds no latency.
const WORKER_BATCH: usize = 8;

/// Micro-seconds `accepted` has waited beyond `budget`, when over it.
fn over_budget(budget: Option<Duration>, accepted: Instant) -> Option<u64> {
    let budget = budget?;
    let waited = accepted.elapsed();
    if waited > budget {
        Some(waited.as_micros() as u64)
    } else {
        None
    }
}

/// The admission controller behind a bounded queue: a pool of slicer
/// workers distributes deadlines in parallel while a single coordinator
/// trials and commits strictly in submission order, so the service's
/// verdicts are bit-identical to a sequential [`AdmissionController`] fed
/// the same requests (the contract [`AdmissionLog::replay`] checks).
///
/// [`submit`](AdmissionService::submit) never blocks — a full queue is an
/// [`AdmitError::QueueFull`] refusal — and
/// [`shutdown`](AdmissionService::shutdown) drains every accepted request
/// before returning the transcript.
///
/// # Examples
///
/// ```
/// use feast::{AdmissionService, AdmitConfig, AdmitRequest, Scenario};
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
/// use taskgraph::Time;
///
/// # fn main() -> Result<(), feast::Error> {
/// let spec = WorkloadSpec::paper(ExecVariation::Mdet);
/// let scenario = Scenario::paper("SVC", spec.clone(), MetricKind::adapt(), CommEstimate::Ccne);
/// let service = AdmissionService::new(AdmitConfig::new(scenario, 8).with_workers(2))?;
/// for id in 0..4 {
///     let graph = generate_seeded(&spec, id).unwrap();
///     service.submit(AdmitRequest::Admit { id, graph: graph.into(), origin: Time::ZERO })?;
/// }
/// let log = service.shutdown()?;
/// assert_eq!(log.outcomes.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdmissionService {
    ingress: SyncSender<WorkerJob>,
    coord: SyncSender<CoordJob>,
    /// Next submission sequence number; the lock also serializes sends, so
    /// sequence order equals queue order.
    seq: Mutex<u64>,
    depth: usize,
    workers: Vec<JoinHandle<()>>,
    coordinator: JoinHandle<AdmissionLog>,
}

impl AdmissionService {
    /// Starts the worker pool and coordinator for `config`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`AdmissionController::new`], plus
    /// [`AdmitError::Trial`] wrapping an I/O error when a thread cannot be
    /// spawned.
    pub fn new(config: AdmitConfig) -> Result<AdmissionService, AdmitError> {
        let controller = AdmissionController::new(config.clone())?;
        let depth = config.queue_depth.max(1);
        let (ingress, worker_rx) = sync_channel::<WorkerJob>(depth);
        let (coord_tx, coord_rx) = sync_channel::<CoordJob>(depth);
        let worker_rx = Arc::new(Mutex::new(worker_rx));

        let mut workers = Vec::new();
        for index in 0..config.workers.max(1) {
            let rx = Arc::clone(&worker_rx);
            let tx = coord_tx.clone();
            let scenario = config.scenario.clone();
            let platform = controller.platform.clone();
            let miss_log = Arc::clone(&controller.miss_log);
            let budget = config.decision_budget;
            let fault = config.fault_plan.clone();
            let system_size = config.system_size;
            let prefilter_on = config.prefilter;
            let slice_cache = controller.slice_cache.clone();
            let worker = std::thread::Builder::new()
                .name(format!("admit-slicer-{index}"))
                .spawn(move || {
                    let attach = |mut pipeline: Pipeline| {
                        if let Some(cache) = &slice_cache {
                            pipeline = pipeline.with_slice_cache(Arc::clone(cache));
                        }
                        pipeline.set_miss_log(Some(Arc::clone(&miss_log)));
                        pipeline
                    };
                    let mut pipeline = attach(Pipeline::new(&scenario));
                    let mut batch: Vec<WorkerJob> = Vec::with_capacity(WORKER_BATCH);
                    loop {
                        // Take the receiver lock only to dequeue; slicing
                        // runs unlocked, concurrently across the pool.
                        // One blocking receive, then opportunistically
                        // drain up to the batch bound — under light load
                        // the batch is a single job and nothing waits.
                        batch.clear();
                        {
                            let guard = match rx.lock() {
                                Ok(guard) => guard,
                                Err(_) => return,
                            };
                            match guard.recv() {
                                Ok(job) => batch.push(job),
                                Err(_) => return,
                            }
                            while batch.len() < WORKER_BATCH {
                                match guard.try_recv() {
                                    Ok(job) => batch.push(job),
                                    Err(_) => break,
                                }
                            }
                        }
                        // Duplicate graphs inside one batch slice once:
                        // keyed by the full-content SliceKey, so reuse
                        // carries the same bit-identical-output witness
                        // the cross-request cache does. With the shared
                        // cache attached the first job's insert already
                        // turns its batch-mates into cache hits (a batch
                        // of 8 cannot evict its own entry from a 64-slot
                        // LRU), so the local table — and its second key
                        // computation per job — only runs when the cache
                        // is off. Each job still ships its own CoordJob
                        // in batch (= submission) order, so the
                        // coordinator's commit order is untouched.
                        let dedup_locally = slice_cache.is_none();
                        let mut sliced_in_batch: Vec<(slicing::SliceKey, SliceOutput)> = Vec::new();
                        for job in batch.drain(..) {
                            // Staleness-aware shedding: a request already
                            // over its decision budget is refused before
                            // any slicing work is spent on it. The typed
                            // refusal still ships, so the reorder buffer
                            // never waits on a hole.
                            let output = if let Some(waited_us) = over_budget(budget, job.accepted)
                            {
                                Err(AdmitError::Shed { waited_us })
                            } else if let Some(reject) = prefilter_on
                                .then(|| pipeline.prefilter(&job.graph, &platform))
                                .flatten()
                            {
                                // Necessary-condition bounds refuse the
                                // graph before any DP search runs; the
                                // bounds are conservative, so no admissible
                                // graph is lost here.
                                Err(AdmitError::Prefilter(reject))
                            } else {
                                let key = if dedup_locally {
                                    pipeline.slice_key(&job.graph, &platform)
                                } else {
                                    None
                                };
                                let dup = key.as_ref().and_then(|k| {
                                    sliced_in_batch
                                        .iter()
                                        .find(|(seen, _)| seen == k)
                                        .map(|(_, output)| output.clone())
                                });
                                if let Some(output) = dup {
                                    Ok(output)
                                } else {
                                    // Supervision: a panicking slicer (real
                                    // or injected) is caught, its possibly-
                                    // poisoned pipeline discarded and
                                    // rebuilt in place, and the request
                                    // concluded with a typed failure — the
                                    // service degrades by one verdict, it
                                    // never dies.
                                    let sliced = catch_unwind(AssertUnwindSafe(|| {
                                        if fault_fires(
                                            &fault,
                                            FaultSite::AdmitWorkerPanic,
                                            system_size,
                                            job.seq,
                                            0,
                                        ) {
                                            panic!("injected admission worker panic");
                                        }
                                        pipeline
                                            .slice(&job.graph, &platform)
                                            .map(Sliced::into_output)
                                    }));
                                    match sliced {
                                        Ok(Ok(output)) => {
                                            if let Some(key) = key {
                                                sliced_in_batch.push((key, output.clone()));
                                            }
                                            Ok(output)
                                        }
                                        Ok(Err(e)) => Err(AdmitError::Trial(e)),
                                        Err(_) => {
                                            pipeline = attach(Pipeline::new(&scenario));
                                            Err(AdmitError::WorkerFailed { stage: "slice" })
                                        }
                                    }
                                }
                            };
                            let seq = job.seq;
                            let shipped = tx.send(CoordJob::Admit {
                                seq,
                                id: job.id,
                                graph: job.graph,
                                origin: job.origin,
                                accepted: job.accepted,
                                output,
                            });
                            if shipped.is_err() {
                                return;
                            }
                            // Queue-race injection: redeliver the sequence.
                            // The channel is FIFO per sender, so the real
                            // job above always lands first and the
                            // coordinator's dedup guard must discard this
                            // one.
                            if fault_fires(&fault, FaultSite::AdmitQueueRace, system_size, seq, 0)
                                && tx.send(CoordJob::Duplicate { seq }).is_err()
                            {
                                return;
                            }
                        }
                    }
                })
                .map_err(|e| AdmitError::Trial(RunError::Io(e)))?;
            workers.push(worker);
        }

        let coordinator = std::thread::Builder::new()
            .name("admit-coordinator".into())
            .spawn(move || Self::coordinate(controller, coord_rx))
            .map_err(|e| AdmitError::Trial(RunError::Io(e)))?;

        Ok(AdmissionService {
            ingress,
            coord: coord_tx,
            seq: Mutex::new(0),
            depth,
            workers,
            coordinator,
        })
    }

    /// Enqueues a request without blocking: admits go to the slicer pool,
    /// amendments straight to the coordinator (they need the resident
    /// graph, which only the coordinator holds). Both carry the same
    /// submission sequence, so processing order is exactly submission
    /// order regardless of which worker finishes first.
    ///
    /// # Errors
    ///
    /// [`AdmitError::QueueFull`] when the bounded queue is full (the
    /// request was not accepted; the caller may retry) and
    /// [`AdmitError::ServiceStopped`] after shutdown began.
    pub fn submit(&self, request: AdmitRequest) -> Result<(), AdmitError> {
        let mut seq = match self.seq.lock() {
            Ok(seq) => seq,
            Err(_) => return Err(AdmitError::ServiceStopped),
        };
        fn refused<T>(depth: usize) -> impl Fn(TrySendError<T>) -> AdmitError {
            move |e| match e {
                TrySendError::Full(_) => AdmitError::QueueFull { depth },
                TrySendError::Disconnected(_) => AdmitError::ServiceStopped,
            }
        }
        let accepted = Instant::now();
        match request {
            AdmitRequest::Admit { id, graph, origin } => self
                .ingress
                .try_send(WorkerJob {
                    seq: *seq,
                    id,
                    graph,
                    origin,
                    accepted,
                })
                .map_err(refused(self.depth))?,
            AdmitRequest::Amend { id, delta } => self
                .coord
                .try_send(CoordJob::Amend {
                    seq: *seq,
                    id,
                    delta,
                    accepted,
                })
                .map_err(refused(self.depth))?,
        }
        // A sequence number is consumed only by an accepted request, so
        // the coordinator's reorder buffer never waits on a hole.
        *seq += 1;
        Ok(())
    }

    /// Stops accepting requests, drains everything already accepted, and
    /// returns the service's transcript.
    ///
    /// # Errors
    ///
    /// [`AdmitError::ServiceStopped`] if a worker or the coordinator
    /// panicked.
    pub fn shutdown(self) -> Result<AdmissionLog, AdmitError> {
        let AdmissionService {
            ingress,
            coord,
            seq: _,
            workers,
            coordinator,
            ..
        } = self;
        drop(ingress);
        for worker in workers {
            if worker.join().is_err() {
                return Err(AdmitError::ServiceStopped);
            }
        }
        drop(coord);
        coordinator.join().map_err(|_| AdmitError::ServiceStopped)
    }

    /// The coordinator: re-orders jobs into submission sequence and runs
    /// every decision serially on the single controller.
    fn coordinate(mut controller: AdmissionController, rx: Receiver<CoordJob>) -> AdmissionLog {
        let mut next = 0u64;
        let mut reorder: BTreeMap<u64, CoordJob> = BTreeMap::new();
        let mut log = AdmissionLog::default();
        while let Ok(job) = rx.recv() {
            // Dedup guard: each sequence is processed exactly once. A
            // redelivery — the injected queue race, or any future retry
            // path — is dropped whether its twin is already processed
            // (seq < next) or still waiting in the reorder buffer.
            let seq = job.seq();
            if matches!(job, CoordJob::Duplicate { .. }) || seq < next || reorder.contains_key(&seq)
            {
                tracing::warn!(seq = seq, "dropping duplicate coordinator delivery");
                continue;
            }
            reorder.insert(seq, job);
            while let Some(job) = reorder.remove(&next) {
                Self::process(&mut controller, job, &mut log);
                next += 1;
            }
        }
        // Senders are gone; every accepted sequence has arrived.
        while let Some(job) = reorder.remove(&next) {
            Self::process(&mut controller, job, &mut log);
            next += 1;
        }
        log.digest = controller.digest();
        log.residents = controller.residents();
        log
    }

    fn process(controller: &mut AdmissionController, job: CoordJob, log: &mut AdmissionLog) {
        let budget = controller.config.decision_budget;
        match job {
            CoordJob::Admit {
                id,
                graph,
                origin,
                accepted,
                output,
                ..
            } => {
                // The coordinator re-checks the budget: slicing may have
                // been fast, but a request can also go stale waiting in
                // the reorder buffer behind a slow predecessor.
                let result = match output {
                    Ok(output) => match over_budget(budget, accepted) {
                        Some(waited_us) => Err(AdmitError::Shed { waited_us }),
                        None => controller.decide(id, &graph, origin, output),
                    },
                    Err(e) => Err(e),
                };
                let request = AdmitRequest::Admit { id, graph, origin };
                Self::record(controller, log, request, result, accepted);
            }
            CoordJob::Amend {
                id,
                delta,
                accepted,
                ..
            } => {
                let result = match over_budget(budget, accepted) {
                    Some(waited_us) => Err(AdmitError::Shed { waited_us }),
                    None => controller.amend_unsealed(id, &delta),
                };
                let request = AdmitRequest::Amend { id, delta };
                Self::record(controller, log, request, result, accepted);
            }
            CoordJob::Duplicate { .. } => {
                // Unreachable past the dedup guard; nothing to process.
            }
        }
    }

    /// Concludes one request on the coordinator: seals it (through the
    /// controller's choke point), counts it, and appends it to the
    /// transcript.
    fn record(
        controller: &mut AdmissionController,
        log: &mut AdmissionLog,
        request: AdmitRequest,
        result: Result<AdmitVerdict, AdmitError>,
        accepted: Instant,
    ) {
        let result = controller.conclude(&request, result);
        let outcome = AdmitOutcome::of(&result);
        match &outcome {
            AdmitOutcome::Shed { .. } => telemetry::global().count_admission_shed(),
            AdmitOutcome::Failed { .. } => telemetry::global().count_admission_worker_failed(),
            _ => telemetry::global().record_admission_sojourn(accepted.elapsed()),
        }
        log.requests.push(request);
        log.outcomes.push(outcome);
    }
}

/// The transcript of an admission run: every request and its outcome in
/// submission order, plus the final committed-state fingerprint.
///
/// The log is the service's determinism witness:
/// [`replay`](AdmissionLog::replay) re-runs the requests through a fresh
/// *sequential* controller and must reproduce the service's verdicts and
/// digest bit for bit ([`matches`](AdmissionLog::matches)).
#[derive(Debug, Default)]
pub struct AdmissionLog {
    /// Every accepted request, in submission order.
    pub requests: Vec<AdmitRequest>,
    /// The outcome of each request, aligned with
    /// [`requests`](AdmissionLog::requests).
    pub outcomes: Vec<AdmitOutcome>,
    /// Content digest of the final committed state.
    pub digest: u64,
    /// Residents still committed at the end of the run.
    pub residents: usize,
}

impl AdmissionLog {
    /// Number of admitted requests.
    pub fn admitted(&self) -> usize {
        self.verdicts().filter(|v| v.admitted).count()
    }

    /// Number of rejected requests (successful trials that missed).
    pub fn rejected(&self) -> usize {
        self.verdicts().filter(|v| !v.admitted).count()
    }

    /// Number of requests shed over their decision budget.
    pub fn shed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, AdmitOutcome::Shed { .. }))
            .count()
    }

    /// Number of requests lost to worker failures.
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, AdmitOutcome::Failed { .. }))
            .count()
    }

    /// Number of deterministic typed refusals.
    pub fn refused(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, AdmitOutcome::Refused(_)))
            .count()
    }

    /// Number of requests refused by the feasibility pre-filter (a subset
    /// of [`refused`](AdmissionLog::refused)).
    pub fn prefilter_rejected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, AdmitOutcome::Refused(Refusal::Prefilter { .. })))
            .count()
    }

    /// The completed verdicts, in submission order.
    pub fn verdicts(&self) -> impl Iterator<Item = &AdmitVerdict> {
        self.outcomes.iter().filter_map(AdmitOutcome::verdict)
    }

    /// Re-runs this log's requests through a fresh sequential
    /// [`AdmissionController`] and returns the resulting log. Determinism
    /// means the result [`matches`](AdmissionLog::matches) `self`.
    ///
    /// Environmental outcomes (shed, worker failure) are copied verbatim —
    /// they are artifacts of queue timing and faults, not of the request
    /// sequence, and they conclude a request before any state mutation, so
    /// skipping their (never-run) trials preserves every later verdict.
    /// The replay runs in memory only, even when `config` names a WAL.
    ///
    /// # Errors
    ///
    /// Exactly those of [`AdmissionController::new`]; per-request failures
    /// are recorded in the returned log, not raised.
    pub fn replay(&self, config: &AdmitConfig) -> Result<AdmissionLog, AdmitError> {
        let mut replay_config = config.clone();
        replay_config.wal_path = None;
        let mut controller = AdmissionController::new(replay_config)?;
        let mut log = AdmissionLog {
            requests: self.requests.clone(),
            ..AdmissionLog::default()
        };
        for (request, recorded) in log.requests.iter().zip(self.outcomes.iter()) {
            let outcome = if recorded.is_environmental() {
                recorded.clone()
            } else {
                AdmitOutcome::of(&controller.handle(request))
            };
            log.outcomes.push(outcome);
        }
        log.digest = controller.digest();
        log.residents = controller.residents();
        Ok(log)
    }

    /// Whether two logs recorded identical outcomes and final state —
    /// the bit-identical replay check.
    pub fn matches(&self, other: &AdmissionLog) -> bool {
        self.outcomes == other.outcomes
            && self.digest == other.digest
            && self.residents == other.residents
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use slicing::{CommEstimate, DeltaOp, MetricKind};
    use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
    use taskgraph::SubtaskId;

    use super::*;

    /// A fresh temp-file path; the file is removed by Drop.
    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> TempPath {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            TempPath(std::env::temp_dir().join(format!(
                "feast-admission-{tag}-{}-{n}.jsonl",
                std::process::id()
            )))
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec::paper(ExecVariation::Mdet)
    }

    fn config(size: usize) -> AdmitConfig {
        let scenario = Scenario::paper("ADM/TEST", spec(), MetricKind::adapt(), CommEstimate::Ccne);
        AdmitConfig::new(scenario, size)
    }

    fn graph(seed: u64) -> Arc<TaskGraph> {
        Arc::new(generate_seeded(&spec(), seed).expect("paper workloads generate"))
    }

    #[test]
    fn admit_commits_and_reject_leaves_no_trace() {
        let mut controller = AdmissionController::new(config(8)).unwrap();
        let idle = controller.digest();

        let first = controller.admit(1, graph(1), Time::ZERO).unwrap();
        assert!(first.admitted, "paper workload fits an idle platform");
        assert_eq!(controller.residents(), 1);
        let loaded = controller.digest();
        assert_ne!(loaded, idle);

        // Pile on admissions at the same origin until one is rejected:
        // the rejection must leave the committed state bit-identical.
        let mut id = 2;
        loop {
            let before = controller.digest();
            let verdict = controller.admit(id, graph(id), Time::ZERO).unwrap();
            if !verdict.admitted {
                assert_eq!(controller.digest(), before, "reject left a trace");
                assert_eq!(controller.residents() as u64, id - 1);
                break;
            }
            id += 1;
            assert!(id < 100, "platform never saturated");
        }
    }

    #[test]
    fn residents_retire_once_the_clock_passes_their_horizon() {
        let mut controller = AdmissionController::new(config(8)).unwrap();
        let first = controller.admit(1, graph(3), Time::ZERO).unwrap();
        assert!(first.admitted);

        // A later arrival past the first graph's horizon retires it; the
        // platform is effectively idle again, so the digest after both
        // depart matches a fresh admit at that origin.
        let origin = first.makespan + Time::new(1);
        let second = controller.admit(2, graph(3), origin).unwrap();
        assert!(second.admitted);
        assert_eq!(controller.residents(), 1);
        assert!(!controller.is_resident(1));
        assert_eq!(second.max_lateness, first.max_lateness);

        let mut fresh = AdmissionController::new(config(8)).unwrap();
        fresh.admit(2, graph(3), origin).unwrap();
        assert_eq!(controller.digest(), fresh.digest());
    }

    #[test]
    fn duplicate_resident_id_is_refused() {
        let mut controller = AdmissionController::new(config(8)).unwrap();
        assert!(controller.admit(7, graph(1), Time::ZERO).unwrap().admitted);
        let digest = controller.digest();
        match controller.admit(7, graph(2), Time::ZERO) {
            Err(AdmitError::DuplicateId { id: 7 }) => {}
            other => panic!("expected DuplicateId, got {other:?}"),
        }
        assert_eq!(controller.digest(), digest);
    }

    #[test]
    fn capacity_bound_evicts_oldest_on_admit() {
        // Admit simultaneous graphs (no retirement at a common origin)
        // until the capacity bound forces an eviction on admit.
        let mut controller = AdmissionController::new(config(8).with_capacity(2)).unwrap();
        let mut admitted = Vec::new();
        for id in 1..32 {
            let verdict = controller.admit(id, graph(id), Time::ZERO).unwrap();
            if verdict.admitted {
                admitted.push(id);
            }
            if admitted.len() == 3 {
                break;
            }
        }
        assert_eq!(admitted.len(), 3, "8 processors should admit 3 graphs");
        assert_eq!(controller.residents(), 2);
        assert!(
            !controller.is_resident(admitted[0]),
            "oldest resident evicted"
        );
        assert!(controller.is_resident(admitted[1]));
        assert!(controller.is_resident(admitted[2]));
    }

    #[test]
    fn amend_repairs_in_place_and_matches_a_fresh_controller() {
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(2),
            wcet: Time::new(25),
        });

        let mut controller = AdmissionController::new(config(8)).unwrap();
        assert!(controller.admit(1, graph(5), Time::ZERO).unwrap().admitted);
        let amended = controller.amend(1, &delta).unwrap();
        assert!(
            amended.repaired,
            "latest-commit amendment takes the repair fast path"
        );

        // A fresh controller admitting the amended graph directly must
        // land on the identical committed state and lateness.
        let pinning = platform::Pinning::new();
        let applied = delta.apply(&graph(5), &pinning).unwrap();
        let mut fresh = AdmissionController::new(config(8)).unwrap();
        let direct = fresh.admit(1, applied.graph, Time::ZERO).unwrap();
        assert_eq!(controller.digest(), fresh.digest());
        assert_eq!(amended.admitted, direct.admitted);
        assert_eq!(amended.max_lateness, direct.max_lateness);
        assert_eq!(amended.makespan, direct.makespan);
    }

    #[test]
    fn amend_after_a_newer_commit_falls_back_but_stays_exact() {
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(1),
            wcet: Time::new(30),
        });

        let mut controller = AdmissionController::new(config(8)).unwrap();
        assert!(controller.admit(1, graph(5), Time::ZERO).unwrap().admitted);
        assert!(controller.admit(2, graph(6), Time::ZERO).unwrap().admitted);
        // Resident 1 is no longer the latest commit: rollback is
        // impossible, so the amendment releases and re-trials in full.
        let amended = controller.amend(1, &delta).unwrap();
        assert!(!amended.repaired);

        // The fallback path is still deterministic: a fresh controller
        // handling the identical request sequence lands on the identical
        // verdict and committed state.
        let mut fresh = AdmissionController::new(config(8)).unwrap();
        fresh.admit(1, graph(5), Time::ZERO).unwrap();
        fresh.admit(2, graph(6), Time::ZERO).unwrap();
        let replayed = fresh.amend(1, &delta).unwrap();
        assert_eq!(amended, replayed);
        assert_eq!(controller.digest(), fresh.digest());
    }

    #[test]
    fn amend_unknown_resident_is_refused_without_mutation() {
        let mut controller = AdmissionController::new(config(4)).unwrap();
        assert!(controller.admit(1, graph(1), Time::ZERO).unwrap().admitted);
        let digest = controller.digest();
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(0),
            wcet: Time::new(9),
        });
        match controller.amend(99, &delta) {
            Err(AdmitError::NoResident { id: 99 }) => {}
            other => panic!("expected NoResident, got {other:?}"),
        }
        assert_eq!(controller.digest(), digest);
    }

    #[test]
    fn service_matches_sequential_replay() {
        let config = config(8).with_workers(3).with_queue_depth(64);
        let service = AdmissionService::new(config.clone()).unwrap();
        for id in 0..12 {
            service
                .submit(AdmitRequest::Admit {
                    id,
                    graph: graph(id + 1),
                    origin: Time::new(i64::try_from(id).unwrap() * 500),
                })
                .unwrap();
        }
        let log = service.shutdown().unwrap();
        assert_eq!(log.outcomes.len(), 12);
        assert!(log.admitted() > 0);

        let replayed = log.replay(&config).unwrap();
        assert!(log.matches(&replayed), "service diverged from replay");
    }

    #[test]
    fn service_amendments_keep_submission_order() {
        let config = config(8).with_workers(2);
        let service = AdmissionService::new(config.clone()).unwrap();
        service
            .submit(AdmitRequest::Admit {
                id: 1,
                graph: graph(5),
                origin: Time::ZERO,
            })
            .unwrap();
        // The amendment is submitted while the admit may still be slicing
        // on a worker; sequence ordering must hold it back regardless.
        service
            .submit(AdmitRequest::Amend {
                id: 1,
                delta: GraphDelta::new().push(DeltaOp::SetWcet {
                    subtask: SubtaskId::new(3),
                    wcet: Time::new(40),
                }),
            })
            .unwrap();
        let log = service.shutdown().unwrap();
        assert_eq!(log.outcomes.len(), 2);
        assert!(
            log.outcomes[1].verdict().is_some(),
            "amend found its resident"
        );
        let replayed = log.replay(&config).unwrap();
        assert!(log.matches(&replayed));
    }

    #[test]
    fn durable_controller_recovers_bit_identical() {
        let wal = TempPath::new("recover");
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(2),
            wcet: Time::new(25),
        });

        let mut durable = AdmissionController::new(config(8).durable(&wal.0)).unwrap();
        for id in 1..6 {
            durable.admit(id, graph(id), Time::ZERO).unwrap();
        }
        durable.amend(1, &delta).unwrap();
        // A deterministic refusal is sealed too.
        assert!(matches!(
            durable.admit(1, graph(9), Time::ZERO),
            Err(AdmitError::DuplicateId { id: 1 })
        ));
        let digest = durable.digest();
        let residents = durable.residents();
        drop(durable); // crash stand-in: recovery reads only the file

        let (recovered, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(recovered.digest(), digest, "recovered state diverged");
        assert_eq!(recovered.residents(), residents);
        assert_eq!(log.outcomes.len(), 7);
        assert_eq!(log.refused(), 1);
        let replayed = log.replay(&config(8)).unwrap();
        assert!(log.matches(&replayed));
    }

    #[test]
    fn recovered_controller_keeps_appending_to_the_same_log() {
        let wal = TempPath::new("reattach");
        let mut durable = AdmissionController::new(config(8).durable(&wal.0)).unwrap();
        durable.admit(1, graph(1), Time::ZERO).unwrap();
        drop(durable);

        let (mut recovered, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(log.outcomes.len(), 1);
        recovered.admit(2, graph(2), Time::ZERO).unwrap();
        let digest = recovered.digest();
        drop(recovered);

        let (again, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(log.outcomes.len(), 2, "post-recovery admit was sealed");
        assert_eq!(again.digest(), digest);
    }

    #[test]
    fn recovery_tolerates_a_torn_final_line() {
        let wal = TempPath::new("torn");
        let mut durable = AdmissionController::new(config(8).durable(&wal.0)).unwrap();
        for id in 1..5 {
            durable.admit(id, graph(id), Time::ZERO).unwrap();
        }
        drop(durable);
        let (intact, _) = AdmissionController::recover(config(8), &wal.0).unwrap();
        let _ = intact;

        // Tear the final record mid-line, as a crash mid-append would.
        let text = std::fs::read_to_string(&wal.0).unwrap();
        let torn = &text[..text.len() - 17];
        std::fs::write(&wal.0, torn).unwrap();

        let (recovered, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(log.outcomes.len(), 3, "torn record dropped, prefix kept");
        let mut fresh = AdmissionController::new(config(8)).unwrap();
        for id in 1..4 {
            fresh.admit(id, graph(id), Time::ZERO).unwrap();
        }
        assert_eq!(recovered.digest(), fresh.digest());
    }

    #[test]
    fn appends_after_torn_tail_recovery_do_not_merge_with_the_fragment() {
        let wal = TempPath::new("torn-append");
        let mut durable = AdmissionController::new(config(8).durable(&wal.0)).unwrap();
        for id in 1..5 {
            durable.admit(id, graph(id), Time::ZERO).unwrap();
        }
        drop(durable);

        // Tear the final record mid-line, recover, and keep appending:
        // the fragment must be truncated, not fused with the new record.
        let text = std::fs::read_to_string(&wal.0).unwrap();
        std::fs::write(&wal.0, &text[..text.len() - 17]).unwrap();
        let (mut recovered, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(log.outcomes.len(), 3);
        recovered.admit(9, graph(9), Time::ZERO).unwrap();
        let digest = recovered.digest();
        drop(recovered);

        let (again, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(log.outcomes.len(), 4, "post-recovery admit sealed cleanly");
        assert_eq!(again.digest(), digest);
    }

    #[test]
    fn appends_after_a_missing_final_newline_start_a_fresh_line() {
        let wal = TempPath::new("unterminated");
        let mut durable = AdmissionController::new(config(8).durable(&wal.0)).unwrap();
        durable.admit(1, graph(1), Time::ZERO).unwrap();
        durable.admit(2, graph(2), Time::ZERO).unwrap();
        drop(durable);

        // Strip only the trailing newline: the final record is intact and
        // must be kept — and the next append must restore the terminator
        // rather than writing onto the same line.
        let text = std::fs::read_to_string(&wal.0).unwrap();
        assert!(text.ends_with('\n'));
        std::fs::write(&wal.0, &text[..text.len() - 1]).unwrap();
        let (mut recovered, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(log.outcomes.len(), 2, "unterminated final record kept");
        recovered.admit(3, graph(3), Time::ZERO).unwrap();
        let digest = recovered.digest();
        drop(recovered);

        let (again, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(log.outcomes.len(), 3);
        assert_eq!(again.digest(), digest);
    }

    #[test]
    fn wal_fingerprint_separates_capacity_from_eviction_policy() {
        // Craft a (capacity, policy) pair that would collide with the
        // base configuration if capacity and policy-name hash were XORed
        // into a single fingerprint input word.
        let oldest = stream_label(b"oldest-first");
        let lowest = stream_label(b"lowest-utilization");
        let base = config(8).with_capacity(16);
        let crafted = config(8)
            .with_capacity((16u64 ^ oldest ^ lowest) as usize)
            .with_eviction(LowestUtilization);
        assert_eq!(
            (base.capacity as u64) ^ oldest,
            (crafted.capacity as u64) ^ lowest,
            "the crafted pair must collide under the old XOR folding"
        );
        assert_ne!(wal_fingerprint(&base), wal_fingerprint(&crafted));
    }

    #[test]
    fn refusals_seal_stable_tags_not_rendered_messages() {
        let wal = TempPath::new("refusal");
        let mut durable = AdmissionController::new(config(8).durable(&wal.0)).unwrap();
        durable.admit(1, graph(1), Time::ZERO).unwrap();
        let refusal = durable.admit(1, graph(2), Time::ZERO).unwrap_err();
        drop(durable);

        // The WAL carries the structured refusal, never the Display
        // rendering — rewording an error message must not invalidate it.
        let text = std::fs::read_to_string(&wal.0).unwrap();
        assert!(
            !text.contains(&refusal.to_string()),
            "WAL sealed a rendered error message"
        );
        assert!(text.contains("DuplicateId"), "structured refusal missing");
        let (_, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
        assert_eq!(log.refused(), 1);
        assert_eq!(
            log.outcomes[1],
            AdmitOutcome::Refused(Refusal::DuplicateId { id: 1 })
        );
    }

    #[test]
    fn recovery_refuses_a_mismatching_configuration() {
        let wal = TempPath::new("mismatch");
        let mut durable = AdmissionController::new(config(8).durable(&wal.0)).unwrap();
        durable.admit(1, graph(1), Time::ZERO).unwrap();
        drop(durable);

        match AdmissionController::recover(config(4), &wal.0) {
            Err(AdmitError::Log(RunError::CheckpointMismatch { .. })) => {}
            other => panic!("expected a fingerprint mismatch, got {other:?}"),
        }
        match AdmissionController::recover(config(8).with_eviction(LowestUtilization), &wal.0) {
            Err(AdmitError::Log(RunError::CheckpointMismatch { .. })) => {}
            other => panic!("expected an eviction-policy mismatch, got {other:?}"),
        }
    }

    #[test]
    fn recovery_rejects_mid_file_corruption() {
        let wal = TempPath::new("corrupt");
        let mut durable = AdmissionController::new(config(8).durable(&wal.0)).unwrap();
        for id in 1..4 {
            durable.admit(id, graph(id), Time::ZERO).unwrap();
        }
        drop(durable);

        // Flip a digit inside the *second* record (not the final line, so
        // the torn-tail tolerance must not apply).
        let text = std::fs::read_to_string(&wal.0).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let target = &mut lines[2];
        let pos = target
            .char_indices()
            .position(|(_, c)| c.is_ascii_digit())
            .expect("record contains digits");
        let original = target.as_bytes()[pos];
        let flipped = if original == b'9' { b'0' } else { original + 1 };
        target.replace_range(pos..=pos, std::str::from_utf8(&[flipped]).unwrap());
        std::fs::write(&wal.0, lines.join("\n") + "\n").unwrap();

        match AdmissionController::recover(config(8), &wal.0) {
            Err(AdmitError::Log(RunError::CheckpointCorrupt { .. })) => {}
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn lowest_utilization_policy_picks_the_idlest_resident() {
        let candidates = vec![
            EvictionCandidate {
                id: 1,
                seniority: 0,
                origin: Time::ZERO,
                horizon: Time::new(100),
                busy: Time::new(90),
            },
            EvictionCandidate {
                id: 2,
                seniority: 1,
                origin: Time::ZERO,
                horizon: Time::new(100),
                busy: Time::new(10),
            },
            EvictionCandidate {
                id: 3,
                seniority: 2,
                origin: Time::ZERO,
                horizon: Time::new(100),
                busy: Time::new(50),
            },
        ];
        assert_eq!(OldestFirst.victim(&candidates), 1);
        assert_eq!(LowestUtilization.victim(&candidates), 2);
        // Ties break oldest-first: equal utilization, distinct
        // seniorities — the lower seniority must win regardless of
        // candidate order.
        let tied = vec![
            EvictionCandidate {
                id: 7,
                seniority: 3,
                origin: Time::ZERO,
                horizon: Time::new(100),
                busy: Time::new(10),
            },
            EvictionCandidate {
                id: 8,
                seniority: 1,
                origin: Time::ZERO,
                horizon: Time::new(100),
                busy: Time::new(10),
            },
        ];
        assert_eq!(LowestUtilization.victim(&tied), 8);
        let reversed: Vec<_> = tied.iter().rev().copied().collect();
        assert_eq!(LowestUtilization.victim(&reversed), 8);
    }

    #[test]
    fn eviction_policy_changes_the_victim_in_a_live_controller() {
        let mut controller =
            AdmissionController::new(config(8).with_capacity(2).with_eviction(LowestUtilization))
                .unwrap();
        let mut admitted = Vec::new();
        for id in 1..32 {
            let verdict = controller.admit(id, graph(id), Time::ZERO).unwrap();
            if verdict.admitted {
                admitted.push(id);
            }
            if admitted.len() == 3 {
                break;
            }
        }
        assert_eq!(admitted.len(), 3);
        assert_eq!(controller.residents(), 2, "capacity bound held");
    }

    #[test]
    fn shed_outcomes_leave_no_trace_and_replay_verbatim() {
        // A zero budget sheds every service request before any slicing.
        let config = config(8)
            .with_workers(2)
            .with_decision_budget(Duration::ZERO);
        let service = AdmissionService::new(config.clone()).unwrap();
        for id in 0..6 {
            service
                .submit(AdmitRequest::Admit {
                    id,
                    graph: graph(id + 1),
                    origin: Time::ZERO,
                })
                .unwrap();
        }
        let log = service.shutdown().unwrap();
        assert_eq!(log.outcomes.len(), 6);
        assert_eq!(log.shed(), 6, "zero budget sheds everything");
        assert_eq!(log.admitted(), 0);
        assert_eq!(log.residents, 0, "shed requests leave no residents");

        let idle = AdmissionController::new(config.clone()).unwrap();
        assert_eq!(log.digest, idle.digest(), "shed requests left a trace");

        let replayed = log.replay(&config).unwrap();
        assert!(log.matches(&replayed), "shed outcomes must copy verbatim");
    }

    #[test]
    fn sequential_controller_ignores_the_decision_budget() {
        let mut controller =
            AdmissionController::new(config(8).with_decision_budget(Duration::ZERO)).unwrap();
        let verdict = controller.admit(1, graph(1), Time::ZERO).unwrap();
        assert!(verdict.admitted, "no queue, nothing to shed");
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        // A rendezvous ingress (depth clamps to 1) with a saturated
        // pool: submissions beyond the in-flight capacity are refused.
        let config = config(4).with_workers(1).with_queue_depth(1);
        let service = AdmissionService::new(config.clone()).unwrap();
        let mut refused = 0;
        for id in 0..64 {
            match service.submit(AdmitRequest::Admit {
                id,
                graph: graph(1),
                origin: Time::ZERO,
            }) {
                Ok(()) => {}
                Err(AdmitError::QueueFull { depth }) => {
                    assert_eq!(depth, 1);
                    refused += 1;
                }
                Err(other) => panic!("unexpected refusal: {other}"),
            }
        }
        let log = service.shutdown().unwrap();
        assert_eq!(log.outcomes.len() + refused, 64);
        // Refused submissions consumed no sequence numbers: the accepted
        // ones replay cleanly.
        let replayed = log.replay(&config).unwrap();
        assert!(log.matches(&replayed));
    }

    #[cfg(feature = "fault-inject")]
    mod fault_inject {
        use crate::fault::FaultSpec;

        use super::*;

        #[test]
        fn worker_panic_becomes_one_typed_failure_and_the_service_survives() {
            // Pick a seed whose plan panics exactly one of the 8 requests,
            // so the assertion is exact rather than statistical.
            let plan_for = |seed: u64| {
                FaultPlan::new(seed).with_fault(FaultSpec::new(FaultSite::AdmitWorkerPanic, 0.2))
            };
            let (seed, victim) = (0..500u64)
                .find_map(|seed| {
                    let plan = plan_for(seed);
                    let firing: Vec<u64> = (0..8)
                        .filter(|&s| {
                            plan.should_fire(FaultSite::AdmitWorkerPanic, 8, s as usize, 0)
                        })
                        .collect();
                    match firing.as_slice() {
                        [only] => Some((seed, *only)),
                        _ => None,
                    }
                })
                .expect("some seed fires exactly once in 8 draws");

            let config = config(8).with_workers(2).with_fault_plan(plan_for(seed));
            let service = AdmissionService::new(config.clone()).unwrap();
            for id in 0..8 {
                service
                    .submit(AdmitRequest::Admit {
                        id,
                        graph: graph(id + 1),
                        origin: Time::new(i64::try_from(id).unwrap() * 500),
                    })
                    .unwrap();
            }
            let log = service.shutdown().unwrap();
            assert_eq!(log.outcomes.len(), 8, "service concluded every request");
            assert_eq!(log.failed(), 1, "exactly one typed worker failure");
            assert!(matches!(
                &log.outcomes[victim as usize],
                AdmitOutcome::Failed { stage } if stage == "slice"
            ));
            assert_eq!(log.verdicts().count(), 7, "every other request decided");
            let replayed = log.replay(&config).unwrap();
            assert!(log.matches(&replayed), "failure outcome replays verbatim");
        }

        #[test]
        fn queue_race_duplicates_are_dropped_by_the_dedup_guard() {
            // Redeliver every sequence: each request must still conclude
            // exactly once, in order, with unchanged verdicts.
            let plan =
                FaultPlan::new(11).with_fault(FaultSpec::new(FaultSite::AdmitQueueRace, 1.0));
            let config = config(8).with_workers(3).with_fault_plan(plan);
            let service = AdmissionService::new(config.clone()).unwrap();
            for id in 0..10 {
                service
                    .submit(AdmitRequest::Admit {
                        id,
                        graph: graph(id + 1),
                        origin: Time::new(i64::try_from(id).unwrap() * 500),
                    })
                    .unwrap();
            }
            let log = service.shutdown().unwrap();
            assert_eq!(log.outcomes.len(), 10, "each sequence concluded once");
            let replayed = log.replay(&config).unwrap();
            assert!(log.matches(&replayed));
        }

        #[test]
        fn transient_log_io_faults_retry_and_the_log_stays_durable() {
            let wal = TempPath::new("faulty-io");
            // Every append fails twice, then the retry clears it.
            let plan = FaultPlan::new(3)
                .with_fault(FaultSpec::new(FaultSite::AdmitLogIo, 1.0).transient(2));
            let mut durable =
                AdmissionController::new(config(8).durable(&wal.0).with_fault_plan(plan)).unwrap();
            for id in 1..4 {
                durable.admit(id, graph(id), Time::ZERO).unwrap();
            }
            let digest = durable.digest();
            drop(durable);

            let (recovered, log) = AdmissionController::recover(config(8), &wal.0).unwrap();
            assert_eq!(log.outcomes.len(), 3, "no record lost to the faults");
            assert_eq!(recovered.digest(), digest);
        }

        #[test]
        fn injected_corruption_is_detected_on_recovery() {
            // Pick a seed that corrupts a record which is *not* the final
            // line, so the torn-tail tolerance cannot excuse it.
            let plan_for = |seed: u64| {
                FaultPlan::new(seed).with_fault(FaultSpec::new(FaultSite::AdmitLogCorrupt, 0.3))
            };
            let seed = (0..500u64)
                .find(|&seed| {
                    let plan = plan_for(seed);
                    plan.should_fire(FaultSite::AdmitLogCorrupt, 8, 1, 0)
                        && !plan.should_fire(FaultSite::AdmitLogCorrupt, 8, 2, 0)
                })
                .expect("some seed corrupts only the middle record");

            let wal = TempPath::new("faulty-crc");
            let mut durable =
                AdmissionController::new(config(8).durable(&wal.0).with_fault_plan(plan_for(seed)))
                    .unwrap();
            for id in 1..4 {
                durable.admit(id, graph(id), Time::ZERO).unwrap();
            }
            drop(durable);

            match AdmissionController::recover(config(8), &wal.0) {
                Err(AdmitError::Log(RunError::CheckpointCorrupt { .. })) => {}
                other => panic!("expected CheckpointCorrupt, got {other:?}"),
            }
        }
    }
}
