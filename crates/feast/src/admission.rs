//! Online admission control: the paper's pipeline as a long-running
//! scheduler service.
//!
//! The sweep engine answers an *offline* question — how late does a
//! technique run over thousands of independent replications. This module
//! answers the *online* one: task graphs arrive one by one at a live
//! platform that already carries committed reservations, and each must be
//! answered admit/reject **now**, with the predicted worst-case lateness
//! it would incur against the platform's current load.
//!
//! * [`AdmissionController`] — the sequential core. Owns one [`Pipeline`],
//!   one [`CommittedState`] and the resident set; [`admit`] trial-schedules
//!   a new graph around the committed reservations (admitted graphs commit
//!   exactly the trialed schedule, rejected ones leave no trace) and
//!   [`amend`] re-trials a resident after a [`GraphDelta`], preferring the
//!   rollback + schedule-repair fast path.
//! * [`AdmissionService`] — the same semantics behind a bounded queue:
//!   slicer workers distribute deadlines in parallel (stage one of the
//!   pipeline never reads committed load), a single coordinator re-orders
//!   their products by submission sequence and runs every trial + commit
//!   in submission order, so concurrency never changes a verdict.
//! * [`AdmissionLog`] — the service's full transcript: every request and
//!   outcome in submission order plus the final state digest. Replaying it
//!   through a fresh sequential controller ([`AdmissionLog::replay`])
//!   reproduces bit-identical verdicts — the determinism contract tests
//!   and load harnesses check.
//!
//! A verdict is a *prediction under the trialed load*, not a
//! schedulability proof: admitted means the non-preemptive EDF trial met
//! every sliced deadline given the reservations committed at decision
//! time. Residents depart automatically once the decision clock passes
//! their horizon (last reserved completion), and a capacity bound evicts
//! the oldest residents on admit so the committed state stays small.
//!
//! [`admit`]: AdmissionController::admit
//! [`amend`]: AdmissionController::amend

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use platform::Platform;
use sched::{CommitReceipt, CommittedState, MissLog, Schedule};
use serde::{Deserialize, Serialize};
use slicing::GraphDelta;
use taskgraph::{TaskGraph, Time};

use crate::error::AdmitError;
use crate::pipeline::{Pipeline, SliceOutput, Sliced, Verdict};
use crate::scenario::Scenario;
use crate::{telemetry, RunError};

/// Configuration of an admission controller or service: the pipeline
/// scenario, the platform size, and the service's operational bounds.
#[derive(Debug, Clone)]
pub struct AdmitConfig {
    /// The pipeline configuration: technique, scheduler spec, pinning
    /// policy. Sweep shape (sizes, replications, seeds) is ignored.
    pub scenario: Scenario,
    /// Number of processors in the live platform.
    pub system_size: usize,
    /// Bound of the service's ingress queue; [`AdmissionService::submit`]
    /// refuses with [`AdmitError::QueueFull`] instead of blocking.
    pub queue_depth: usize,
    /// Maximum number of resident (committed) graphs; an admit beyond the
    /// bound evicts the oldest residents first.
    pub capacity: usize,
    /// Number of parallel slicer workers in an [`AdmissionService`].
    pub workers: usize,
    /// Per-service budget of individually logged deadline-miss warnings;
    /// misses beyond it are counted silently (see [`MissLog`]).
    pub miss_warn_limit: u64,
}

impl AdmitConfig {
    /// A configuration with service defaults: queue depth 256, capacity
    /// 64 residents, 4 slicer workers, 8 logged miss warnings.
    pub fn new(scenario: Scenario, system_size: usize) -> AdmitConfig {
        AdmitConfig {
            scenario,
            system_size,
            queue_depth: 256,
            capacity: 64,
            workers: 4,
            miss_warn_limit: 8,
        }
    }

    /// Sets the ingress queue bound (clamped to at least 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Sets the resident capacity bound (clamped to at least 1).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the number of slicer workers (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the deadline-miss warning budget.
    #[must_use]
    pub fn with_miss_warn_limit(mut self, limit: u64) -> Self {
        self.miss_warn_limit = limit;
        self
    }
}

/// One request to the admission service, identified by a caller-chosen id.
///
/// Requests are processed strictly in submission order; the id names the
/// resident for later amendment and must be unique among live residents.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitRequest {
    /// Admit a new task graph arriving at absolute time `origin`.
    Admit {
        /// Caller-chosen resident id (unique among live residents).
        id: u64,
        /// The arriving task graph, in graph-local time. Shared so the
        /// queue, the transcript, and the resident set all reference one
        /// allocation — cloning a request never copies the graph.
        graph: Arc<TaskGraph>,
        /// Absolute arrival time; every sliced window is re-anchored here.
        origin: Time,
    },
    /// Amend a resident graph and re-trial it at its original origin.
    Amend {
        /// The resident to amend.
        id: u64,
        /// The structural amendment to apply.
        delta: GraphDelta,
    },
}

impl AdmitRequest {
    /// The resident id this request names.
    pub fn id(&self) -> u64 {
        match self {
            AdmitRequest::Admit { id, .. } | AdmitRequest::Amend { id, .. } => *id,
        }
    }
}

/// The decision for one request: admit/reject plus the trial's predicted
/// lateness figures.
///
/// Deliberately excludes wall-clock latency (that goes to the telemetry
/// registry), so replaying a request log reproduces verdicts bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmitVerdict {
    /// The request's resident id.
    pub id: u64,
    /// Did the trial meet every sliced deadline? Admitted graphs have
    /// their trial schedule committed; rejected ones leave no trace.
    pub admitted: bool,
    /// Predicted maximum task lateness (negative values are slack).
    pub max_lateness: Time,
    /// Predicted maximum end-to-end lateness, relative to the origin.
    pub end_to_end: Time,
    /// Completion time of the trialed schedule (absolute time); an
    /// admitted resident departs once the decision clock passes it.
    pub makespan: Time,
    /// Structural violations found by the always-on window and schedule
    /// audits (expected zero).
    pub violations: usize,
    /// For amendments: whether the schedule-repair fast path produced the
    /// verdict (`false` when the trial re-ran in full — same result,
    /// more work).
    pub repaired: bool,
    /// Residents committed after this decision.
    pub residents: usize,
}

/// One committed admission: the graph, its reserved schedule, and when it
/// arrived / departs.
#[derive(Debug)]
struct Resident {
    graph: Arc<TaskGraph>,
    schedule: Schedule,
    origin: Time,
    horizon: Time,
}

/// The sequential admission core: one pipeline, one committed state, the
/// resident set. Processes one request at a time; [`AdmissionService`]
/// wraps it with a queue and parallel slicers without changing any
/// verdict.
///
/// # Examples
///
/// ```
/// use feast::{AdmissionController, AdmitConfig, Scenario};
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
/// use taskgraph::Time;
///
/// # fn main() -> Result<(), feast::Error> {
/// let spec = WorkloadSpec::paper(ExecVariation::Mdet);
/// let scenario = Scenario::paper("ADM", spec.clone(), MetricKind::adapt(), CommEstimate::Ccne);
/// let mut controller = AdmissionController::new(AdmitConfig::new(scenario, 8))?;
///
/// let graph = generate_seeded(&spec, 1).unwrap();
/// let verdict = controller.admit(1, graph, Time::ZERO)?;
/// assert_eq!(controller.residents(), usize::from(verdict.admitted));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmitConfig,
    platform: Platform,
    pipeline: Pipeline,
    state: CommittedState,
    residents: BTreeMap<u64, Resident>,
    /// Resident ids in admission order — the capacity bound's eviction
    /// queue.
    order: VecDeque<u64>,
    /// The latest commit, if its receipt is still rollback-eligible:
    /// amendments to this resident can withdraw it without invalidating
    /// the scheduler's retained dispatch log.
    last_commit: Option<(u64, CommitReceipt)>,
    miss_log: Arc<MissLog>,
}

impl AdmissionController {
    /// Builds the live platform and an idle (empty) committed state for
    /// `config`.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError::Trial`] when the platform cannot be
    /// constructed (e.g. zero processors).
    pub fn new(config: AdmitConfig) -> Result<AdmissionController, AdmitError> {
        let topology = config
            .scenario
            .topology
            .build(config.system_size, config.scenario.cost_per_item);
        let platform =
            Platform::homogeneous(config.system_size, topology).map_err(RunError::Platform)?;
        let miss_log = Arc::new(MissLog::new(config.miss_warn_limit));
        let mut pipeline = Pipeline::new(&config.scenario).with_delta_memo();
        pipeline.set_miss_log(Some(Arc::clone(&miss_log)));
        let state = CommittedState::new(config.system_size, config.scenario.scheduler.bus_model);
        Ok(AdmissionController {
            config,
            platform,
            pipeline,
            state,
            residents: BTreeMap::new(),
            order: VecDeque::new(),
            last_commit: None,
            miss_log,
        })
    }

    /// Processes one request: [`admit`](AdmissionController::admit) or
    /// [`amend`](AdmissionController::amend). This is the replay entry
    /// point — feeding a recorded request sequence through `handle`
    /// reproduces the original verdicts bit for bit.
    ///
    /// # Errors
    ///
    /// Exactly those of the dispatched method.
    pub fn handle(&mut self, request: &AdmitRequest) -> Result<AdmitVerdict, AdmitError> {
        match request {
            AdmitRequest::Admit { id, graph, origin } => {
                self.admit(*id, Arc::clone(graph), *origin)
            }
            AdmitRequest::Amend { id, delta } => self.amend(*id, delta),
        }
    }

    /// Slices `graph` and trial-schedules it around the current committed
    /// reservations at absolute time `origin`. On admit the trial schedule
    /// is committed as a reservation; on reject the state is left exactly
    /// as the retirement of expired residents left it.
    ///
    /// Processing first advances the decision clock to `origin`: residents
    /// whose horizon has passed depart. That retirement depends only on
    /// `origin`, never on this request's verdict.
    ///
    /// # Errors
    ///
    /// [`AdmitError::DuplicateId`] when `id` is already resident, and
    /// [`AdmitError::Trial`] when the pipeline itself fails. A *reject* is
    /// not an error — it is an `Ok` verdict with `admitted == false`.
    pub fn admit(
        &mut self,
        id: u64,
        graph: impl Into<Arc<TaskGraph>>,
        origin: Time,
    ) -> Result<AdmitVerdict, AdmitError> {
        let graph = graph.into();
        let output = self.pipeline.slice(&graph, &self.platform)?.into_output();
        self.decide(id, &graph, origin, output)
    }

    /// The serial half of an admit: retire, trial against committed load,
    /// commit on admit. The service's coordinator calls this with products
    /// sliced on worker threads.
    pub(crate) fn decide(
        &mut self,
        id: u64,
        graph: &Arc<TaskGraph>,
        origin: Time,
        output: SliceOutput,
    ) -> Result<AdmitVerdict, AdmitError> {
        let started = Instant::now();
        self.retire(origin);
        if self.residents.contains_key(&id) {
            return Err(AdmitError::DuplicateId { id });
        }
        let verdict = self.pipeline.trial_output_against(
            graph,
            &self.platform,
            output,
            &self.state,
            origin,
        )?;
        let admitted = verdict.admit;
        if admitted {
            // The capacity bound evicts oldest-first, only on an actual
            // admit. The trial ran with the evictees still resident, so
            // its schedule avoids their reservations too — committing it
            // after they leave is strictly sound.
            while self.residents.len() >= self.config.capacity.max(1) {
                match self.order.front().copied() {
                    Some(oldest) => self.evict(oldest),
                    None => break,
                }
            }
            let receipt = self.state.commit(&verdict.schedule)?;
            self.last_commit = Some((id, receipt));
            let decision = self.verdict_of(id, true, false, &verdict, self.residents.len() + 1);
            self.residents.insert(
                id,
                Resident {
                    graph: Arc::clone(graph),
                    horizon: verdict.makespan,
                    origin,
                    schedule: verdict.schedule,
                },
            );
            self.order.push_back(id);
            telemetry::global().record_admission(true, started.elapsed());
            Ok(decision)
        } else {
            let decision = self.verdict_of(id, false, false, &verdict, self.residents.len());
            telemetry::global().record_admission(false, started.elapsed());
            Ok(decision)
        }
    }

    /// Applies `delta` to the resident `id`, withdraws its reservation and
    /// re-trials the amended graph at its original origin. On admit the
    /// new schedule replaces the old reservation; on reject (or any
    /// pipeline error) the original reservation is restored unchanged.
    ///
    /// When the resident's commit is still the state's latest mutation,
    /// withdrawal is a receipt rollback and the re-trial runs through the
    /// scheduler's repair path, reusing every dispatch the amendment did
    /// not disturb; otherwise it releases and re-trials in full. Both
    /// paths produce bit-identical verdicts — the fast path is reported in
    /// [`AdmitVerdict::repaired`].
    ///
    /// # Errors
    ///
    /// [`AdmitError::NoResident`] for an unknown id,
    /// [`AdmitError::Delta`] when the amendment does not apply, and
    /// [`AdmitError::Trial`] when the pipeline itself fails.
    pub fn amend(&mut self, id: u64, delta: &GraphDelta) -> Result<AdmitVerdict, AdmitError> {
        let started = Instant::now();
        let resident = match self.residents.remove(&id) {
            Some(resident) => resident,
            None => return Err(AdmitError::NoResident { id }),
        };
        let (resident, result) = self.amend_inner(id, resident, delta);
        self.residents.insert(id, resident);
        if let Ok(decision) = &result {
            telemetry::global().record_admission(decision.admitted, started.elapsed());
        }
        result
    }

    /// Body of [`amend`](AdmissionController::amend) with the resident
    /// held out of the map (so the state and pipeline can be borrowed
    /// mutably alongside it); the caller re-inserts it on every path.
    fn amend_inner(
        &mut self,
        id: u64,
        mut resident: Resident,
        delta: &GraphDelta,
    ) -> (Resident, Result<AdmitVerdict, AdmitError>) {
        let pinning = match self
            .config
            .scenario
            .pinning
            .build(&resident.graph, &self.platform)
        {
            Ok(pinning) => pinning,
            Err(e) => return (resident, Err(AdmitError::Trial(RunError::Platform(e)))),
        };
        let amended = match delta.apply(&resident.graph, &pinning) {
            Ok(applied) => applied.graph,
            Err(e) => return (resident, Err(e.into())),
        };

        // Withdraw the resident's reservation. When it is the latest
        // commit, a receipt rollback restores the exact base content the
        // previous trial ran against, keeping the retained dispatch log
        // valid for repair; any other history forces release + full trial.
        let fast = match &self.last_commit {
            Some((last, receipt)) if *last == id => {
                self.state.rollback(&resident.schedule, receipt).is_ok()
            }
            _ => false,
        };
        if !fast {
            if let Err(e) = self.state.release(&resident.schedule) {
                return (resident, Err(e.into()));
            }
        }
        self.last_commit = None;

        match self.retrial(&amended, resident.origin, fast, &resident.schedule) {
            Ok(verdict) => {
                let repaired = verdict.repair_fell_back == Some(false);
                if verdict.admit {
                    let receipt = match self.state.commit(&verdict.schedule) {
                        Ok(receipt) => receipt,
                        Err(e) => return (resident, Err(e.into())),
                    };
                    self.last_commit = Some((id, receipt));
                    let decision =
                        self.verdict_of(id, true, repaired, &verdict, self.residents.len() + 1);
                    resident.graph = Arc::new(amended);
                    resident.horizon = verdict.makespan;
                    resident.schedule = verdict.schedule;
                    (resident, Ok(decision))
                } else {
                    // Reject leaves no trace: restore the original
                    // reservation (content-identical, so the state digest
                    // is unchanged).
                    let decision =
                        self.verdict_of(id, false, repaired, &verdict, self.residents.len() + 1);
                    match self.state.commit(&resident.schedule) {
                        Ok(receipt) => self.last_commit = Some((id, receipt)),
                        Err(e) => return (resident, Err(e.into())),
                    }
                    (resident, Ok(decision))
                }
            }
            Err(e) => {
                // Pipeline failure: restore the original reservation, then
                // surface the error.
                match self.state.commit(&resident.schedule) {
                    Ok(receipt) => self.last_commit = Some((id, receipt)),
                    Err(restore) => return (resident, Err(restore.into())),
                }
                (resident, Err(AdmitError::Trial(e)))
            }
        }
    }

    /// Re-slices and re-trials an amended graph, through the repair path
    /// when the preceding rollback kept the base content unchanged.
    fn retrial(
        &mut self,
        graph: &TaskGraph,
        origin: Time,
        fast: bool,
        prev: &Schedule,
    ) -> Result<Verdict, RunError> {
        let output = self.pipeline.slice(graph, &self.platform)?.into_output();
        if fast {
            self.pipeline.repair_output_against(
                graph,
                &self.platform,
                output,
                prev,
                &self.state,
                origin,
            )
        } else {
            self.pipeline
                .trial_output_against(graph, &self.platform, output, &self.state, origin)
        }
    }

    /// Releases every resident whose horizon has passed the decision
    /// clock `now` (all reserved work complete — the graph has departed).
    fn retire(&mut self, now: Time) {
        let expired: Vec<u64> = self
            .residents
            .iter()
            .filter(|(_, resident)| resident.horizon <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.evict(id);
        }
    }

    /// Removes a resident and releases its reservations. Departure stamps
    /// fresh state, so any retained rollback receipt is invalidated.
    fn evict(&mut self, id: u64) {
        if let Some(resident) = self.residents.remove(&id) {
            // Shape mismatch is impossible for a schedule this state
            // committed, so the release cannot fail meaningfully.
            let _ = self.state.release(&resident.schedule);
            self.order.retain(|&other| other != id);
            if matches!(self.last_commit, Some((last, _)) if last == id) {
                self.last_commit = None;
            }
        }
    }

    fn verdict_of(
        &self,
        id: u64,
        admitted: bool,
        repaired: bool,
        verdict: &Verdict,
        residents: usize,
    ) -> AdmitVerdict {
        AdmitVerdict {
            id,
            admitted,
            max_lateness: verdict.max_lateness,
            end_to_end: verdict.end_to_end,
            makespan: verdict.makespan,
            violations: verdict.violations(),
            repaired,
            residents,
        }
    }

    /// The committed reservations the next trial will run against.
    pub fn state(&self) -> &CommittedState {
        &self.state
    }

    /// Number of committed residents.
    pub fn residents(&self) -> usize {
        self.residents.len()
    }

    /// Whether `id` is currently resident.
    pub fn is_resident(&self, id: u64) -> bool {
        self.residents.contains_key(&id)
    }

    /// Content digest of the committed state (see
    /// [`CommittedState::digest`]); equal digests mean identical
    /// reservations.
    pub fn digest(&self) -> u64 {
        self.state.digest()
    }

    /// The configuration this controller was built from.
    pub fn config(&self) -> &AdmitConfig {
        &self.config
    }

    /// The shared deadline-miss warning budget (see
    /// [`AdmitConfig::miss_warn_limit`]).
    pub fn miss_log(&self) -> &Arc<MissLog> {
        &self.miss_log
    }
}

/// A slicing job shipped to a worker: stage one never reads committed
/// load, so it runs concurrently with other requests' trials.
struct WorkerJob {
    seq: u64,
    id: u64,
    graph: Arc<TaskGraph>,
    origin: Time,
}

/// A unit of serial coordinator work, tagged with its submission sequence.
enum CoordJob {
    Admit {
        seq: u64,
        id: u64,
        graph: Arc<TaskGraph>,
        origin: Time,
        output: Result<SliceOutput, RunError>,
    },
    Amend {
        seq: u64,
        id: u64,
        delta: GraphDelta,
    },
}

impl CoordJob {
    fn seq(&self) -> u64 {
        match self {
            CoordJob::Admit { seq, .. } | CoordJob::Amend { seq, .. } => *seq,
        }
    }
}

/// The admission controller behind a bounded queue: a pool of slicer
/// workers distributes deadlines in parallel while a single coordinator
/// trials and commits strictly in submission order, so the service's
/// verdicts are bit-identical to a sequential [`AdmissionController`] fed
/// the same requests (the contract [`AdmissionLog::replay`] checks).
///
/// [`submit`](AdmissionService::submit) never blocks — a full queue is an
/// [`AdmitError::QueueFull`] refusal — and
/// [`shutdown`](AdmissionService::shutdown) drains every accepted request
/// before returning the transcript.
///
/// # Examples
///
/// ```
/// use feast::{AdmissionService, AdmitConfig, AdmitRequest, Scenario};
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
/// use taskgraph::Time;
///
/// # fn main() -> Result<(), feast::Error> {
/// let spec = WorkloadSpec::paper(ExecVariation::Mdet);
/// let scenario = Scenario::paper("SVC", spec.clone(), MetricKind::adapt(), CommEstimate::Ccne);
/// let service = AdmissionService::new(AdmitConfig::new(scenario, 8).with_workers(2))?;
/// for id in 0..4 {
///     let graph = generate_seeded(&spec, id).unwrap();
///     service.submit(AdmitRequest::Admit { id, graph: graph.into(), origin: Time::ZERO })?;
/// }
/// let log = service.shutdown()?;
/// assert_eq!(log.outcomes.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdmissionService {
    ingress: SyncSender<WorkerJob>,
    coord: SyncSender<CoordJob>,
    /// Next submission sequence number; the lock also serializes sends, so
    /// sequence order equals queue order.
    seq: Mutex<u64>,
    depth: usize,
    workers: Vec<JoinHandle<()>>,
    coordinator: JoinHandle<AdmissionLog>,
}

impl AdmissionService {
    /// Starts the worker pool and coordinator for `config`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`AdmissionController::new`], plus
    /// [`AdmitError::Trial`] wrapping an I/O error when a thread cannot be
    /// spawned.
    pub fn new(config: AdmitConfig) -> Result<AdmissionService, AdmitError> {
        let controller = AdmissionController::new(config.clone())?;
        let depth = config.queue_depth.max(1);
        let (ingress, worker_rx) = sync_channel::<WorkerJob>(depth);
        let (coord_tx, coord_rx) = sync_channel::<CoordJob>(depth);
        let worker_rx = Arc::new(Mutex::new(worker_rx));

        let mut workers = Vec::new();
        for index in 0..config.workers.max(1) {
            let rx = Arc::clone(&worker_rx);
            let tx = coord_tx.clone();
            let scenario = config.scenario.clone();
            let platform = controller.platform.clone();
            let miss_log = Arc::clone(&controller.miss_log);
            let worker = std::thread::Builder::new()
                .name(format!("admit-slicer-{index}"))
                .spawn(move || {
                    let mut pipeline = Pipeline::new(&scenario);
                    pipeline.set_miss_log(Some(miss_log));
                    loop {
                        // Take the receiver lock only to dequeue; slicing
                        // runs unlocked, concurrently across the pool.
                        let job = {
                            let guard = match rx.lock() {
                                Ok(guard) => guard,
                                Err(_) => return,
                            };
                            match guard.recv() {
                                Ok(job) => job,
                                Err(_) => return,
                            }
                        };
                        let output = pipeline
                            .slice(&job.graph, &platform)
                            .map(Sliced::into_output);
                        let shipped = tx.send(CoordJob::Admit {
                            seq: job.seq,
                            id: job.id,
                            graph: job.graph,
                            origin: job.origin,
                            output,
                        });
                        if shipped.is_err() {
                            return;
                        }
                    }
                })
                .map_err(|e| AdmitError::Trial(RunError::Io(e)))?;
            workers.push(worker);
        }

        let coordinator = std::thread::Builder::new()
            .name("admit-coordinator".into())
            .spawn(move || Self::coordinate(controller, coord_rx))
            .map_err(|e| AdmitError::Trial(RunError::Io(e)))?;

        Ok(AdmissionService {
            ingress,
            coord: coord_tx,
            seq: Mutex::new(0),
            depth,
            workers,
            coordinator,
        })
    }

    /// Enqueues a request without blocking: admits go to the slicer pool,
    /// amendments straight to the coordinator (they need the resident
    /// graph, which only the coordinator holds). Both carry the same
    /// submission sequence, so processing order is exactly submission
    /// order regardless of which worker finishes first.
    ///
    /// # Errors
    ///
    /// [`AdmitError::QueueFull`] when the bounded queue is full (the
    /// request was not accepted; the caller may retry) and
    /// [`AdmitError::ServiceStopped`] after shutdown began.
    pub fn submit(&self, request: AdmitRequest) -> Result<(), AdmitError> {
        let mut seq = match self.seq.lock() {
            Ok(seq) => seq,
            Err(_) => return Err(AdmitError::ServiceStopped),
        };
        fn refused<T>(depth: usize) -> impl Fn(TrySendError<T>) -> AdmitError {
            move |e| match e {
                TrySendError::Full(_) => AdmitError::QueueFull { depth },
                TrySendError::Disconnected(_) => AdmitError::ServiceStopped,
            }
        }
        match request {
            AdmitRequest::Admit { id, graph, origin } => self
                .ingress
                .try_send(WorkerJob {
                    seq: *seq,
                    id,
                    graph,
                    origin,
                })
                .map_err(refused(self.depth))?,
            AdmitRequest::Amend { id, delta } => self
                .coord
                .try_send(CoordJob::Amend {
                    seq: *seq,
                    id,
                    delta,
                })
                .map_err(refused(self.depth))?,
        }
        // A sequence number is consumed only by an accepted request, so
        // the coordinator's reorder buffer never waits on a hole.
        *seq += 1;
        Ok(())
    }

    /// Stops accepting requests, drains everything already accepted, and
    /// returns the service's transcript.
    ///
    /// # Errors
    ///
    /// [`AdmitError::ServiceStopped`] if a worker or the coordinator
    /// panicked.
    pub fn shutdown(self) -> Result<AdmissionLog, AdmitError> {
        let AdmissionService {
            ingress,
            coord,
            seq: _,
            workers,
            coordinator,
            ..
        } = self;
        drop(ingress);
        for worker in workers {
            if worker.join().is_err() {
                return Err(AdmitError::ServiceStopped);
            }
        }
        drop(coord);
        coordinator.join().map_err(|_| AdmitError::ServiceStopped)
    }

    /// The coordinator: re-orders jobs into submission sequence and runs
    /// every decision serially on the single controller.
    fn coordinate(mut controller: AdmissionController, rx: Receiver<CoordJob>) -> AdmissionLog {
        let mut next = 0u64;
        let mut reorder: BTreeMap<u64, CoordJob> = BTreeMap::new();
        let mut log = AdmissionLog::default();
        while let Ok(job) = rx.recv() {
            reorder.insert(job.seq(), job);
            while let Some(job) = reorder.remove(&next) {
                Self::process(&mut controller, job, &mut log);
                next += 1;
            }
        }
        // Senders are gone; every accepted sequence has arrived.
        while let Some(job) = reorder.remove(&next) {
            Self::process(&mut controller, job, &mut log);
            next += 1;
        }
        log.digest = controller.digest();
        log.residents = controller.residents();
        log
    }

    fn process(controller: &mut AdmissionController, job: CoordJob, log: &mut AdmissionLog) {
        match job {
            CoordJob::Admit {
                id,
                graph,
                origin,
                output,
                ..
            } => {
                let outcome = match output {
                    Ok(output) => controller.decide(id, &graph, origin, output),
                    Err(e) => Err(AdmitError::Trial(e)),
                };
                log.requests.push(AdmitRequest::Admit { id, graph, origin });
                log.outcomes.push(outcome.map_err(|e| e.to_string()));
            }
            CoordJob::Amend { id, delta, .. } => {
                let outcome = controller.amend(id, &delta);
                log.requests.push(AdmitRequest::Amend { id, delta });
                log.outcomes.push(outcome.map_err(|e| e.to_string()));
            }
        }
    }
}

/// The transcript of an admission run: every request and its outcome in
/// submission order, plus the final committed-state fingerprint.
///
/// The log is the service's determinism witness:
/// [`replay`](AdmissionLog::replay) re-runs the requests through a fresh
/// *sequential* controller and must reproduce the service's verdicts and
/// digest bit for bit ([`matches`](AdmissionLog::matches)).
#[derive(Debug, Default)]
pub struct AdmissionLog {
    /// Every accepted request, in submission order.
    pub requests: Vec<AdmitRequest>,
    /// The outcome of each request (errors rendered to their display
    /// form), aligned with [`requests`](AdmissionLog::requests).
    pub outcomes: Vec<Result<AdmitVerdict, String>>,
    /// Content digest of the final committed state.
    pub digest: u64,
    /// Residents still committed at the end of the run.
    pub residents: usize,
}

impl AdmissionLog {
    /// Number of admitted requests.
    pub fn admitted(&self) -> usize {
        self.verdicts().filter(|v| v.admitted).count()
    }

    /// Number of rejected requests (successful trials that missed).
    pub fn rejected(&self) -> usize {
        self.verdicts().filter(|v| !v.admitted).count()
    }

    /// The successful verdicts, in submission order.
    pub fn verdicts(&self) -> impl Iterator<Item = &AdmitVerdict> {
        self.outcomes.iter().filter_map(|o| o.as_ref().ok())
    }

    /// Re-runs this log's requests through a fresh sequential
    /// [`AdmissionController`] and returns the resulting log. Determinism
    /// means the result [`matches`](AdmissionLog::matches) `self`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`AdmissionController::new`]; per-request failures
    /// are recorded in the returned log, not raised.
    pub fn replay(&self, config: &AdmitConfig) -> Result<AdmissionLog, AdmitError> {
        let mut controller = AdmissionController::new(config.clone())?;
        let mut log = AdmissionLog {
            requests: self.requests.clone(),
            ..AdmissionLog::default()
        };
        for request in &log.requests {
            let outcome = controller.handle(request);
            log.outcomes.push(outcome.map_err(|e| e.to_string()));
        }
        log.digest = controller.digest();
        log.residents = controller.residents();
        Ok(log)
    }

    /// Whether two logs recorded identical outcomes and final state —
    /// the bit-identical replay check.
    pub fn matches(&self, other: &AdmissionLog) -> bool {
        self.outcomes == other.outcomes
            && self.digest == other.digest
            && self.residents == other.residents
    }
}

#[cfg(test)]
mod tests {
    use slicing::{CommEstimate, DeltaOp, MetricKind};
    use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
    use taskgraph::SubtaskId;

    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::paper(ExecVariation::Mdet)
    }

    fn config(size: usize) -> AdmitConfig {
        let scenario = Scenario::paper("ADM/TEST", spec(), MetricKind::adapt(), CommEstimate::Ccne);
        AdmitConfig::new(scenario, size)
    }

    fn graph(seed: u64) -> Arc<TaskGraph> {
        Arc::new(generate_seeded(&spec(), seed).expect("paper workloads generate"))
    }

    #[test]
    fn admit_commits_and_reject_leaves_no_trace() {
        let mut controller = AdmissionController::new(config(8)).unwrap();
        let idle = controller.digest();

        let first = controller.admit(1, graph(1), Time::ZERO).unwrap();
        assert!(first.admitted, "paper workload fits an idle platform");
        assert_eq!(controller.residents(), 1);
        let loaded = controller.digest();
        assert_ne!(loaded, idle);

        // Pile on admissions at the same origin until one is rejected:
        // the rejection must leave the committed state bit-identical.
        let mut id = 2;
        loop {
            let before = controller.digest();
            let verdict = controller.admit(id, graph(id), Time::ZERO).unwrap();
            if !verdict.admitted {
                assert_eq!(controller.digest(), before, "reject left a trace");
                assert_eq!(controller.residents() as u64, id - 1);
                break;
            }
            id += 1;
            assert!(id < 100, "platform never saturated");
        }
    }

    #[test]
    fn residents_retire_once_the_clock_passes_their_horizon() {
        let mut controller = AdmissionController::new(config(8)).unwrap();
        let first = controller.admit(1, graph(3), Time::ZERO).unwrap();
        assert!(first.admitted);

        // A later arrival past the first graph's horizon retires it; the
        // platform is effectively idle again, so the digest after both
        // depart matches a fresh admit at that origin.
        let origin = first.makespan + Time::new(1);
        let second = controller.admit(2, graph(3), origin).unwrap();
        assert!(second.admitted);
        assert_eq!(controller.residents(), 1);
        assert!(!controller.is_resident(1));
        assert_eq!(second.max_lateness, first.max_lateness);

        let mut fresh = AdmissionController::new(config(8)).unwrap();
        fresh.admit(2, graph(3), origin).unwrap();
        assert_eq!(controller.digest(), fresh.digest());
    }

    #[test]
    fn duplicate_resident_id_is_refused() {
        let mut controller = AdmissionController::new(config(8)).unwrap();
        assert!(controller.admit(7, graph(1), Time::ZERO).unwrap().admitted);
        let digest = controller.digest();
        match controller.admit(7, graph(2), Time::ZERO) {
            Err(AdmitError::DuplicateId { id: 7 }) => {}
            other => panic!("expected DuplicateId, got {other:?}"),
        }
        assert_eq!(controller.digest(), digest);
    }

    #[test]
    fn capacity_bound_evicts_oldest_on_admit() {
        // Admit simultaneous graphs (no retirement at a common origin)
        // until the capacity bound forces an eviction on admit.
        let mut controller = AdmissionController::new(config(8).with_capacity(2)).unwrap();
        let mut admitted = Vec::new();
        for id in 1..32 {
            let verdict = controller.admit(id, graph(id), Time::ZERO).unwrap();
            if verdict.admitted {
                admitted.push(id);
            }
            if admitted.len() == 3 {
                break;
            }
        }
        assert_eq!(admitted.len(), 3, "8 processors should admit 3 graphs");
        assert_eq!(controller.residents(), 2);
        assert!(
            !controller.is_resident(admitted[0]),
            "oldest resident evicted"
        );
        assert!(controller.is_resident(admitted[1]));
        assert!(controller.is_resident(admitted[2]));
    }

    #[test]
    fn amend_repairs_in_place_and_matches_a_fresh_controller() {
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(2),
            wcet: Time::new(25),
        });

        let mut controller = AdmissionController::new(config(8)).unwrap();
        assert!(controller.admit(1, graph(5), Time::ZERO).unwrap().admitted);
        let amended = controller.amend(1, &delta).unwrap();
        assert!(
            amended.repaired,
            "latest-commit amendment takes the repair fast path"
        );

        // A fresh controller admitting the amended graph directly must
        // land on the identical committed state and lateness.
        let pinning = platform::Pinning::new();
        let applied = delta.apply(&graph(5), &pinning).unwrap();
        let mut fresh = AdmissionController::new(config(8)).unwrap();
        let direct = fresh.admit(1, applied.graph, Time::ZERO).unwrap();
        assert_eq!(controller.digest(), fresh.digest());
        assert_eq!(amended.admitted, direct.admitted);
        assert_eq!(amended.max_lateness, direct.max_lateness);
        assert_eq!(amended.makespan, direct.makespan);
    }

    #[test]
    fn amend_after_a_newer_commit_falls_back_but_stays_exact() {
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(1),
            wcet: Time::new(30),
        });

        let mut controller = AdmissionController::new(config(8)).unwrap();
        assert!(controller.admit(1, graph(5), Time::ZERO).unwrap().admitted);
        assert!(controller.admit(2, graph(6), Time::ZERO).unwrap().admitted);
        // Resident 1 is no longer the latest commit: rollback is
        // impossible, so the amendment releases and re-trials in full.
        let amended = controller.amend(1, &delta).unwrap();
        assert!(!amended.repaired);

        // The fallback path is still deterministic: a fresh controller
        // handling the identical request sequence lands on the identical
        // verdict and committed state.
        let mut fresh = AdmissionController::new(config(8)).unwrap();
        fresh.admit(1, graph(5), Time::ZERO).unwrap();
        fresh.admit(2, graph(6), Time::ZERO).unwrap();
        let replayed = fresh.amend(1, &delta).unwrap();
        assert_eq!(amended, replayed);
        assert_eq!(controller.digest(), fresh.digest());
    }

    #[test]
    fn amend_unknown_resident_is_refused_without_mutation() {
        let mut controller = AdmissionController::new(config(4)).unwrap();
        assert!(controller.admit(1, graph(1), Time::ZERO).unwrap().admitted);
        let digest = controller.digest();
        let delta = GraphDelta::new().push(DeltaOp::SetWcet {
            subtask: SubtaskId::new(0),
            wcet: Time::new(9),
        });
        match controller.amend(99, &delta) {
            Err(AdmitError::NoResident { id: 99 }) => {}
            other => panic!("expected NoResident, got {other:?}"),
        }
        assert_eq!(controller.digest(), digest);
    }

    #[test]
    fn service_matches_sequential_replay() {
        let config = config(8).with_workers(3).with_queue_depth(64);
        let service = AdmissionService::new(config.clone()).unwrap();
        for id in 0..12 {
            service
                .submit(AdmitRequest::Admit {
                    id,
                    graph: graph(id + 1),
                    origin: Time::new(i64::try_from(id).unwrap() * 500),
                })
                .unwrap();
        }
        let log = service.shutdown().unwrap();
        assert_eq!(log.outcomes.len(), 12);
        assert!(log.admitted() > 0);

        let replayed = log.replay(&config).unwrap();
        assert!(log.matches(&replayed), "service diverged from replay");
    }

    #[test]
    fn service_amendments_keep_submission_order() {
        let config = config(8).with_workers(2);
        let service = AdmissionService::new(config.clone()).unwrap();
        service
            .submit(AdmitRequest::Admit {
                id: 1,
                graph: graph(5),
                origin: Time::ZERO,
            })
            .unwrap();
        // The amendment is submitted while the admit may still be slicing
        // on a worker; sequence ordering must hold it back regardless.
        service
            .submit(AdmitRequest::Amend {
                id: 1,
                delta: GraphDelta::new().push(DeltaOp::SetWcet {
                    subtask: SubtaskId::new(3),
                    wcet: Time::new(40),
                }),
            })
            .unwrap();
        let log = service.shutdown().unwrap();
        assert_eq!(log.outcomes.len(), 2);
        assert!(log.outcomes[1].is_ok(), "amend found its resident");
        let replayed = log.replay(&config).unwrap();
        assert!(log.matches(&replayed));
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        // A rendezvous ingress (depth clamps to 1) with a saturated
        // pool: submissions beyond the in-flight capacity are refused.
        let config = config(4).with_workers(1).with_queue_depth(1);
        let service = AdmissionService::new(config.clone()).unwrap();
        let mut refused = 0;
        for id in 0..64 {
            match service.submit(AdmitRequest::Admit {
                id,
                graph: graph(1),
                origin: Time::ZERO,
            }) {
                Ok(()) => {}
                Err(AdmitError::QueueFull { depth }) => {
                    assert_eq!(depth, 1);
                    refused += 1;
                }
                Err(other) => panic!("unexpected refusal: {other}"),
            }
        }
        let log = service.shutdown().unwrap();
        assert_eq!(log.outcomes.len() + refused, 64);
        // Refused submissions consumed no sequence numbers: the accepted
        // ones replay cleanly.
        let replayed = log.replay(&config).unwrap();
        assert!(log.matches(&replayed));
    }
}
