//! FEAST-style experiment framework for deadline-distribution studies.
//!
//! The paper evaluates its techniques inside FEAST, "a framework for
//! evaluation of allocation and scheduling techniques for distributed hard
//! real-time systems". This crate is that framework for the present
//! reproduction: it sweeps [`Scenario`]s (workload × metric × estimation ×
//! platform) over system sizes with many random replications, aggregates
//! lateness statistics, and renders the paper's figures as tables, ASCII
//! plots, CSV and JSON.
//!
//! * [`Scenario`] / [`Runner`] — one parameter combination, swept and
//!   replicated by the experiment engine. Workload seeds are per-replication
//!   seed streams (see [`taskgraph::gen::stream_seed`]): identical across
//!   scenarios sharing a workload source (paired comparisons) and
//!   independently addressable, which is what makes runs shardable
//!   ([`ShardSpec`], [`PartialResult::merge`]), resumable
//!   ([`Runner::checkpoint`]) and cancellable ([`CancelToken`]).
//! * [`experiments`] — one regenerator per figure of the paper (`fig2` …
//!   `fig5`) and per §8 complementary study (`ext-*`).
//! * [`ExperimentResult`] — panels × series of mean maximum task lateness,
//!   with renderers.
//!
//! # Examples
//!
//! Run one scenario through the engine:
//!
//! ```
//! use feast::{Runner, Scenario};
//! use slicing::{CommEstimate, MetricKind};
//! use taskgraph::gen::{ExecVariation, WorkloadSpec};
//!
//! # fn main() -> Result<(), feast::RunError> {
//! let scenario = Scenario::paper(
//!     "ADAPT/CCNE",
//!     WorkloadSpec::paper(ExecVariation::Mdet),
//!     MetricKind::adapt(),
//!     CommEstimate::Ccne,
//! )
//! .with_replications(4)
//! .with_system_sizes(vec![2, 4]);
//! let result = Runner::new(scenario).threads(2).run()?;
//! assert_eq!(result.points.len(), 2);
//! # Ok(())
//! # }
//! ```
//!
//! Regenerate a scaled-down Figure 5 and print it:
//!
//! ```
//! use feast::experiments::{fig5, ExperimentConfig};
//!
//! # fn main() -> Result<(), feast::RunError> {
//! let cfg = ExperimentConfig::quick().with_replications(2);
//! let result = fig5(&cfg)?;
//! println!("{}", result.to_tables());
//! assert_eq!(result.panels.len(), 3); // LDET, MDET, HDET
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod admission;
mod error;
pub mod experiments;
pub mod fault;
mod pipeline;
pub mod progress;
mod report;
mod runner;
mod scenario;
mod stats;
pub mod telemetry;

pub use admission::{
    AdmissionController, AdmissionLog, AdmissionService, AdmitConfig, AdmitOutcome, AdmitRequest,
    AdmitVerdict, EvictionCandidate, EvictionPolicy, LowestUtilization, OldestFirst, Refusal,
};
pub use error::{AdmitError, Error, RunError};
pub use fault::{FaultPlan, FaultSite, FaultSpec};
pub use pipeline::{Pipeline, SliceOutput, Sliced, Verdict};
pub use progress::{MetricsFile, MetricsWriter, ProgressSnapshot, ProgressTracker};
pub use report::{ExperimentResult, Panel, ProfileRow, Series};
pub use runner::{
    CancelToken, FailedReplication, PartialResult, ReplicationOutcome, ReplicationRecord, Runner,
    ScenarioPoint, ScenarioResult, ShardSpec,
};
pub use scenario::{
    PinningPolicy, Scenario, ScenarioError, SchedulerSpec, Technique, TopologyKind, WorkloadSource,
};
pub use stats::SummaryStats;

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_and_sync() {
        assert_send_sync::<Scenario>();
        assert_send_sync::<ScenarioResult>();
        assert_send_sync::<ExperimentResult>();
        assert_send_sync::<RunError>();
        assert_send_sync::<SummaryStats>();
        assert_send_sync::<Runner>();
        assert_send_sync::<PartialResult>();
        assert_send_sync::<ReplicationRecord>();
        assert_send_sync::<ShardSpec>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<ScenarioError>();
        assert_send_sync::<FailedReplication>();
        assert_send_sync::<ReplicationOutcome>();
        assert_send_sync::<FaultPlan>();
        assert_send_sync::<FaultSpec>();
        assert_send_sync::<FaultSite>();
        assert_send_sync::<ProgressTracker>();
        assert_send_sync::<ProgressSnapshot>();
        assert_send_sync::<MetricsWriter>();
        assert_send_sync::<MetricsFile>();
        assert_send_sync::<ProfileRow>();
        assert_send_sync::<Error>();
        assert_send_sync::<AdmitError>();
        assert_send_sync::<Pipeline>();
        assert_send_sync::<SliceOutput>();
        assert_send_sync::<Verdict>();
        assert_send_sync::<AdmissionController>();
        assert_send_sync::<AdmissionService>();
        assert_send_sync::<AdmitConfig>();
        assert_send_sync::<AdmitRequest>();
        assert_send_sync::<AdmitVerdict>();
        assert_send_sync::<AdmissionLog>();
    }
}
