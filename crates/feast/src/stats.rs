//! Summary statistics over experiment replications.

use serde::{Deserialize, Serialize};

/// Summary statistics of one measured quantity over all replications of a
/// scenario point (e.g. maximum task lateness over 128 random graphs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator), 0 for n < 2.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Number of observations.
    pub count: usize,
}

impl SummaryStats {
    /// Computes statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use feast::SummaryStats;
    ///
    /// let s = SummaryStats::from_values(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!(s.count, 3);
    /// ```
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "statistics need at least one value");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        SummaryStats {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            count,
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean (`1.96 · σ / √n`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_min_max() {
        let s = SummaryStats::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn single_value() {
        let s = SummaryStats::from_values(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_panics() {
        let _ = SummaryStats::from_values(&[]);
    }

    #[test]
    fn all_equal_values_have_zero_spread() {
        let s = SummaryStats::from_values(&[7.25; 64]);
        assert_eq!(s.mean, 7.25);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 7.25);
        assert_eq!(s.max, 7.25);
        assert_eq!(s.count, 64);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn negative_values_supported() {
        // Lateness is usually negative.
        let s = SummaryStats::from_values(&[-100.0, -200.0]);
        assert_eq!(s.mean, -150.0);
        assert_eq!(s.min, -200.0);
        assert_eq!(s.max, -100.0);
    }
}
