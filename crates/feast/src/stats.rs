//! Summary statistics over experiment replications.

use serde::{Deserialize, Serialize};

/// Summary statistics of one measured quantity over all replications of a
/// scenario point (e.g. maximum task lateness over 128 random graphs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator), 0 for n < 2.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Number of observations.
    pub count: usize,
}

impl SummaryStats {
    /// The statistics of an empty sample: zero count and all-zero (finite)
    /// moments.
    ///
    /// Used for scenario points whose replications *all* degraded to
    /// failed outcomes: the point still serializes to finite JSON (no
    /// NaN/infinity) and [`SummaryStats::combine`] treats it as the
    /// identity.
    ///
    /// # Examples
    ///
    /// ```
    /// use feast::SummaryStats;
    ///
    /// let e = SummaryStats::empty();
    /// assert_eq!(e.count, 0);
    /// let s = SummaryStats::from_values(&[1.0, 2.0]);
    /// assert_eq!(e.combine(&s), s);
    /// ```
    pub const fn empty() -> Self {
        SummaryStats {
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            count: 0,
        }
    }

    /// Computes statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use feast::SummaryStats;
    ///
    /// let s = SummaryStats::from_values(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!(s.count, 3);
    /// ```
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "statistics need at least one value");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        SummaryStats {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            count,
        }
    }

    /// Combines two summaries as if their underlying samples had been
    /// concatenated, using the pairwise (Chan et al.) Welford update.
    ///
    /// `count`, `min` and `max` combine exactly; `mean` and `std_dev`
    /// combine in floating point, so the result can differ from
    /// [`SummaryStats::from_values`] over the concatenated samples in the
    /// last few ULPs. Shard merging therefore folds raw per-replication
    /// records (see [`PartialResult::merge`]) when bit-identical statistics
    /// are required, and uses `combine` where only the summaries survive
    /// (streaming aggregation over event streams, dashboards).
    ///
    /// # Examples
    ///
    /// ```
    /// use feast::SummaryStats;
    ///
    /// let a = SummaryStats::from_values(&[1.0, 2.0]);
    /// let b = SummaryStats::from_values(&[3.0, 4.0, 5.0]);
    /// let c = a.combine(&b);
    /// assert_eq!(c.count, 5);
    /// assert_eq!(c.min, 1.0);
    /// assert_eq!(c.max, 5.0);
    /// assert!((c.mean - 3.0).abs() < 1e-12);
    /// ```
    ///
    /// [`PartialResult::merge`]: crate::PartialResult::merge
    #[must_use]
    pub fn combine(&self, other: &SummaryStats) -> SummaryStats {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let count = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * (n2 / (n1 + n2));
        // Reconstruct the sums of squared deviations (M2) from the sample
        // standard deviations, then merge them pairwise.
        let m2 = self.m2() + other.m2() + delta * delta * (n1 * n2 / (n1 + n2));
        let std_dev = if count > 1 {
            (m2 / (count - 1) as f64).sqrt()
        } else {
            0.0
        };
        SummaryStats {
            mean,
            std_dev,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            count,
        }
    }

    /// Sum of squared deviations from the mean (Welford's M2).
    fn m2(&self) -> f64 {
        self.std_dev * self.std_dev * self.count.saturating_sub(1) as f64
    }

    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean (`1.96 · σ / √n`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_min_max() {
        let s = SummaryStats::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn single_value() {
        let s = SummaryStats::from_values(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_panics() {
        let _ = SummaryStats::from_values(&[]);
    }

    #[test]
    fn all_equal_values_have_zero_spread() {
        let s = SummaryStats::from_values(&[7.25; 64]);
        assert_eq!(s.mean, 7.25);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 7.25);
        assert_eq!(s.max, 7.25);
        assert_eq!(s.count, 64);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn combine_matches_concatenation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0];
        let ys = [5.0, 7.0, 9.0];
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let combined = SummaryStats::from_values(&xs).combine(&SummaryStats::from_values(&ys));
        let direct = SummaryStats::from_values(&all);
        assert_eq!(combined.count, direct.count);
        assert_eq!(combined.min, direct.min);
        assert_eq!(combined.max, direct.max);
        assert!((combined.mean - direct.mean).abs() < 1e-12);
        assert!((combined.std_dev - direct.std_dev).abs() < 1e-12);
    }

    #[test]
    fn combine_is_associative_up_to_rounding() {
        let a = SummaryStats::from_values(&[1.0, -3.0]);
        let b = SummaryStats::from_values(&[10.0]);
        let c = SummaryStats::from_values(&[0.5, 0.25, -7.75]);
        let left = a.combine(&b).combine(&c);
        let right = a.combine(&b.combine(&c));
        assert_eq!(left.count, right.count);
        assert!((left.mean - right.mean).abs() < 1e-12);
        assert!((left.std_dev - right.std_dev).abs() < 1e-12);
    }

    #[test]
    fn combine_with_single_values() {
        let a = SummaryStats::from_values(&[3.0]);
        let b = SummaryStats::from_values(&[5.0]);
        let c = a.combine(&b);
        assert_eq!(c.count, 2);
        assert_eq!(c.mean, 4.0);
        assert!((c.std_dev - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn negative_values_supported() {
        // Lateness is usually negative.
        let s = SummaryStats::from_values(&[-100.0, -200.0]);
        assert_eq!(s.mean, -150.0);
        assert_eq!(s.min, -200.0);
        assert_eq!(s.max, -100.0);
    }
}
