//! Workload inspection tool: generate a task graph from the paper's
//! parameters (or a structured shape), print its analyses, preview a
//! distribution + schedule, and export DOT/JSON.
//!
//! ```text
//! workload [--seed S] [--variation ldet|mdet|hdet] [--met N] [--olr X]
//!          [--ccr X] [--shape chain:N|in-tree:D,B|out-tree:D,B|fork-join:S,W]
//!          [--procs N] [--metric norm|pure|thres|adapt] [--gantt]
//!          [--dot FILE] [--json FILE] [--verbose] [--quiet]
//! ```
//!
//! Analyses print to stdout; diagnostics go to stderr through `tracing`,
//! filtered by `RUST_LOG` (overridden by `--verbose`/`--quiet`).

use std::process::ExitCode;

use platform::{Pinning, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{gantt, LatenessReport, ListScheduler};
use slicing::{MetricKind, Slicer};
use taskgraph::analysis::GraphAnalysis;
use taskgraph::dot::to_dot;
use taskgraph::gen::{generate, generate_shape, ExecVariation, Shape, WorkloadSpec};
use taskgraph::TaskGraph;
use tracing::{error, info};
use tracing_subscriber::EnvFilter;

#[derive(Debug)]
struct Args {
    seed: u64,
    spec: WorkloadSpec,
    shape: Option<Shape>,
    procs: usize,
    metric: MetricKind,
    gantt: bool,
    dot: Option<String>,
    json: Option<String>,
    verbose: bool,
    quiet: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seed: 0xFEA57,
            spec: WorkloadSpec::paper(ExecVariation::Mdet),
            shape: None,
            procs: 4,
            metric: MetricKind::adapt(),
            gantt: false,
            dot: None,
            json: None,
            verbose: false,
            quiet: false,
        }
    }
}

const USAGE: &str = "usage: workload [--seed S] [--variation ldet|mdet|hdet] [--met N] \
[--olr X] [--ccr X]\n                [--shape chain:N|in-tree:D,B|out-tree:D,B|fork-join:S,W] \
[--procs N]\n                [--metric norm|pure|thres|adapt] [--gantt] [--dot FILE] [--json FILE]\
\n                [--verbose] [--quiet]";

fn parse_shape(raw: &str) -> Result<Shape, String> {
    let (kind, params) = raw
        .split_once(':')
        .ok_or("shape needs parameters, e.g. chain:10")?;
    let nums: Result<Vec<usize>, _> = params.split(',').map(|p| p.trim().parse()).collect();
    let nums = nums.map_err(|e| format!("bad shape parameter: {e}"))?;
    match (kind, nums.as_slice()) {
        ("chain", [n]) => Ok(Shape::Chain { length: *n }),
        ("in-tree", [d, b]) => Ok(Shape::InTree {
            depth: *d,
            branching: *b,
        }),
        ("out-tree", [d, b]) => Ok(Shape::OutTree {
            depth: *d,
            branching: *b,
        }),
        ("fork-join", [s, w]) => Ok(Shape::ForkJoin {
            stages: *s,
            width: *w,
        }),
        _ => Err(format!("unknown shape '{raw}'")),
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--variation" => {
                args.spec.variation = match value("--variation")?.as_str() {
                    "ldet" => ExecVariation::Ldet,
                    "mdet" => ExecVariation::Mdet,
                    "hdet" => ExecVariation::Hdet,
                    other => return Err(format!("unknown variation '{other}'")),
                }
            }
            "--met" => {
                args.spec.mean_exec_time =
                    value("--met")?.parse().map_err(|e| format!("--met: {e}"))?
            }
            "--olr" => {
                args.spec.olr = value("--olr")?.parse().map_err(|e| format!("--olr: {e}"))?
            }
            "--ccr" => {
                args.spec.ccr = value("--ccr")?.parse().map_err(|e| format!("--ccr: {e}"))?
            }
            "--shape" => args.shape = Some(parse_shape(value("--shape")?)?),
            "--procs" => {
                args.procs = value("--procs")?
                    .parse()
                    .map_err(|e| format!("--procs: {e}"))?
            }
            "--metric" => {
                args.metric = match value("--metric")?.as_str() {
                    "norm" => MetricKind::norm(),
                    "pure" => MetricKind::pure(),
                    "thres" => MetricKind::thres(1.0),
                    "adapt" => MetricKind::adapt(),
                    other => return Err(format!("unknown metric '{other}'")),
                }
            }
            "--gantt" => args.gantt = true,
            "--dot" => args.dot = Some(value("--dot")?.clone()),
            "--json" => args.json = Some(value("--json")?.clone()),
            "--verbose" | "-v" => args.verbose = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let graph: TaskGraph = match args.shape {
        Some(shape) => generate_shape(shape, &args.spec, &mut rng)?,
        None => generate(&args.spec, &mut rng)?,
    };

    let analysis = GraphAnalysis::new(&graph);
    println!("workload (seed {}):", args.seed);
    println!("  subtasks          {}", graph.subtask_count());
    println!("  messages          {}", graph.edge_count());
    println!("  depth             {}", analysis.depth());
    println!("  width             {}", analysis.width());
    println!("  total work        {}", analysis.total_work());
    println!("  longest path      {}", analysis.longest_path_work());
    println!("  parallelism xi    {:.2}", analysis.avg_parallelism());
    println!(
        "  xi (incl. comm)   {:.2}",
        analysis.avg_parallelism_with_comm(1.0)
    );
    println!("  mean exec (MET)   {:.1}", analysis.mean_exec_time());
    println!("  realized CCR      {:.2}", analysis.realized_ccr(1.0));
    if let Some(&out) = graph.outputs().first() {
        if let Some(d) = graph.subtask(out).deadline() {
            println!("  end-to-end D      {d}");
        }
    }

    let platform = Platform::paper(args.procs)?;
    let slicer = Slicer::new(args.metric);
    let assignment = slicer.distribute(&graph, &platform)?;
    let schedule =
        ListScheduler::new().schedule(&graph, &platform, &assignment, &Pinning::new())?;
    let report = LatenessReport::new(&graph, &assignment, &schedule);
    println!("\n{} on {} processors:", args.metric.label(), args.procs);
    println!("  min laxity        {}", assignment.min_laxity(&graph));
    println!("  makespan          {}", schedule.makespan());
    println!(
        "  utilization       {:.1}%",
        schedule.utilization(&graph) * 100.0
    );
    println!("  background slack  {}", schedule.background_capacity());
    println!("  max task lateness {}", report.max_lateness());
    println!("  end-to-end        {}", report.end_to_end_lateness());
    println!("  feasible          {}", report.is_feasible());

    if args.gantt {
        println!("\n{}", gantt::render(&schedule, &graph, 72));
    }
    if let Some(path) = &args.dot {
        std::fs::write(path, to_dot(&graph))?;
        info!(path = %path, "wrote DOT export");
    }
    if let Some(path) = &args.json {
        std::fs::write(path, serde_json::to_string_pretty(&graph)?)?;
        info!(path = %path, "wrote JSON export");
    }
    Ok(())
}

/// Installs the stderr subscriber: `--verbose` forces `debug`, `--quiet`
/// forces `warn`, otherwise `RUST_LOG` applies (default `info`).
fn init_tracing(verbose: bool, quiet: bool) {
    let filter = if verbose {
        EnvFilter::new("debug")
    } else if quiet {
        EnvFilter::new("warn")
    } else {
        EnvFilter::try_from_default_env().unwrap_or_else(|_| EnvFilter::new("info"))
    };
    tracing_subscriber::fmt()
        .with_env_filter(filter)
        .with_target(false)
        .init();
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(args) => {
            init_tracing(args.verbose, args.quiet);
            match run(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    error!("workload run failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(msg) => {
            // Help/usage precedes subscriber setup; print it directly.
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<Args, String> {
        let argv: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        parse_args(&argv)
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.procs, 4);
        assert_eq!(a.seed, 0xFEA57);
        assert!(a.shape.is_none());
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--seed",
            "9",
            "--variation",
            "hdet",
            "--met",
            "40",
            "--olr",
            "2.0",
            "--ccr",
            "0.5",
            "--procs",
            "8",
            "--metric",
            "pure",
            "--gantt",
        ])
        .unwrap();
        assert_eq!(a.seed, 9);
        assert_eq!(a.spec.variation, ExecVariation::Hdet);
        assert_eq!(a.spec.mean_exec_time, 40);
        assert_eq!(a.spec.olr, 2.0);
        assert_eq!(a.spec.ccr, 0.5);
        assert_eq!(a.procs, 8);
        assert_eq!(a.metric, MetricKind::pure());
        assert!(a.gantt);
    }

    #[test]
    fn parses_shapes() {
        assert_eq!(parse_shape("chain:7").unwrap(), Shape::Chain { length: 7 });
        assert_eq!(
            parse_shape("in-tree:4,2").unwrap(),
            Shape::InTree {
                depth: 4,
                branching: 2
            }
        );
        assert_eq!(
            parse_shape("fork-join:3,5").unwrap(),
            Shape::ForkJoin {
                stages: 3,
                width: 5
            }
        );
        assert!(parse_shape("ring:3").is_err());
        assert!(parse_shape("chain").is_err());
        assert!(parse_shape("chain:x").is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--metric", "zzz"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }

    #[test]
    fn end_to_end_run_works() {
        let args = Args {
            procs: 2,
            gantt: true,
            ..Args::default()
        };
        run(&args).expect("default workload runs");
    }
}
