//! Regenerates the paper's figures from the command line.
//!
//! ```text
//! figures <experiment|all> [--reps N] [--sizes 2,4,8] [--seed S]
//!         [--threads N] [--out DIR] [--quick] [--no-plot]
//! ```
//!
//! Prints each experiment as aligned tables plus ASCII plots and, with
//! `--out`, writes `<id>.csv` and `<id>.json` into the directory.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use feast::experiments::{all_experiments, experiment, ExperimentConfig, ExperimentDescriptor};
use feast::ExperimentResult;

#[derive(Debug)]
struct Args {
    experiments: Vec<ExperimentDescriptor>,
    cfg: ExperimentConfig,
    out: Option<PathBuf>,
    plot: bool,
}

fn usage() -> String {
    let mut out = String::from(
        "usage: figures <experiment|all> [--reps N] [--sizes 2,4,8] [--seed S]\n\
         \x20               [--threads N] [--out DIR] [--quick] [--no-plot]\n\nexperiments:\n",
    );
    for e in all_experiments() {
        out.push_str(&format!("  {:<13} {}\n", e.id, e.description));
    }
    out
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut cfg = ExperimentConfig::default();
    let mut out = None;
    let mut plot = true;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "all" => experiments = all_experiments(),
            "--quick" => {
                cfg.replications = ExperimentConfig::quick().replications;
                cfg.system_sizes = ExperimentConfig::quick().system_sizes;
            }
            "--no-plot" => plot = false,
            "--reps" => {
                cfg.replications = next_value(&mut it, "--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--seed" => {
                cfg.base_seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                cfg.threads = next_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--sizes" => {
                let raw = next_value(&mut it, "--sizes")?;
                let sizes: Result<Vec<usize>, _> =
                    raw.split(',').map(|s| s.trim().parse()).collect();
                cfg.system_sizes = sizes.map_err(|e| format!("--sizes: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(next_value(&mut it, "--out")?));
            }
            "--help" | "-h" => return Err(usage()),
            id => {
                let exp = experiment(id).ok_or_else(|| {
                    format!("unknown experiment '{id}'\n\n{}", usage())
                })?;
                experiments.push(exp);
            }
        }
    }
    if experiments.is_empty() {
        return Err(usage());
    }
    Ok(Args {
        experiments,
        cfg,
        out,
        plot,
    })
}

fn next_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn write_outputs(dir: &PathBuf, result: &ExperimentResult) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{}.csv", result.id)), result.to_csv())?;
    std::fs::write(dir.join(format!("{}.json", result.id)), result.to_json())?;
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "running {} experiment(s): {} replications, sizes {:?}\n",
        args.experiments.len(),
        args.cfg.replications,
        args.cfg.system_sizes
    );

    for exp in &args.experiments {
        let started = Instant::now();
        let result = match (exp.run)(&args.cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{} failed: {e}", exp.id);
                return ExitCode::FAILURE;
            }
        };
        println!("{}", result.to_tables());
        if args.plot {
            println!("{}", result.to_ascii_plots(56, 14));
        }
        if let Some(dir) = &args.out {
            if let Err(e) = write_outputs(dir, &result) {
                eprintln!("failed to write outputs for {}: {e}", exp.id);
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {}/{}.csv and .json",
                dir.display(),
                result.id
            );
        }
        println!("({} finished in {:.1?})\n", exp.id, started.elapsed());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, String> {
        let argv: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        parse_args(&argv)
    }

    #[test]
    fn parses_experiment_and_flags() {
        let a = args(&["fig2", "--reps", "16", "--sizes", "2,4", "--seed", "9"]).unwrap();
        assert_eq!(a.experiments.len(), 1);
        assert_eq!(a.experiments[0].id, "fig2");
        assert_eq!(a.cfg.replications, 16);
        assert_eq!(a.cfg.system_sizes, vec![2, 4]);
        assert_eq!(a.cfg.base_seed, 9);
        assert!(a.plot);
    }

    #[test]
    fn all_selects_every_experiment() {
        let a = args(&["all", "--quick", "--no-plot"]).unwrap();
        assert_eq!(a.experiments.len(), all_experiments().len());
        assert!(!a.plot);
        assert!(a.cfg.replications <= 16);
    }

    #[test]
    fn rejects_unknown_experiment_and_empty() {
        assert!(args(&["nope"]).is_err());
        assert!(args(&[]).is_err());
        assert!(args(&["fig2", "--reps"]).is_err());
        assert!(args(&["fig2", "--reps", "abc"]).is_err());
    }

    #[test]
    fn out_dir_parsed() {
        let a = args(&["fig3", "--out", "/tmp/results"]).unwrap();
        assert_eq!(a.out, Some(PathBuf::from("/tmp/results")));
    }
}
