//! Regenerates the paper's figures from the command line.
//!
//! ```text
//! figures <experiment|all> [--reps N] [--sizes 2,4,8] [--seed S]
//!         [--threads N] [--out DIR] [--quick] [--no-plot]
//!         [--verbose] [--quiet] [--events PATH] [--no-events]
//!         [--strict-validate]
//! ```
//!
//! Prints each experiment as aligned tables plus ASCII plots and, with
//! `--out`, writes `<id>.csv` and `<id>.json` into the directory. Results
//! go to stdout; diagnostics go to stderr through `tracing`, filtered by
//! `RUST_LOG` (overridden by `--verbose`/`--quiet`). Every run also
//! streams machine-readable per-replication events to `events.jsonl`
//! (next to `--out` when given, else the working directory) unless
//! `--no-events` is passed.
//!
//! `--strict-validate` turns the always-on schedule audit into a gate:
//! any structural violation or failed (excluded) replication behind a
//! figure fails the run with a non-zero exit after the tables print.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use feast::experiments::{all_experiments, experiment, ExperimentConfig, ExperimentDescriptor};
use feast::telemetry::{self, EventSink, RunEvent};
use feast::ExperimentResult;
use tracing::{error, info, warn};
use tracing_subscriber::EnvFilter;

#[derive(Debug)]
struct Args {
    experiments: Vec<ExperimentDescriptor>,
    cfg: ExperimentConfig,
    out: Option<PathBuf>,
    plot: bool,
    verbose: bool,
    quiet: bool,
    events: Option<PathBuf>,
    no_events: bool,
    strict_validate: bool,
}

fn usage() -> String {
    let mut out = String::from(
        "usage: figures <experiment|all> [--reps N] [--sizes 2,4,8] [--seed S]\n\
         \x20               [--threads N] [--out DIR] [--quick] [--no-plot]\n\
         \x20               [--verbose] [--quiet] [--events PATH] [--no-events]\n\
         \x20               [--strict-validate]\n\nexperiments:\n",
    );
    for e in all_experiments() {
        out.push_str(&format!("  {:<13} {}\n", e.id, e.description));
    }
    out
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut cfg = ExperimentConfig::default();
    let mut out = None;
    let mut plot = true;
    let mut verbose = false;
    let mut quiet = false;
    let mut events = None;
    let mut no_events = false;
    let mut strict_validate = false;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "all" => experiments = all_experiments(),
            "--quick" => {
                cfg.replications = ExperimentConfig::quick().replications;
                cfg.system_sizes = ExperimentConfig::quick().system_sizes;
            }
            "--no-plot" => plot = false,
            "--verbose" | "-v" => verbose = true,
            "--quiet" | "-q" => quiet = true,
            "--no-events" => no_events = true,
            "--strict-validate" => strict_validate = true,
            "--events" => {
                events = Some(PathBuf::from(next_value(&mut it, "--events")?));
            }
            "--reps" => {
                cfg.replications = next_value(&mut it, "--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--seed" => {
                cfg.base_seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                cfg.threads = next_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--sizes" => {
                let raw = next_value(&mut it, "--sizes")?;
                let sizes: Result<Vec<usize>, _> =
                    raw.split(',').map(|s| s.trim().parse()).collect();
                cfg.system_sizes = sizes.map_err(|e| format!("--sizes: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(next_value(&mut it, "--out")?));
            }
            "--help" | "-h" => return Err(usage()),
            id => {
                let exp = experiment(id)
                    .ok_or_else(|| format!("unknown experiment '{id}'\n\n{}", usage()))?;
                experiments.push(exp);
            }
        }
    }
    if experiments.is_empty() {
        return Err(usage());
    }
    Ok(Args {
        experiments,
        cfg,
        out,
        plot,
        verbose,
        quiet,
        events,
        no_events,
        strict_validate,
    })
}

/// Sums the audit counters behind every series of `result`:
/// `(violations, series with violations, failed replications)`.
fn audit_totals(result: &ExperimentResult) -> (usize, usize, usize) {
    let series = result.panels.iter().flat_map(|p| p.series.iter());
    series.fold((0, 0, 0), |(v, c, f), s| {
        (
            v + s.violations,
            c + usize::from(s.violations > 0),
            f + s.failed,
        )
    })
}

/// Installs the stderr subscriber: `--verbose` forces `debug`, `--quiet`
/// forces `warn`, otherwise `RUST_LOG` applies (default `info`).
fn init_tracing(verbose: bool, quiet: bool) {
    let filter = if verbose {
        EnvFilter::new("debug")
    } else if quiet {
        EnvFilter::new("warn")
    } else {
        EnvFilter::try_from_default_env().unwrap_or_else(|_| EnvFilter::new("info"))
    };
    tracing_subscriber::fmt()
        .with_env_filter(filter)
        .with_target(false)
        .init();
}

/// Where the event stream goes: `--events` wins, else next to `--out`,
/// else the working directory. `None` with `--no-events`.
fn events_path(args: &Args) -> Option<PathBuf> {
    if args.no_events {
        return None;
    }
    Some(match (&args.events, &args.out) {
        (Some(path), _) => path.clone(),
        (None, Some(dir)) => dir.join("events.jsonl"),
        (None, None) => PathBuf::from("events.jsonl"),
    })
}

fn next_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn write_outputs(dir: &PathBuf, result: &ExperimentResult) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{}.csv", result.id)), result.to_csv())?;
    std::fs::write(dir.join(format!("{}.json", result.id)), result.to_json())?;
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            // Help/usage precedes subscriber setup; print it directly.
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    init_tracing(args.verbose, args.quiet);

    if let Some(path) = events_path(&args) {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        match EventSink::create(&path) {
            Ok(sink) => {
                info!(path = %path.display(), "streaming run events");
                telemetry::install(sink);
            }
            Err(e) => warn!(path = %path.display(), "cannot create event stream: {e}"),
        }
    }
    let ids: Vec<&str> = args.experiments.iter().map(|e| e.id).collect();
    telemetry::emit_with(|| RunEvent::RunStart {
        command: format!("figures {}", ids.join(" ")),
        replications: args.cfg.replications,
        system_sizes: args.cfg.system_sizes.clone(),
    });
    info!(
        experiments = args.experiments.len(),
        replications = args.cfg.replications,
        sizes = ?args.cfg.system_sizes,
        "starting run"
    );

    for exp in &args.experiments {
        let started = Instant::now();
        let before = telemetry::global().snapshot();
        let mut result = match (exp.run)(&args.cfg) {
            Ok(r) => r,
            Err(e) => {
                error!(experiment = exp.id, "experiment failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Attribute the registry's growth during this experiment to it:
        // the Profile section of the tables and the JSON output.
        let profile =
            feast::ProfileRow::from_metrics(&telemetry::global().snapshot().delta(&before));
        if !profile.is_empty() {
            result.profile = Some(profile);
        }
        println!("{}", result.to_tables());
        if args.plot {
            println!("{}", result.to_ascii_plots(56, 14));
        }
        if let Some(dir) = &args.out {
            if let Err(e) = write_outputs(dir, &result) {
                error!(experiment = exp.id, "failed to write outputs: {e}");
                return ExitCode::FAILURE;
            }
            info!(
                experiment = exp.id,
                dir = %dir.display(),
                "wrote CSV and JSON outputs"
            );
        }
        info!(
            experiment = exp.id,
            elapsed = ?started.elapsed(),
            "experiment finished"
        );
        if args.strict_validate {
            let (violations, series, failed) = audit_totals(&result);
            if violations > 0 {
                error!(
                    experiment = exp.id,
                    violations = violations,
                    series = series,
                    "strict validation failed: schedule audit found structural violations"
                );
                return ExitCode::FAILURE;
            }
            if failed > 0 {
                error!(
                    experiment = exp.id,
                    failed = failed,
                    "strict validation failed: replications were excluded from statistics"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    telemetry::emit_with(|| RunEvent::RunEnd {
        metrics: telemetry::global().snapshot(),
    });
    telemetry::uninstall();
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, String> {
        let argv: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        parse_args(&argv)
    }

    #[test]
    fn parses_experiment_and_flags() {
        let a = args(&["fig2", "--reps", "16", "--sizes", "2,4", "--seed", "9"]).unwrap();
        assert_eq!(a.experiments.len(), 1);
        assert_eq!(a.experiments[0].id, "fig2");
        assert_eq!(a.cfg.replications, 16);
        assert_eq!(a.cfg.system_sizes, vec![2, 4]);
        assert_eq!(a.cfg.base_seed, 9);
        assert!(a.plot);
    }

    #[test]
    fn all_selects_every_experiment() {
        let a = args(&["all", "--quick", "--no-plot"]).unwrap();
        assert_eq!(a.experiments.len(), all_experiments().len());
        assert!(!a.plot);
        assert!(a.cfg.replications <= 16);
    }

    #[test]
    fn rejects_unknown_experiment_and_empty() {
        assert!(args(&["nope"]).is_err());
        assert!(args(&[]).is_err());
        assert!(args(&["fig2", "--reps"]).is_err());
        assert!(args(&["fig2", "--reps", "abc"]).is_err());
    }

    #[test]
    fn out_dir_parsed() {
        let a = args(&["fig3", "--out", "/tmp/results"]).unwrap();
        assert_eq!(a.out, Some(PathBuf::from("/tmp/results")));
    }

    #[test]
    fn strict_validate_flag_and_audit_totals() {
        let a = args(&["fig2", "--strict-validate"]).unwrap();
        assert!(a.strict_validate);
        assert!(!args(&["fig2"]).unwrap().strict_validate);

        let mut result = ExperimentResult {
            id: "t".into(),
            description: String::new(),
            panels: vec![feast::Panel {
                title: "p".into(),
                series: vec![feast::Series {
                    label: "a".into(),
                    points: vec![(2, 0.0)],
                    violations: 0,
                    window_violations: Some(0),
                    schedule_violations: Some(0),
                    failed: 0,
                }],
            }],
            profile: None,
        };
        assert_eq!(audit_totals(&result), (0, 0, 0));
        result.panels[0].series[0].violations = 3;
        result.panels[0].series[0].failed = 2;
        assert_eq!(audit_totals(&result), (3, 1, 2));
    }

    #[test]
    fn verbosity_and_event_flags_parsed() {
        let a = args(&["fig2", "--verbose", "--events", "/tmp/ev.jsonl"]).unwrap();
        assert!(a.verbose && !a.quiet && !a.no_events);
        assert_eq!(a.events, Some(PathBuf::from("/tmp/ev.jsonl")));
        let a = args(&["fig2", "-q", "--no-events"]).unwrap();
        assert!(a.quiet && a.no_events);
    }

    #[test]
    fn events_path_resolution() {
        let a = args(&["fig2"]).unwrap();
        assert_eq!(events_path(&a), Some(PathBuf::from("events.jsonl")));
        let a = args(&["fig2", "--out", "/tmp/results"]).unwrap();
        assert_eq!(
            events_path(&a),
            Some(PathBuf::from("/tmp/results/events.jsonl"))
        );
        let a = args(&["fig2", "--out", "/tmp/results", "--events", "/tmp/e.jsonl"]).unwrap();
        assert_eq!(events_path(&a), Some(PathBuf::from("/tmp/e.jsonl")));
        let a = args(&["fig2", "--no-events"]).unwrap();
        assert_eq!(events_path(&a), None);
    }
}
