//! Sharded, resumable scenario sweeps from the command line.
//!
//! ```text
//! sweep run   [--metric pure|norm|adapt|thres:D] [--estimate ccne|ccaa]
//!             [--variation ldet|mdet|hdet] [--label S] [--reps N]
//!             [--sizes 2,4,8] [--seed S] [--threads N] [--shard I/N]
//!             [--checkpoint PATH] [--events PATH] [--out PATH]
//!             [--progress] [--metrics PATH]
//!             [--strict-validate] [--fail-fast] [--strict-windows]
//! sweep merge [--out PATH] [--strict-validate] PART.json...
//! ```
//!
//! `run` executes one scenario through the [`Runner`] engine. Without
//! `--shard` it prints the aggregated `ScenarioResult` as JSON; with
//! `--shard I/N` it computes shard `I` only and prints its
//! `PartialResult`, which `merge` folds back into the full
//! `ScenarioResult` — bit-identical to an unsharded run. `--checkpoint`
//! makes the run resumable: completed replications are appended to a
//! JSONL file and skipped on restart.
//!
//! `--progress` renders a live progress line on stderr (overwritten in
//! place on a TTY, one line every few seconds when piped) with cells
//! done/failed, throughput, EWMA rate and ETA. `--metrics PATH` writes an
//! atomically-replaced `metrics.json` (progress + full telemetry
//! snapshot, schema-versioned) every couple of seconds and at exit —
//! error exits included; with `--checkpoint ck.jsonl` and no `--metrics`,
//! the file defaults to the sibling `ck.metrics.json`.
//!
//! `--strict-validate` turns any audit violation (or degraded replication)
//! into a typed non-zero exit; `--fail-fast` restores abort-on-first-error
//! instead of the default degrade-don't-die accounting; `--strict-windows`
//! enables the assignment-window clamp (changes measured figures — see the
//! scenario documentation).
//!
//! With the `fault-inject` feature, `--fault SITE:RATE[:ATTEMPTS]`
//! (repeatable) and `--fault-seed N` arm the deterministic fault plan used
//! by the CI fault matrix.
//!
//! A two-worker sweep, merged:
//!
//! ```text
//! sweep run --shard 0/2 --out part0.json
//! sweep run --shard 1/2 --out part1.json
//! sweep merge --out full.json part0.json part1.json
//! ```

use std::io::{IsTerminal, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use feast::telemetry::EventSink;
#[cfg(feature = "fault-inject")]
use feast::FaultPlan;
use feast::{
    PartialResult, ProgressSnapshot, ProgressTracker, RunError, Runner, Scenario, ShardSpec,
};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, WorkloadSpec};
use tracing_subscriber::EnvFilter;

const USAGE: &str = "usage:
  sweep run   [--metric pure|norm|adapt|thres:D] [--estimate ccne|ccaa]
              [--variation ldet|mdet|hdet] [--label S] [--reps N]
              [--sizes 2,4,8] [--seed S] [--threads N] [--shard I/N]
              [--checkpoint PATH] [--events PATH] [--out PATH]
              [--progress] [--metrics PATH]
              [--strict-validate] [--fail-fast] [--strict-windows]
              [--fault SITE:RATE[:ATTEMPTS]]... [--fault-seed N]
  sweep merge [--out PATH] [--strict-validate] PART.json...

  --progress renders a live stderr progress line; --metrics writes an
  atomic metrics.json snapshot periodically and at exit (defaults to a
  sibling of --checkpoint when one is set).

  --fault flags require a build with --features fault-inject; sites are
  checkpoint-io, checkpoint-corrupt, worker-panic, generate-reject and
  cancel-race.";

#[derive(Debug)]
struct RunArgs {
    metric: MetricKind,
    estimate: CommEstimate,
    variation: ExecVariation,
    label: Option<String>,
    reps: usize,
    sizes: Vec<usize>,
    seed: u64,
    threads: usize,
    shard: ShardSpec,
    checkpoint: Option<PathBuf>,
    events: Option<PathBuf>,
    out: Option<PathBuf>,
    progress: bool,
    metrics: Option<PathBuf>,
    strict_validate: bool,
    fail_fast: bool,
    strict_windows: bool,
    faults: Vec<feast::FaultSpec>,
    fault_seed: u64,
}

#[derive(Debug)]
struct MergeArgs {
    parts: Vec<PathBuf>,
    out: Option<PathBuf>,
    strict_validate: bool,
}

#[derive(Debug)]
enum Command {
    Run(Box<RunArgs>),
    Merge(MergeArgs),
}

/// Parses `"0x..."` as hex and anything else as decimal.
fn parse_seed(raw: &str) -> Result<u64, String> {
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.map_err(|e| format!("--seed: {e}"))
}

fn parse_metric(raw: &str) -> Result<MetricKind, String> {
    match raw {
        "pure" => Ok(MetricKind::pure()),
        "norm" => Ok(MetricKind::norm()),
        "adapt" => Ok(MetricKind::adapt()),
        other => match other.strip_prefix("thres:") {
            Some(d) => d
                .parse()
                .map(MetricKind::thres)
                .map_err(|e| format!("--metric thres:D: {e}")),
            None => Err(format!("--metric: unknown metric '{other}'")),
        },
    }
}

fn parse_shard(raw: &str) -> Result<ShardSpec, String> {
    let (index, count) = raw
        .split_once('/')
        .ok_or_else(|| format!("--shard: expected I/N, got '{raw}'"))?;
    let index = index.parse().map_err(|e| format!("--shard index: {e}"))?;
    let count = count.parse().map_err(|e| format!("--shard count: {e}"))?;
    Ok(ShardSpec::new(index, count))
}

fn next_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_run(argv: &[String]) -> Result<RunArgs, String> {
    let mut args = RunArgs {
        metric: MetricKind::pure(),
        estimate: CommEstimate::Ccne,
        variation: ExecVariation::Mdet,
        label: None,
        reps: 128,
        sizes: (2..=16).step_by(2).collect(),
        seed: 0xFEA57,
        threads: 0,
        shard: ShardSpec::FULL,
        checkpoint: None,
        events: None,
        out: None,
        progress: false,
        metrics: None,
        strict_validate: false,
        fail_fast: false,
        strict_windows: false,
        faults: Vec::new(),
        fault_seed: 0,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metric" => args.metric = parse_metric(next_value(&mut it, "--metric")?)?,
            "--estimate" => {
                args.estimate = match next_value(&mut it, "--estimate")?.as_str() {
                    "ccne" => CommEstimate::Ccne,
                    "ccaa" => CommEstimate::Ccaa,
                    other => return Err(format!("--estimate: unknown estimate '{other}'")),
                };
            }
            "--variation" => {
                args.variation = match next_value(&mut it, "--variation")?.as_str() {
                    "ldet" => ExecVariation::Ldet,
                    "mdet" => ExecVariation::Mdet,
                    "hdet" => ExecVariation::Hdet,
                    other => return Err(format!("--variation: unknown variation '{other}'")),
                };
            }
            "--label" => args.label = Some(next_value(&mut it, "--label")?.clone()),
            "--reps" => {
                args.reps = next_value(&mut it, "--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--sizes" => {
                let raw = next_value(&mut it, "--sizes")?;
                let sizes: Result<Vec<usize>, _> =
                    raw.split(',').map(|s| s.trim().parse()).collect();
                args.sizes = sizes.map_err(|e| format!("--sizes: {e}"))?;
            }
            "--seed" => args.seed = parse_seed(next_value(&mut it, "--seed")?)?,
            "--threads" => {
                args.threads = next_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--shard" => args.shard = parse_shard(next_value(&mut it, "--shard")?)?,
            "--checkpoint" => {
                args.checkpoint = Some(PathBuf::from(next_value(&mut it, "--checkpoint")?));
            }
            "--events" => args.events = Some(PathBuf::from(next_value(&mut it, "--events")?)),
            "--out" => args.out = Some(PathBuf::from(next_value(&mut it, "--out")?)),
            "--progress" => args.progress = true,
            "--metrics" => args.metrics = Some(PathBuf::from(next_value(&mut it, "--metrics")?)),
            "--strict-validate" => args.strict_validate = true,
            "--fail-fast" => args.fail_fast = true,
            "--strict-windows" => args.strict_windows = true,
            "--fault" => args.faults.push(
                next_value(&mut it, "--fault")?
                    .parse()
                    .map_err(|e: String| format!("--fault: {e}"))?,
            ),
            "--fault-seed" => args.fault_seed = parse_seed(next_value(&mut it, "--fault-seed")?)?,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_merge(argv: &[String]) -> Result<MergeArgs, String> {
    let mut parts = Vec::new();
    let mut out = None;
    let mut strict_validate = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(next_value(&mut it, "--out")?)),
            "--strict-validate" => strict_validate = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument '{flag}'\n\n{USAGE}"));
            }
            path => parts.push(PathBuf::from(path)),
        }
    }
    if parts.is_empty() {
        return Err(format!(
            "merge needs at least one partial result\n\n{USAGE}"
        ));
    }
    Ok(MergeArgs {
        parts,
        out,
        strict_validate,
    })
}

fn parse_args(argv: &[String]) -> Result<Command, String> {
    match argv.first().map(String::as_str) {
        Some("run") => Ok(Command::Run(Box::new(parse_run(&argv[1..])?))),
        Some("merge") => Ok(Command::Merge(parse_merge(&argv[1..])?)),
        _ => Err(USAGE.to_owned()),
    }
}

/// Writes `json` to `--out` when given, else stdout.
fn deliver(out: &Option<PathBuf>, json: &str) -> std::io::Result<()> {
    match out {
        Some(path) => std::fs::write(path, format!("{json}\n")),
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

/// Formats an ETA in coarse human units; `"?"` before the first
/// completion (no rate to extrapolate from yet).
fn fmt_eta(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "?".to_owned();
    }
    let s = seconds.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// One progress line, fixed field order so piped logs stay grep-able.
fn render_line(snap: &ProgressSnapshot) -> String {
    let mut line = format!(
        "[{} {}/{}] {}/{} cells ({:.0}%) failed {} resumed {} violations {} {:.1}/s eta {}",
        snap.label,
        snap.shard_index,
        snap.shard_count,
        snap.done + snap.failed,
        snap.total,
        snap.fraction_done() * 100.0,
        snap.failed,
        snap.resumed,
        snap.violations,
        snap.ewma_rate_per_s,
        fmt_eta(snap.eta_s),
    );
    if let Some(outcome) = &snap.outcome {
        line.push_str(" — ");
        line.push_str(outcome);
    }
    line
}

/// Spawns the stderr render thread: on a TTY the line is redrawn in place
/// a few times a second; piped, one plain line every couple of seconds.
/// Flip the returned flag and join the handle to stop it — it renders one
/// final line (with the run outcome) before exiting.
fn spawn_progress(tracker: Arc<ProgressTracker>) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let tty = std::io::stderr().is_terminal();
        let interval = if tty {
            Duration::from_millis(250)
        } else {
            Duration::from_secs(2)
        };
        loop {
            let stopping = stop_flag.load(Ordering::Acquire);
            if tracker.is_configured() {
                let line = render_line(&tracker.snapshot());
                let mut err = std::io::stderr().lock();
                if tty {
                    // \x1b[2K clears the previous (possibly longer) line.
                    let _ = write!(err, "\r\x1b[2K{line}");
                    if stopping {
                        let _ = writeln!(err);
                    }
                    let _ = err.flush();
                } else {
                    let _ = writeln!(err, "{line}");
                }
            }
            if stopping {
                break;
            }
            std::thread::sleep(interval);
        }
    });
    (stop, handle)
}

fn run(args: RunArgs) -> Result<(), String> {
    let technique = feast::Technique::Slicing {
        metric: args.metric,
        estimate: args.estimate,
    };
    let label = args.label.clone().unwrap_or_else(|| technique.label());
    let scenario = Scenario::with_technique(label, WorkloadSpec::paper(args.variation), technique)
        .with_replications(args.reps)
        .with_system_sizes(args.sizes.clone())
        .with_base_seed(args.seed)
        .with_strict_windows(args.strict_windows);

    let tracker = Arc::new(ProgressTracker::new());
    let mut runner = Runner::new(scenario)
        .threads(args.threads)
        .shard(args.shard)
        .strict_validate(args.strict_validate)
        .fail_fast(args.fail_fast)
        .progress(Arc::clone(&tracker));
    if let Some(path) = &args.checkpoint {
        runner = runner.checkpoint(path);
    }
    if let Some(path) = args.metrics.clone().or_else(|| {
        args.checkpoint
            .as_ref()
            .map(|c| c.with_extension("metrics.json"))
    }) {
        runner = runner.metrics_out(path);
    }
    if let Some(path) = &args.events {
        let sink =
            EventSink::create(path).map_err(|e| format!("--events {}: {e}", path.display()))?;
        runner = runner.events(sink);
    }
    #[cfg(feature = "fault-inject")]
    if !args.faults.is_empty() {
        let mut plan = FaultPlan::new(args.fault_seed);
        for spec in &args.faults {
            plan = plan.with_fault(*spec);
        }
        runner = runner.faults(plan);
    }
    #[cfg(not(feature = "fault-inject"))]
    if !args.faults.is_empty() {
        let _ = args.fault_seed;
        return Err(
            "--fault requires a build with `--features fault-inject` (release builds \
             compile the fault hooks out entirely)"
                .to_owned(),
        );
    }

    let view = args.progress.then(|| spawn_progress(Arc::clone(&tracker)));
    let outcome = if args.shard.is_full() {
        runner
            .run()
            .map(|r| serde_json::to_string_pretty(&r).expect("plain data serializes"))
    } else {
        runner
            .run_partial()
            .map(|p| serde_json::to_string_pretty(&p).expect("plain data serializes"))
    };
    if let Some((stop, handle)) = view {
        stop.store(true, Ordering::Release);
        let _ = handle.join();
    }
    let json = outcome.map_err(|e| e.to_string())?;
    deliver(&args.out, &json).map_err(|e| format!("writing output: {e}"))
}

fn merge(args: MergeArgs) -> Result<(), String> {
    let parts: Vec<PartialResult> = args
        .parts
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
        })
        .collect::<Result<_, String>>()?;
    let result = PartialResult::merge(&parts).map_err(|e| e.to_string())?;
    if args.strict_validate {
        let violations: usize = result.points.iter().map(|p| p.violations).sum();
        let cells = result.points.iter().filter(|p| p.violations > 0).count();
        let failed: usize = result.points.iter().map(|p| p.failed).sum();
        if violations > 0 {
            return Err(RunError::AuditFailed { violations, cells }.to_string());
        }
        if failed > 0 {
            return Err(RunError::DegradedRun { failed }.to_string());
        }
    }
    let json = serde_json::to_string_pretty(&result).expect("plain data serializes");
    deliver(&args.out, &json).map_err(|e| format!("writing output: {e}"))
}

fn main() -> ExitCode {
    tracing_subscriber::fmt()
        .with_env_filter(
            EnvFilter::try_from_default_env().unwrap_or_else(|_| EnvFilter::new("warn")),
        )
        .with_target(false)
        .init();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command {
        Command::Run(args) => run(*args),
        Command::Merge(args) => merge(args),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sweep: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_defaults_and_flags() {
        let Command::Run(a) = parse_args(&argv(&["run"])).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.reps, 128);
        assert!(a.shard.is_full());
        assert_eq!(a.seed, 0xFEA57);
        assert!(!a.strict_validate);
        assert!(!a.fail_fast);
        assert!(!a.strict_windows);
        assert!(a.faults.is_empty());
        assert_eq!(a.fault_seed, 0);

        let Command::Run(a) = parse_args(&argv(&[
            "run",
            "--metric",
            "thres:2",
            "--estimate",
            "ccaa",
            "--variation",
            "hdet",
            "--reps",
            "16",
            "--sizes",
            "2,8",
            "--seed",
            "0xABC",
            "--shard",
            "1/4",
            "--checkpoint",
            "/tmp/c.jsonl",
        ]))
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(a.reps, 16);
        assert_eq!(a.sizes, vec![2, 8]);
        assert_eq!(a.seed, 0xABC);
        assert_eq!(a.shard, ShardSpec::new(1, 4));
        assert_eq!(a.checkpoint, Some(PathBuf::from("/tmp/c.jsonl")));
    }

    #[test]
    fn parses_merge() {
        let Command::Merge(a) = parse_args(&argv(&[
            "merge",
            "--out",
            "full.json",
            "p0.json",
            "p1.json",
        ]))
        .unwrap() else {
            panic!("expected merge");
        };
        assert_eq!(a.parts.len(), 2);
        assert_eq!(a.out, Some(PathBuf::from("full.json")));
        assert!(!a.strict_validate);

        let Command::Merge(a) =
            parse_args(&argv(&["merge", "--strict-validate", "p0.json"])).unwrap()
        else {
            panic!("expected merge");
        };
        assert!(a.strict_validate);
    }

    #[test]
    fn parses_robustness_flags() {
        let Command::Run(a) = parse_args(&argv(&[
            "run",
            "--strict-validate",
            "--fail-fast",
            "--strict-windows",
            "--fault",
            "checkpoint-io:1.0:2",
            "--fault",
            "worker-panic:0.25",
            "--fault-seed",
            "0xDEAD",
        ]))
        .unwrap() else {
            panic!("expected run");
        };
        assert!(a.strict_validate);
        assert!(a.fail_fast);
        assert!(a.strict_windows);
        assert_eq!(a.fault_seed, 0xDEAD);
        assert_eq!(a.faults.len(), 2);
        assert_eq!(a.faults[0].site, feast::FaultSite::CheckpointIo);
        assert_eq!(a.faults[0].attempts, 2);
        assert_eq!(a.faults[1].site, feast::FaultSite::WorkerPanic);
        assert_eq!(a.faults[1].attempts, u64::MAX);

        let err = parse_args(&argv(&["run", "--fault", "bogus:1.0"])).unwrap_err();
        assert!(
            err.contains("--fault:"),
            "error should name the flag: {err}"
        );
        assert!(parse_args(&argv(&["run", "--fault", "worker-panic:7"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["frobnicate"])).is_err());
        assert!(parse_args(&argv(&["run", "--metric", "nope"])).is_err());
        assert!(parse_args(&argv(&["run", "--shard", "3"])).is_err());
        assert!(parse_args(&argv(&["merge"])).is_err());
    }

    #[test]
    fn parses_observatory_flags() {
        let Command::Run(a) = parse_args(&argv(&["run"])).unwrap() else {
            panic!("expected run");
        };
        assert!(!a.progress);
        assert_eq!(a.metrics, None);

        let Command::Run(a) =
            parse_args(&argv(&["run", "--progress", "--metrics", "/tmp/m.json"])).unwrap()
        else {
            panic!("expected run");
        };
        assert!(a.progress);
        assert_eq!(a.metrics, Some(PathBuf::from("/tmp/m.json")));

        assert!(parse_args(&argv(&["run", "--metrics"])).is_err());
    }

    #[test]
    fn eta_formatting_is_coarse_and_total() {
        assert_eq!(fmt_eta(f64::INFINITY), "?");
        assert_eq!(fmt_eta(0.4), "0s");
        assert_eq!(fmt_eta(49.0), "49s");
        assert_eq!(fmt_eta(125.0), "2m05s");
        assert_eq!(fmt_eta(3720.0), "1h02m");
    }

    #[test]
    fn progress_line_has_fixed_grepable_fields() {
        let snap = ProgressSnapshot {
            label: "PURE/CCNE".to_owned(),
            shard_index: 1,
            shard_count: 4,
            total: 64,
            done: 30,
            failed: 2,
            resumed: 8,
            violations: 3,
            elapsed_s: 10.0,
            rate_per_s: 2.4,
            ewma_rate_per_s: 2.5,
            eta_s: 12.8,
            outcome: None,
        };
        let line = render_line(&snap);
        assert_eq!(
            line,
            "[PURE/CCNE 1/4] 32/64 cells (50%) failed 2 resumed 8 violations 3 2.5/s eta 13s"
        );
        let done = ProgressSnapshot {
            outcome: Some("complete".to_owned()),
            eta_s: 0.0,
            ..snap
        };
        assert!(render_line(&done).ends_with("— complete"));
    }

    #[test]
    fn seed_parses_hex_and_decimal() {
        assert_eq!(parse_seed("42").unwrap(), 42);
        assert_eq!(parse_seed("0xFEA57").unwrap(), 0xFEA57);
        assert!(parse_seed("zzz").is_err());
    }
}
