//! Deterministic fault injection for the experiment engine.
//!
//! A [`FaultPlan`] decides — purely from a seed and a fault's coordinates
//! `(site, system size, replication, attempt)` — whether a named fault
//! site fires. Decisions are derived through the same SplitMix64 seed
//! streams as the workload generator ([`stream_seed`] / [`sub_stream`]),
//! so a plan is addressable exactly like the replications it perturbs:
//! any shard, resume or thread interleaving sees the same faults at the
//! same cells, which is what makes fault runs diffable against fault-free
//! runs.
//!
//! The plan type is always compiled (it is plain data and costs nothing
//! unless consulted), but the engine only consults it when the
//! `fault-inject` cargo feature is enabled: release builds compile the
//! hooks down to constant `false` and pay zero cost.
//!
//! # Sites
//!
//! | site | where it fires | recovery path |
//! |------|----------------|---------------|
//! | `checkpoint-io` | every checkpoint append attempt | bounded retry with exponential backoff |
//! | `checkpoint-corrupt` | a checkpoint line is written corrupted | per-record CRC32 detects it on resume |
//! | `worker-panic` | a replication panics mid-pipeline | caught and degraded to a typed failed outcome |
//! | `generate-reject` | a workload draw is (virtually) rejected | bounded retry; then a typed failed outcome |
//! | `cancel-race` | cancellation races a completed replication | checkpoint survives; resume completes the sweep |
//! | `admit-log-io` | an admission WAL append attempt fails | bounded retry with exponential backoff |
//! | `admit-log-corrupt` | an admission WAL line is written corrupted | per-record CRC32 detects it on recovery |
//! | `admit-worker-panic` | a slicer worker panics mid-request | caught; a typed `WorkerFailed` verdict, worker respawns |
//! | `admit-queue-race` | a worker delivers its product twice | the coordinator drops the duplicate by sequence |
//!
//! The `attempts` knob of a [`FaultSpec`] bounds how many *consecutive
//! attempts* at a faulted cell fail, which distinguishes transient faults
//! (the retry policy recovers, results are bit-identical to a fault-free
//! run) from permanent ones (the cell degrades or the run aborts with a
//! typed error).
//!
//! [`stream_seed`]: taskgraph::gen::stream_seed
//! [`sub_stream`]: taskgraph::gen::sub_stream

use std::fmt;
use std::str::FromStr;

use taskgraph::gen::{stream_label, stream_seed, sub_stream};

/// A named fault-injection site in the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A checkpoint append fails with a synthetic I/O error.
    CheckpointIo,
    /// A checkpoint line is written silently corrupted (one digit of the
    /// sealed record is altered), simulating at-rest disk corruption.
    CheckpointCorrupt,
    /// A worker panics in the middle of a replication's pipeline.
    WorkerPanic,
    /// A workload draw is reported rejected without consuming the
    /// replication's seed stream, exercising the bounded generation
    /// retry; recovery reproduces the fault-free graph bit-identically.
    GenerateReject,
    /// Cancellation is requested immediately after a replication
    /// completes, racing the run shutdown against the checkpoint append.
    CancelRace,
    /// An admission write-ahead-log append fails with a synthetic I/O
    /// error. Coordinates are `(system size, sequence, attempt)`.
    AdmitLogIo,
    /// An admission write-ahead-log line is written silently corrupted
    /// (one digit of the sealed record is altered); recovery's per-record
    /// CRC32 detects it as a typed error.
    AdmitLogCorrupt,
    /// A slicer worker panics while distributing deadlines for a request;
    /// the request degrades to a typed `WorkerFailed` verdict and the
    /// worker's pipeline is rebuilt in place.
    AdmitWorkerPanic,
    /// A slicer worker delivers its product to the coordinator twice
    /// (at-least-once delivery); the coordinator must deduplicate by
    /// submission sequence, bit-identically to the fault-free run.
    AdmitQueueRace,
}

impl FaultSite {
    /// Every site, in a stable order (the CLI fault-matrix order).
    pub const ALL: [FaultSite; 9] = [
        FaultSite::CheckpointIo,
        FaultSite::CheckpointCorrupt,
        FaultSite::WorkerPanic,
        FaultSite::GenerateReject,
        FaultSite::CancelRace,
        FaultSite::AdmitLogIo,
        FaultSite::AdmitLogCorrupt,
        FaultSite::AdmitWorkerPanic,
        FaultSite::AdmitQueueRace,
    ];

    /// The site's stable kebab-case name (CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CheckpointIo => "checkpoint-io",
            FaultSite::CheckpointCorrupt => "checkpoint-corrupt",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::GenerateReject => "generate-reject",
            FaultSite::CancelRace => "cancel-race",
            FaultSite::AdmitLogIo => "admit-log-io",
            FaultSite::AdmitLogCorrupt => "admit-log-corrupt",
            FaultSite::AdmitWorkerPanic => "admit-worker-panic",
            FaultSite::AdmitQueueRace => "admit-queue-race",
        }
    }

    /// The site's seed-stream coordinate: a stable hash of its name, so
    /// adding sites never perturbs existing ones.
    fn stream(self) -> u64 {
        stream_label(self.name().as_bytes())
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultSite {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSite, String> {
        FaultSite::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown fault site {s:?} (expected one of {})",
                    names.join(", ")
                )
            })
    }
}

/// One injected fault class: a site, a per-cell firing probability, and a
/// bound on how many consecutive attempts at a faulted cell fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Where the fault fires.
    pub site: FaultSite,
    /// Probability (in `[0, 1]`) that a given `(system size, replication)`
    /// cell is faulted. The draw is deterministic per cell.
    pub rate: f64,
    /// How many consecutive attempts at a faulted cell fail before the
    /// fault clears. `u64::MAX` (the CLI default) means the fault is
    /// permanent at that cell; a small value models a transient fault the
    /// retry policy recovers from.
    pub attempts: u64,
}

impl FaultSpec {
    /// A permanent fault at `site` firing with probability `rate` per
    /// cell.
    pub fn new(site: FaultSite, rate: f64) -> FaultSpec {
        FaultSpec {
            site,
            rate,
            attempts: u64::MAX,
        }
    }

    /// Bounds the fault to the first `attempts` consecutive attempts at a
    /// faulted cell (a transient fault).
    #[must_use]
    pub fn transient(mut self, attempts: u64) -> FaultSpec {
        self.attempts = attempts;
        self
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    /// Parses the CLI spelling `site:rate[:attempts]`, e.g.
    /// `checkpoint-io:1.0:2` or `worker-panic:0.25`.
    fn from_str(s: &str) -> Result<FaultSpec, String> {
        let mut parts = s.split(':');
        let site: FaultSite = parts
            .next()
            .ok_or_else(|| "empty fault spec".to_owned())?
            .parse()?;
        let rate_text = parts
            .next()
            .ok_or_else(|| format!("fault spec {s:?} is missing a rate (site:rate[:attempts])"))?;
        let rate: f64 = rate_text
            .parse()
            .map_err(|_| format!("fault rate {rate_text:?} is not a number"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} is outside [0, 1]"));
        }
        let attempts = match parts.next() {
            None => u64::MAX,
            Some(text) => text
                .parse()
                .map_err(|_| format!("fault attempts {text:?} is not an integer"))?,
        };
        if parts.next().is_some() {
            return Err(format!(
                "fault spec {s:?} has too many fields (site:rate[:attempts])"
            ));
        }
        Ok(FaultSpec {
            site,
            rate,
            attempts,
        })
    }
}

/// A seedable, deterministic fault plan: the full description of which
/// faults fire where during a run.
///
/// The plan seed is independent of the scenario's base seed, so the same
/// fault pattern can be replayed against different workloads (or vice
/// versa).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults) drawing its per-cell decisions from
    /// `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds one fault class to the plan. The first spec for a site wins.
    #[must_use]
    pub fn with_fault(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Does the plan inject anything at all?
    pub fn is_empty(&self) -> bool {
        self.specs.iter().all(|s| s.rate <= 0.0)
    }

    /// The plan's fault classes, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Does `site` fire at cell `(system_size, replication)` on its
    /// `attempt`-th consecutive try?
    ///
    /// The per-cell decision is drawn once from the plan seed and the
    /// coordinates (never from `attempt`), so retries at a faulted cell
    /// keep hitting the fault until `attempt` reaches the spec's
    /// `attempts` bound — at which point the fault clears and the retry
    /// succeeds.
    pub fn should_fire(
        &self,
        site: FaultSite,
        system_size: usize,
        replication: usize,
        attempt: u64,
    ) -> bool {
        let Some(spec) = self.specs.iter().find(|s| s.site == site) else {
            return false;
        };
        if attempt >= spec.attempts {
            return false;
        }
        let cell = stream_seed(
            self.seed,
            site.stream(),
            system_size as u64,
            replication as u64,
        );
        unit(sub_stream(cell, 0)) < spec.rate
    }
}

/// Maps a well-mixed `u64` to a uniform draw in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firing_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan::new(7).with_fault(FaultSpec::new(FaultSite::WorkerPanic, 0.5));
        let fires: Vec<bool> = (0..1000)
            .map(|rep| plan.should_fire(FaultSite::WorkerPanic, 8, rep, 0))
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|rep| plan.should_fire(FaultSite::WorkerPanic, 8, rep, 0))
            .collect();
        assert_eq!(
            fires, again,
            "decisions must be a pure function of coordinates"
        );
        let hits = fires.iter().filter(|&&f| f).count();
        assert!(
            (350..=650).contains(&hits),
            "rate 0.5 over 1000 cells should hit roughly half, got {hits}"
        );
    }

    #[test]
    fn rate_extremes_and_unknown_sites() {
        let plan = FaultPlan::new(1)
            .with_fault(FaultSpec::new(FaultSite::CheckpointIo, 1.0))
            .with_fault(FaultSpec::new(FaultSite::CancelRace, 0.0));
        for rep in 0..64 {
            assert!(plan.should_fire(FaultSite::CheckpointIo, 2, rep, 0));
            assert!(!plan.should_fire(FaultSite::CancelRace, 2, rep, 0));
            // No spec for this site: never fires.
            assert!(!plan.should_fire(FaultSite::WorkerPanic, 2, rep, 0));
        }
        assert!(FaultPlan::new(3).is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn transient_faults_clear_after_their_attempt_bound() {
        let plan =
            FaultPlan::new(9).with_fault(FaultSpec::new(FaultSite::CheckpointIo, 1.0).transient(2));
        assert!(plan.should_fire(FaultSite::CheckpointIo, 4, 0, 0));
        assert!(plan.should_fire(FaultSite::CheckpointIo, 4, 0, 1));
        assert!(!plan.should_fire(FaultSite::CheckpointIo, 4, 0, 2));
        assert!(!plan.should_fire(FaultSite::CheckpointIo, 4, 0, 99));
    }

    #[test]
    fn seeds_and_sites_address_independent_streams() {
        let a = FaultPlan::new(1).with_fault(FaultSpec::new(FaultSite::WorkerPanic, 0.5));
        let b = FaultPlan::new(2).with_fault(FaultSpec::new(FaultSite::WorkerPanic, 0.5));
        let fires = |p: &FaultPlan, site| -> Vec<bool> {
            (0..256).map(|rep| p.should_fire(site, 8, rep, 0)).collect()
        };
        assert_ne!(
            fires(&a, FaultSite::WorkerPanic),
            fires(&b, FaultSite::WorkerPanic),
            "different plan seeds must draw different fault patterns"
        );
        let two = FaultPlan::new(1)
            .with_fault(FaultSpec::new(FaultSite::WorkerPanic, 0.5))
            .with_fault(FaultSpec::new(FaultSite::CancelRace, 0.5));
        assert_ne!(
            fires(&two, FaultSite::WorkerPanic),
            fires(&two, FaultSite::CancelRace),
            "sites must draw from independent streams"
        );
    }

    #[test]
    fn specs_parse_from_cli_spellings() {
        let spec: FaultSpec = "checkpoint-io:1.0:2".parse().unwrap();
        assert_eq!(spec.site, FaultSite::CheckpointIo);
        assert_eq!(spec.rate, 1.0);
        assert_eq!(spec.attempts, 2);
        let spec: FaultSpec = "worker-panic:0.25".parse().unwrap();
        assert_eq!(spec.site, FaultSite::WorkerPanic);
        assert_eq!(spec.attempts, u64::MAX);
        assert!("bogus-site:0.5".parse::<FaultSpec>().is_err());
        assert!("worker-panic".parse::<FaultSpec>().is_err());
        assert!("worker-panic:nan?".parse::<FaultSpec>().is_err());
        assert!("worker-panic:2.0".parse::<FaultSpec>().is_err());
        assert!("worker-panic:0.5:1:9".parse::<FaultSpec>().is_err());
        for site in FaultSite::ALL {
            assert_eq!(site.name().parse::<FaultSite>().unwrap(), site);
        }
        let spec: FaultSpec = "admit-worker-panic:0.125".parse().unwrap();
        assert_eq!(spec.site, FaultSite::AdmitWorkerPanic);
    }

    #[test]
    fn admission_sites_draw_from_streams_independent_of_the_engine_sites() {
        // Site streams hash the site *name*, so extending `ALL` must never
        // perturb the patterns existing sites draw.
        let plan = FaultPlan::new(11)
            .with_fault(FaultSpec::new(FaultSite::AdmitLogIo, 0.5))
            .with_fault(FaultSpec::new(FaultSite::CheckpointIo, 0.5));
        let fires = |site| -> Vec<bool> {
            (0..256)
                .map(|seq| plan.should_fire(site, 8, seq, 0))
                .collect()
        };
        assert_ne!(
            fires(FaultSite::AdmitLogIo),
            fires(FaultSite::CheckpointIo),
            "admission sites must not alias the checkpoint streams"
        );
    }
}
