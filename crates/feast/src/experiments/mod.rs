//! Experiment definitions: one regenerator per figure of the paper plus the
//! complementary studies summarized in §8.
//!
//! | id            | reproduces                                            |
//! |---------------|--------------------------------------------------------|
//! | `fig2`        | Figure 2 — BST metrics PURE/NORM under CCNE/CCAA       |
//! | `fig3`        | Figure 3 — THRES surplus factor Δ ∈ {1, 2, 4}          |
//! | `fig4`        | Figure 4 — THRES threshold c_thres ∈ {0.75,1,1.25}·MET |
//! | `fig5`        | Figure 5 — PURE vs THRES(Δ=1) vs ADAPT                 |
//! | `ext-met`     | §8 — sensitivity to mean execution time                |
//! | `ext-par`     | §8 — sensitivity to task-graph parallelism             |
//! | `ext-ccr`     | §8 — sensitivity to the CCR                            |
//! | `ext-topo`    | §8 — other interconnect topologies                     |
//! | `ext-shapes`  | §8 — in-tree / out-tree / fork-join structures         |
//! | `ext-locality`| §8 — partially pinned (sensor/actuator) workloads      |
//! | `ext-bus`     | §8 — contention-based communication scheduling         |
//! | `ext-baselines`| slicing vs the UD/ED baselines of Kao & Garcia-Molina |

mod extensions;
mod figures;

pub use extensions::{
    ext_baselines, ext_bus, ext_ccr, ext_locality, ext_met, ext_par, ext_placement, ext_shapes,
    ext_topo,
};
pub use figures::{fig2, fig3, fig4, fig5};

use crate::{ExperimentResult, Panel, RunError, Runner, Scenario, Series};

/// Shared configuration for all experiment regenerators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Random workloads per scenario point (the paper uses 128).
    pub replications: usize,
    /// Root seed of the per-replication seed streams (see
    /// [`taskgraph::gen::stream_seed`]).
    pub base_seed: u64,
    /// System sizes to sweep (the paper uses 2–16).
    pub system_sizes: Vec<usize>,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for ExperimentConfig {
    /// The paper's configuration: 128 replications over 2–16 processors.
    fn default() -> Self {
        ExperimentConfig {
            replications: 128,
            base_seed: 0xFEA57,
            system_sizes: (2..=16).step_by(2).collect(),
            threads: 0,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for quick shape checks and CI (8
    /// replications over three sizes).
    pub fn quick() -> Self {
        ExperimentConfig {
            replications: 8,
            base_seed: 0xFEA57,
            system_sizes: vec![2, 8, 16],
            threads: 0,
        }
    }

    /// Replaces the replication count.
    #[must_use]
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications;
        self
    }

    /// Replaces the system-size sweep.
    #[must_use]
    pub fn with_system_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.system_sizes = sizes;
        self
    }

    pub(crate) fn apply(&self, scenario: Scenario) -> Scenario {
        scenario
            .with_replications(self.replications)
            .with_system_sizes(self.system_sizes.clone())
            .with_base_seed(self.base_seed)
    }

    pub(crate) fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// Which lateness measure an experiment plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Measure {
    /// Maximum task lateness against assigned local deadlines (the paper's
    /// figure of merit; only meaningful when every technique partitions the
    /// same end-to-end deadline).
    MaxTask,
    /// End-to-end lateness of output subtasks against their given
    /// deadlines (technique neutral; used against the UD/ED baselines).
    EndToEnd,
}

/// Runs a list of `(panel title, scenarios)` pairs into panels.
pub(crate) fn run_panels(
    cfg: &ExperimentConfig,
    panels: Vec<(String, Vec<Scenario>)>,
) -> Result<Vec<Panel>, RunError> {
    run_panels_measuring(cfg, panels, Measure::MaxTask)
}

/// Runs panels plotting the chosen lateness measure.
pub(crate) fn run_panels_measuring(
    cfg: &ExperimentConfig,
    panels: Vec<(String, Vec<Scenario>)>,
    measure: Measure,
) -> Result<Vec<Panel>, RunError> {
    let threads = cfg.effective_threads();
    panels
        .into_iter()
        .map(|(title, scenarios)| {
            let series: Result<Vec<Series>, RunError> = scenarios
                .iter()
                .map(|s| {
                    let result = Runner::new(s.clone()).threads(threads).run()?;
                    Ok(Series {
                        points: match measure {
                            Measure::MaxTask => result.lateness_series(),
                            Measure::EndToEnd => result.end_to_end_series(),
                        },
                        ..Series::from(&result)
                    })
                })
                .collect();
            Ok(Panel {
                title,
                series: series?,
            })
        })
        .collect()
}

/// A named, runnable experiment for the CLI and benches.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDescriptor {
    /// Stable identifier (`"fig2"`, `"ext-ccr"`, ...).
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The regenerator.
    pub run: fn(&ExperimentConfig) -> Result<ExperimentResult, RunError>,
}

/// Every experiment this repository can regenerate, in presentation order.
pub fn all_experiments() -> Vec<ExperimentDescriptor> {
    vec![
        ExperimentDescriptor {
            id: "fig2",
            description: "BST metrics (PURE, NORM) under CCNE and CCAA estimation",
            run: fig2,
        },
        ExperimentDescriptor {
            id: "fig3",
            description: "THRES surplus factor sensitivity (delta = 1, 2, 4)",
            run: fig3,
        },
        ExperimentDescriptor {
            id: "fig4",
            description: "THRES execution-time threshold sensitivity (0.75-1.25 x MET)",
            run: fig4,
        },
        ExperimentDescriptor {
            id: "fig5",
            description: "PURE vs THRES(delta=1) vs ADAPT",
            run: fig5,
        },
        ExperimentDescriptor {
            id: "ext-met",
            description: "sensitivity to mean execution time (section 8)",
            run: ext_met,
        },
        ExperimentDescriptor {
            id: "ext-par",
            description: "sensitivity to task-graph parallelism (section 8)",
            run: ext_par,
        },
        ExperimentDescriptor {
            id: "ext-ccr",
            description: "sensitivity to communication-to-computation ratio (section 8)",
            run: ext_ccr,
        },
        ExperimentDescriptor {
            id: "ext-topo",
            description: "other interconnect topologies (section 8)",
            run: ext_topo,
        },
        ExperimentDescriptor {
            id: "ext-shapes",
            description: "structured task graphs: in-tree, out-tree, fork-join (section 8)",
            run: ext_shapes,
        },
        ExperimentDescriptor {
            id: "ext-locality",
            description: "partially pinned workloads (sensor/actuator locality)",
            run: ext_locality,
        },
        ExperimentDescriptor {
            id: "ext-bus",
            description: "bus contention vs fixed-delay communication",
            run: ext_bus,
        },
        ExperimentDescriptor {
            id: "ext-baselines",
            description: "slicing techniques vs the UD/ED baselines of Kao & Garcia-Molina",
            run: ext_baselines,
        },
        ExperimentDescriptor {
            id: "ext-placement",
            description: "ablation: insertion-based vs append-only processor placement",
            run: ext_placement,
        },
    ]
}

/// Looks up an experiment by id.
pub fn experiment(id: &str) -> Option<ExperimentDescriptor> {
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.replications, 128);
        assert_eq!(cfg.system_sizes, vec![2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn quick_config_is_small() {
        let cfg = ExperimentConfig::quick();
        assert!(cfg.replications <= 16);
        assert!(cfg.system_sizes.len() <= 4);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert_eq!(all.len(), 13);
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13, "duplicate experiment ids");
        assert!(experiment("fig2").is_some());
        assert!(experiment("nope").is_none());
    }

    #[test]
    fn config_builders() {
        let cfg = ExperimentConfig::default()
            .with_replications(4)
            .with_system_sizes(vec![2]);
        assert_eq!(cfg.replications, 4);
        assert_eq!(cfg.system_sizes, vec![2]);
    }
}
