//! Regenerators for the complementary studies summarized in §8 of the paper
//! (full data in the companion technical report TR-281).

use sched::BusModel;
use slicing::{BaselineStrategy, CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, Shape, WorkloadSpec};

use crate::experiments::{run_panels, run_panels_measuring, ExperimentConfig, Measure};
use crate::{
    ExperimentResult, PinningPolicy, RunError, Scenario, SchedulerSpec, TopologyKind,
    WorkloadSource,
};

fn ast_vs_bst(spec: &WorkloadSpec, cfg: &ExperimentConfig) -> Vec<Scenario> {
    vec![
        cfg.apply(Scenario::paper(
            "PURE",
            spec.clone(),
            MetricKind::pure(),
            CommEstimate::Ccne,
        )),
        cfg.apply(Scenario::paper(
            "ADAPT",
            spec.clone(),
            MetricKind::adapt(),
            CommEstimate::Ccne,
        )),
    ]
}

/// **ext-met** — AST vs BST across mean subtask execution times
/// (MET ∈ {10, 20, 40}, MDET).
///
/// §8: "AST scales very well with these parameters when the ADAPT metric is
/// used."
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_met(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let panels = [10, 20, 40]
        .into_iter()
        .map(|met| {
            let spec = WorkloadSpec::paper(ExecVariation::Mdet).with_mean_exec_time(met);
            (format!("MET={met}"), ast_vs_bst(&spec, cfg))
        })
        .collect();
    Ok(ExperimentResult {
        id: "ext-met".into(),
        description: "ADAPT vs PURE for different mean subtask execution times".into(),
        panels: run_panels(cfg, panels)?,
        profile: None,
    })
}

/// **ext-par** — AST vs BST across degrees of task-graph parallelism,
/// controlled through the graph depth (shallow graphs are wide/parallel,
/// deep graphs are sequential).
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_par(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let panels = [(4usize, 6usize, "wide"), (8, 12, "paper"), (14, 18, "deep")]
        .into_iter()
        .map(|(lo, hi, tag)| {
            let spec = WorkloadSpec::paper(ExecVariation::Mdet).with_depth(lo..=hi);
            (format!("depth {lo}-{hi} ({tag})"), ast_vs_bst(&spec, cfg))
        })
        .collect();
    Ok(ExperimentResult {
        id: "ext-par".into(),
        description: "ADAPT vs PURE for different degrees of task-graph parallelism".into(),
        panels: run_panels(cfg, panels)?,
        profile: None,
    })
}

/// **ext-ccr** — sensitivity to the communication-to-computation ratio
/// (CCR ∈ {0.5, 1, 2}), comparing CCNE- and CCAA-based distribution.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_ccr(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let panels = [0.5, 1.0, 2.0]
        .into_iter()
        .map(|ccr| {
            let spec = WorkloadSpec::paper(ExecVariation::Mdet).with_ccr(ccr);
            let scenarios = vec![
                cfg.apply(Scenario::paper(
                    "PURE/CCNE",
                    spec.clone(),
                    MetricKind::pure(),
                    CommEstimate::Ccne,
                )),
                cfg.apply(Scenario::paper(
                    "PURE/CCAA",
                    spec.clone(),
                    MetricKind::pure(),
                    CommEstimate::Ccaa,
                )),
                cfg.apply(Scenario::paper(
                    "ADAPT",
                    spec.clone(),
                    MetricKind::adapt(),
                    CommEstimate::Ccne,
                )),
            ];
            (format!("CCR={ccr}"), scenarios)
        })
        .collect();
    Ok(ExperimentResult {
        id: "ext-ccr".into(),
        description: "Sensitivity to the communication-to-computation ratio".into(),
        panels: run_panels(cfg, panels)?,
        profile: None,
    })
}

/// **ext-topo** — AST vs BST on shared-bus, fully-connected, ring and 2-D
/// mesh interconnects.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_topo(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let panels = [
        TopologyKind::SharedBus,
        TopologyKind::FullyConnected,
        TopologyKind::Ring,
        TopologyKind::Mesh2D,
    ]
    .into_iter()
    .map(|topo| {
        let scenarios = ast_vs_bst(&spec, cfg)
            .into_iter()
            .map(|s| s.with_topology(topo))
            .collect();
        (topo.label().to_owned(), scenarios)
    })
    .collect();
    Ok(ExperimentResult {
        id: "ext-topo".into(),
        description: "ADAPT vs PURE across interconnect topologies".into(),
        panels: run_panels(cfg, panels)?,
        profile: None,
    })
}

/// **ext-shapes** — AST vs BST on the regular task-graph structures named
/// as future work in §8: in-tree, out-tree and fork–join.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_shapes(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let shapes = [
        Shape::InTree {
            depth: 5,
            branching: 2,
        },
        Shape::OutTree {
            depth: 5,
            branching: 2,
        },
        Shape::ForkJoin {
            stages: 5,
            width: 5,
        },
    ];
    let panels = shapes
        .into_iter()
        .map(|shape| {
            let scenarios = ast_vs_bst(&spec, cfg)
                .into_iter()
                .map(|s| {
                    s.with_workload(WorkloadSource::Shaped {
                        shape,
                        spec: spec.clone(),
                    })
                })
                .collect();
            (shape.label(), scenarios)
        })
        .collect();
    Ok(ExperimentResult {
        id: "ext-shapes".into(),
        description: "ADAPT vs PURE on structured task graphs".into(),
        panels: run_panels(cfg, panels)?,
        profile: None,
    })
}

/// **ext-locality** — fully relaxed versus partially pinned workloads
/// (inputs and outputs pinned round-robin, modelling sensors/actuators).
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_locality(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let panels = [PinningPolicy::Relaxed, PinningPolicy::AnchoredIo]
        .into_iter()
        .map(|policy| {
            let scenarios = ast_vs_bst(&spec, cfg)
                .into_iter()
                .map(|s| s.with_pinning(policy))
                .collect();
            (policy.label().to_owned(), scenarios)
        })
        .collect();
    Ok(ExperimentResult {
        id: "ext-locality".into(),
        description: "ADAPT vs PURE with and without sensor/actuator pinning".into(),
        panels: run_panels(cfg, panels)?,
        profile: None,
    })
}

/// **ext-bus** — fixed-delay versus contention-based communication on the
/// shared bus.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_bus(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let panels = [BusModel::Delay, BusModel::Contention]
        .into_iter()
        .map(|bus| {
            let scheduler = SchedulerSpec {
                bus_model: bus,
                ..SchedulerSpec::default()
            };
            let scenarios = ast_vs_bst(&spec, cfg)
                .into_iter()
                .map(|s| s.with_scheduler(scheduler))
                .collect();
            (bus.label().to_owned(), scenarios)
        })
        .collect();
    Ok(ExperimentResult {
        id: "ext-bus".into(),
        description: "ADAPT vs PURE under fixed-delay and contention bus models".into(),
        panels: run_panels(cfg, panels)?,
        profile: None,
    })
}

/// **ext-placement** — ablation of the scheduler's placement policy:
/// insertion-based list scheduling (the default, which lets short subtasks
/// fill idle gaps) against append-only placement.
///
/// This is the mechanism through which long subtasks suffer
/// disproportionately from contention (DESIGN.md §3), so it directly shapes
/// how much the AST metrics can gain.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_placement(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    use sched::PlacementPolicy;
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let panels = [PlacementPolicy::Insertion, PlacementPolicy::Append]
        .into_iter()
        .map(|placement| {
            let scheduler = SchedulerSpec {
                placement,
                ..SchedulerSpec::default()
            };
            let scenarios = ast_vs_bst(&spec, cfg)
                .into_iter()
                .map(|s| s.with_scheduler(scheduler))
                .collect();
            (placement.label().to_owned(), scenarios)
        })
        .collect();
    Ok(ExperimentResult {
        id: "ext-placement".into(),
        description: "ADAPT vs PURE under insertion-based and append-only placement".into(),
        panels: run_panels(cfg, panels)?,
        profile: None,
    })
}

/// **ext-baselines** — the slicing techniques against the pre-slicing
/// deadline-distribution baselines of Kao & Garcia-Molina (UD, ED), which
/// the paper's related-work section positions BST/AST against.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn ext_baselines(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    // Two neutrality requirements for a fair cross-family comparison:
    // (1) measure end-to-end lateness (baseline local deadlines are not
    //     comparable to sliced windows);
    // (2) run the work-conserving scheduler, so every technique influences
    //     the schedule only through its EDF priorities — the time-driven
    //     model would deliberately stretch sliced schedules to their
    //     windows.
    let work_conserving = SchedulerSpec {
        respect_release: false,
        ..SchedulerSpec::default()
    };
    let panels = ExecVariation::paper_scenarios()
        .into_iter()
        .map(|variation| {
            let spec = WorkloadSpec::paper(variation);
            let scenarios = vec![
                cfg.apply(Scenario::baseline(
                    "UD",
                    spec.clone(),
                    BaselineStrategy::Ultimate,
                )),
                cfg.apply(Scenario::baseline(
                    "ED",
                    spec.clone(),
                    BaselineStrategy::Effective,
                )),
                cfg.apply(Scenario::paper(
                    "PURE",
                    spec.clone(),
                    MetricKind::pure(),
                    CommEstimate::Ccne,
                )),
                cfg.apply(Scenario::paper(
                    "ADAPT",
                    spec.clone(),
                    MetricKind::adapt(),
                    CommEstimate::Ccne,
                )),
            ]
            .into_iter()
            .map(|s| s.with_scheduler(work_conserving))
            .collect();
            (variation.label(), scenarios)
        })
        .collect();
    Ok(ExperimentResult {
        id: "ext-baselines".into(),
        description: "Slicing techniques vs the UD/ED baselines of Kao & Garcia-Molina \
                      (end-to-end lateness: baseline local deadlines are not comparable \
                      to sliced windows)"
            .into(),
        panels: run_panels_measuring(cfg, panels, Measure::EndToEnd)?,
        profile: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            replications: 2,
            base_seed: 5,
            system_sizes: vec![2, 8],
            threads: 1,
        }
    }

    #[test]
    fn ext_shapes_runs() {
        let r = ext_shapes(&tiny()).unwrap();
        assert_eq!(r.panels.len(), 3);
        assert!(r.panels.iter().all(|p| p.series.len() == 2));
    }

    #[test]
    fn ext_locality_runs() {
        let r = ext_locality(&tiny()).unwrap();
        assert_eq!(r.panels.len(), 2);
        assert_eq!(r.panels[0].title, "relaxed");
        assert_eq!(r.panels[1].title, "anchored-io");
    }

    #[test]
    fn ext_bus_runs() {
        let r = ext_bus(&tiny()).unwrap();
        assert_eq!(r.panels.len(), 2);
    }

    #[test]
    fn ext_topo_runs() {
        let r = ext_topo(&tiny()).unwrap();
        assert_eq!(r.panels.len(), 4);
        assert_eq!(r.panels[0].title, "bus");
    }

    #[test]
    fn ext_placement_runs_and_insertion_wins() {
        let cfg = ExperimentConfig {
            replications: 8,
            base_seed: 11,
            system_sizes: vec![2],
            threads: 0,
        };
        let r = ext_placement(&cfg).unwrap();
        assert_eq!(r.panels.len(), 2);
        assert_eq!(r.panels[0].title, "insertion");
        // Gap insertion never hurts the contended 2-processor case on
        // average: it only adds placement opportunities.
        let ins = r.series("insertion", "PURE").unwrap().points[0].1;
        let app = r.series("append", "PURE").unwrap().points[0].1;
        assert!(
            ins <= app + 1e-9,
            "insertion ({ins}) must not lose to append ({app})"
        );
    }

    #[test]
    fn ext_baselines_runs_and_slicing_wins() {
        let cfg = ExperimentConfig {
            // 32 replications on a small (contended) system: the systematic
            // PURE-vs-UD gap must dominate sampling noise. On large, lightly
            // loaded systems UD's unconstrained EDF can finish marginally
            // earlier, so the comparison is only meaningful under contention.
            replications: 32,
            base_seed: 3,
            system_sizes: vec![4],
            threads: 0,
        };
        let r = ext_baselines(&cfg).unwrap();
        assert_eq!(r.panels.len(), 3);
        // The slicing techniques dominate the naive baselines when
        // processors are contended: UD gives every subtask the full
        // end-to-end deadline, deferring all urgency information until the
        // deadline is nearly spent.
        let pure = r.series("MDET", "PURE").unwrap().points[0].1;
        let ud = r.series("MDET", "UD").unwrap().points[0].1;
        assert!(pure <= ud, "PURE ({pure}) must beat UD ({ud})");
    }
}
