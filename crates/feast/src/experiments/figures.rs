//! Regenerators for the paper's four evaluation figures.
//!
//! Each figure plots the average (over replications) of the **maximum task
//! lateness** against system size, one panel per execution-time variation
//! scenario (LDET ±25 %, MDET ±50 %, HDET ±99 %). More negative is better.

use slicing::{CommEstimate, MetricKind, ThresholdSpec};
use taskgraph::gen::{ExecVariation, WorkloadSpec};

use crate::experiments::{run_panels, ExperimentConfig};
use crate::{ExperimentResult, RunError, Scenario};

fn paper_scenario(
    label: &str,
    variation: ExecVariation,
    metric: MetricKind,
    estimate: CommEstimate,
    cfg: &ExperimentConfig,
) -> Scenario {
    cfg.apply(Scenario::paper(
        label,
        WorkloadSpec::paper(variation),
        metric,
        estimate,
    ))
}

fn variation_panels(
    cfg: &ExperimentConfig,
    series: &[(&str, MetricKind, CommEstimate)],
) -> Vec<(String, Vec<Scenario>)> {
    ExecVariation::paper_scenarios()
        .into_iter()
        .map(|variation| {
            let scenarios = series
                .iter()
                .map(|(label, metric, estimate)| {
                    paper_scenario(label, variation, *metric, estimate.clone(), cfg)
                })
                .collect();
            (variation.label(), scenarios)
        })
        .collect()
}

/// **Figure 2** — maximum task lateness for the BST metrics PURE and NORM,
/// each under the CCNE and CCAA communication-cost estimation strategies.
///
/// Expected shape: lateness decreases roughly linearly with system size
/// before saturating; CCNE dominates CCAA; PURE dominates NORM, especially
/// under high execution-time variation (HDET).
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn fig2(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let series = [
        ("PURE/CCNE", MetricKind::pure(), CommEstimate::Ccne),
        ("PURE/CCAA", MetricKind::pure(), CommEstimate::Ccaa),
        ("NORM/CCNE", MetricKind::norm(), CommEstimate::Ccne),
        ("NORM/CCAA", MetricKind::norm(), CommEstimate::Ccaa),
    ];
    Ok(ExperimentResult {
        id: "fig2".into(),
        description: "Maximum task lateness for the PURE and NORM metrics (BST)".into(),
        panels: run_panels(cfg, variation_panels(cfg, &series))?,
        profile: None,
    })
}

/// **Figure 3** — THRES with surplus factors Δ ∈ {1, 2, 4} (CCNE, c_thres =
/// 1.25 × MET).
///
/// Expected shape: large Δ helps small systems (extra slack for long
/// subtasks under contention) but hurts large systems; no Δ wins everywhere.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn fig3(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let series = [
        ("THRES d=1", MetricKind::thres(1.0), CommEstimate::Ccne),
        ("THRES d=2", MetricKind::thres(2.0), CommEstimate::Ccne),
        ("THRES d=4", MetricKind::thres(4.0), CommEstimate::Ccne),
    ];
    Ok(ExperimentResult {
        id: "fig3".into(),
        description: "Maximum task lateness for different THRES surplus factors".into(),
        panels: run_panels(cfg, variation_panels(cfg, &series))?,
        profile: None,
    })
}

/// **Figure 4** — THRES (Δ = 1) with c_thres at 75 %, 100 % and 125 % of the
/// MET.
///
/// Expected shape: mild sensitivity — varying the threshold ±25 % around the
/// MET moves lateness by only a few percent, improving slightly as the
/// threshold grows.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn fig4(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let series = [
        (
            "thr=0.75*MET",
            MetricKind::Thres {
                surplus: 1.0,
                threshold: ThresholdSpec::MetFactor(0.75),
            },
            CommEstimate::Ccne,
        ),
        (
            "thr=1.00*MET",
            MetricKind::Thres {
                surplus: 1.0,
                threshold: ThresholdSpec::MetFactor(1.0),
            },
            CommEstimate::Ccne,
        ),
        (
            "thr=1.25*MET",
            MetricKind::Thres {
                surplus: 1.0,
                threshold: ThresholdSpec::MetFactor(1.25),
            },
            CommEstimate::Ccne,
        ),
    ];
    Ok(ExperimentResult {
        id: "fig4".into(),
        description: "Maximum task lateness for different THRES execution-time thresholds".into(),
        panels: run_panels(cfg, variation_panels(cfg, &series))?,
        profile: None,
    })
}

/// **Figure 5** — the headline comparison: PURE (best BST) vs THRES (Δ = 1)
/// vs ADAPT (c_thres = 1.25 × MET, CCNE).
///
/// Expected shape: ADAPT clearly beats PURE and THRES on small systems (up
/// to ~2× better) and converges to PURE as the system grows; THRES trails
/// PURE on large systems.
///
/// # Errors
///
/// Propagates scenario-execution failures.
pub fn fig5(cfg: &ExperimentConfig) -> Result<ExperimentResult, RunError> {
    let series = [
        ("PURE", MetricKind::pure(), CommEstimate::Ccne),
        ("THRES d=1", MetricKind::thres(1.0), CommEstimate::Ccne),
        ("ADAPT", MetricKind::adapt(), CommEstimate::Ccne),
    ];
    Ok(ExperimentResult {
        id: "fig5".into(),
        description: "Maximum task lateness for the THRES and ADAPT metrics (AST) vs PURE".into(),
        panels: run_panels(cfg, variation_panels(cfg, &series))?,
        profile: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            replications: 3,
            base_seed: 1,
            system_sizes: vec![2, 8],
            threads: 1,
        }
    }

    #[test]
    fn fig2_structure() {
        let r = fig2(&tiny()).unwrap();
        assert_eq!(r.id, "fig2");
        assert_eq!(r.panels.len(), 3);
        for p in &r.panels {
            assert_eq!(p.series.len(), 4);
            for s in &p.series {
                assert_eq!(s.points.len(), 2);
            }
        }
        assert!(r.series("LDET", "PURE/CCNE").is_some());
    }

    #[test]
    fn fig5_structure() {
        let r = fig5(&tiny()).unwrap();
        assert_eq!(r.panels.len(), 3);
        assert_eq!(r.panels[0].series.len(), 3);
        assert!(r.series("HDET", "ADAPT").is_some());
    }
}
