//! Experiment results and report rendering (tables, ASCII plots, CSV,
//! JSON).
//!
//! Every figure of the paper is a set of *panels* (one per execution-time
//! variation scenario), each containing several *series* (one per technique)
//! of mean maximum task lateness versus system size. [`ExperimentResult`]
//! mirrors that structure so one renderer serves every experiment.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::telemetry::{MetricsSnapshot, Stage};
use crate::ScenarioResult;

/// One plotted line: a labelled series of `(system size, value)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display label (e.g. `"PURE/CCNE"`).
    pub label: String,
    /// `(system size, mean max lateness)` in sweep order.
    pub points: Vec<(usize, f64)>,
    /// Structural violations summed over every replication behind the
    /// series (0 for a sound pipeline); surfaced as a table warning.
    pub violations: usize,
    /// Assignment-window (`EdgeOrdering` etc.) share of `violations`;
    /// `None` when the series was folded from records predating the split
    /// audit counters.
    pub window_violations: Option<usize>,
    /// Schedule-structure share of `violations`; `None` for pre-split
    /// records.
    pub schedule_violations: Option<usize>,
    /// Replication cells that failed after retries and were excluded from
    /// the statistics behind this series (degrade-don't-die accounting).
    pub failed: usize,
}

impl From<&ScenarioResult> for Series {
    fn from(result: &ScenarioResult) -> Self {
        Series {
            label: result.label.clone(),
            points: result.lateness_series(),
            violations: result.points.iter().map(|p| p.violations).sum(),
            window_violations: result
                .points
                .iter()
                .map(|p| p.window_violations)
                .sum::<Option<usize>>(),
            schedule_violations: result
                .points
                .iter()
                .map(|p| p.schedule_violations)
                .sum::<Option<usize>>(),
            failed: result.points.iter().map(|p| p.failed).sum(),
        }
    }
}

/// One panel of a figure: several series over the same sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    /// Panel title (e.g. `"LDET"`).
    pub title: String,
    /// The series of the panel.
    pub series: Vec<Series>,
}

impl Panel {
    /// Renders the panel as an aligned text table: one row per system size,
    /// one column per series.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut header = format!("{:>6}", "procs");
        for s in &self.series {
            let _ = write!(header, " {:>16}", truncate(&s.label, 16));
        }
        let _ = writeln!(out, "{header}");
        let sizes: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(n, _)| n).collect())
            .unwrap_or_default();
        for (row, &n) in sizes.iter().enumerate() {
            let mut line = format!("{n:>6}");
            for s in &self.series {
                match s.points.get(row) {
                    Some(&(_, v)) => {
                        let _ = write!(line, " {v:>16.1}");
                    }
                    None => {
                        let _ = write!(line, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{line}");
        }
        for s in &self.series {
            if s.violations > 0 {
                let split = match (s.window_violations, s.schedule_violations) {
                    (Some(w), Some(v)) => format!(" ({w} window, {v} schedule)"),
                    _ => String::new(),
                };
                let _ = writeln!(
                    out,
                    "!! {}: {} structural violation(s) across replications{split}",
                    s.label, s.violations
                );
            }
            if s.failed > 0 {
                let _ = writeln!(
                    out,
                    "!! {}: {} replication(s) failed and were excluded from statistics",
                    s.label, s.failed
                );
            }
        }
        out
    }

    /// Renders the panel as a terminal line plot (lateness on the y axis,
    /// system size on the x axis). Each series uses a distinct glyph.
    pub fn to_ascii_plot(&self, width: usize, height: usize) -> String {
        const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let width = width.max(16);
        let height = height.max(6);

        let mut xs: Vec<usize> = Vec::new();
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for &(n, v) in &s.points {
                if !xs.contains(&n) {
                    xs.push(n);
                }
                ymin = ymin.min(v);
                ymax = ymax.max(v);
            }
        }
        if xs.is_empty() {
            return format!("## {} (no data)\n", self.title);
        }
        xs.sort_unstable();
        if (ymax - ymin).abs() < 1e-9 {
            ymax = ymin + 1.0;
        }
        let (xmin, xmax) = (*xs.first().unwrap() as f64, *xs.last().unwrap() as f64);
        let xspan = (xmax - xmin).max(1.0);

        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(n, v) in &s.points {
                let col = (((n as f64 - xmin) / xspan) * (width - 1) as f64).round() as usize;
                let row = (((ymax - v) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][col.min(width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "## {}  (y: mean max lateness)", self.title);
        for (r, row) in grid.iter().enumerate() {
            let y = ymax - (ymax - ymin) * r as f64 / (height - 1) as f64;
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{y:>10.0} |{line}");
        }
        let _ = writeln!(out, "{:>10} +{}", "", "-".repeat(width));
        let _ = writeln!(
            out,
            "{:>10}  {:<w$}{}",
            "procs:",
            xmin as usize,
            xmax as usize,
            w = width - 2
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "{:>10}  {} {}", "", GLYPHS[si % GLYPHS.len()], s.label);
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        s.chars().take(max.saturating_sub(1)).chain(['…']).collect()
    }
}

/// One row of an experiment's Profile section: the per-stage wall-clock
/// distribution behind the experiment's replications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// Stage label (`generate`, `distribute`, `schedule`, `audit`).
    pub stage: String,
    /// Observations behind the row.
    pub count: u64,
    /// Mean wall-clock, µs.
    pub mean_us: u64,
    /// Median wall-clock, µs (within one log2 bucket).
    pub p50_us: u64,
    /// 90th percentile, µs (within one log2 bucket).
    pub p90_us: u64,
    /// 99th percentile, µs (within one log2 bucket).
    pub p99_us: u64,
    /// Largest observation, µs.
    pub max_us: u64,
}

impl ProfileRow {
    /// One row per pipeline stage of `metrics`, in pipeline order,
    /// skipping stages with no observations.
    pub fn from_metrics(metrics: &MetricsSnapshot) -> Vec<ProfileRow> {
        Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let s = metrics.stage(stage);
                (s.count > 0).then(|| ProfileRow {
                    stage: stage.label().to_string(),
                    count: s.count,
                    mean_us: s.mean_us,
                    p50_us: s.p50_us,
                    p90_us: s.p90_us,
                    p99_us: s.p99_us,
                    max_us: s.max_us,
                })
            })
            .collect()
    }
}

/// A complete experiment: one of the paper's figures (or an extension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Stable identifier (e.g. `"fig2"`).
    pub id: String,
    /// Human-readable description of what the experiment shows.
    pub description: String,
    /// The figure's panels.
    pub panels: Vec<Panel>,
    /// Per-stage wall-clock profile of the replications behind the
    /// experiment; `None` when the driver did not attribute registry
    /// deltas to this experiment (older results deserialize as `None`).
    pub profile: Option<Vec<ProfileRow>>,
}

impl ExperimentResult {
    /// Renders every panel as a table, followed by the Profile section
    /// when stage timings were attributed to this experiment.
    pub fn to_tables(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.description);
        for p in &self.panels {
            out.push_str(&p.to_table());
            out.push('\n');
        }
        if let Some(profile) = &self.profile {
            out.push_str(&profile_table(profile));
            out.push('\n');
        }
        out
    }

    /// Renders every panel as an ASCII plot.
    pub fn to_ascii_plots(&self, width: usize, height: usize) -> String {
        let mut out = String::new();
        for p in &self.panels {
            out.push_str(&p.to_ascii_plot(width, height));
            out.push('\n');
        }
        out
    }

    /// Renders the experiment as CSV with columns
    /// `experiment,panel,series,system_size,mean_max_lateness`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("experiment,panel,series,system_size,mean_max_lateness\n");
        for p in &self.panels {
            for s in &p.series {
                for &(n, v) in &s.points {
                    let _ = writeln!(out, "{},{},{},{n},{v}", self.id, p.title, s.label);
                }
            }
        }
        out
    }

    /// Serializes the experiment as pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics: the structure contains only serializable data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plain data serializes")
    }

    /// Retrieves a series by panel title and series label.
    pub fn series(&self, panel: &str, label: &str) -> Option<&Series> {
        self.panels
            .iter()
            .find(|p| p.title == panel)?
            .series
            .iter()
            .find(|s| s.label == label)
    }
}

/// Renders profile rows as an aligned table (all values µs).
fn profile_table(rows: &[ProfileRow]) -> String {
    let mut out = String::from("## Profile (per-stage wall clock, µs)\n");
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "stage", "count", "mean", "p50", "p90", "p99", "max"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            r.stage, r.count, r.mean_us, r.p50_us, r.p90_us, r.p99_us, r.max_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        ExperimentResult {
            id: "figX".into(),
            description: "demo".into(),
            panels: vec![Panel {
                title: "LDET".into(),
                series: vec![
                    Series {
                        label: "PURE".into(),
                        points: vec![(2, -100.0), (4, -300.0), (8, -500.0)],
                        violations: 0,
                        window_violations: Some(0),
                        schedule_violations: Some(0),
                        failed: 0,
                    },
                    Series {
                        label: "ADAPT".into(),
                        points: vec![(2, -200.0), (4, -400.0), (8, -500.0)],
                        violations: 0,
                        window_violations: Some(0),
                        schedule_violations: Some(0),
                        failed: 0,
                    },
                ],
            }],
            profile: None,
        }
    }

    #[test]
    fn profile_section_renders_when_attributed() {
        let mut e = sample();
        assert!(!e.to_tables().contains("Profile"));
        e.profile = Some(vec![ProfileRow {
            stage: "schedule".into(),
            count: 128,
            mean_us: 250,
            p50_us: 220,
            p90_us: 400,
            p99_us: 900,
            max_us: 1400,
        }]);
        let tables = e.to_tables();
        for needle in ["## Profile", "schedule", "128", "p99", "900"] {
            assert!(tables.contains(needle), "missing {needle} in:\n{tables}");
        }
        // And it survives the JSON round trip.
        let back: ExperimentResult = serde_json::from_str(&e.to_json()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn profile_rows_come_from_stage_snapshots() {
        use std::time::Duration;
        let r = crate::telemetry::Registry::default();
        r.record_stage(Stage::Schedule, Duration::from_micros(100));
        r.record_stage(Stage::Schedule, Duration::from_micros(300));
        r.record_stage(Stage::Audit, Duration::from_micros(10));
        let rows = ProfileRow::from_metrics(&r.snapshot());
        // Generate/distribute have no observations and are skipped.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stage, "schedule");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].mean_us, 200);
        assert_eq!(rows[0].max_us, 300);
        assert_eq!(rows[1].stage, "audit");
    }

    #[test]
    fn table_contains_all_values() {
        let t = sample().to_tables();
        for needle in ["figX", "LDET", "PURE", "ADAPT", "-100.0", "-500.0", "8"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 1 + 6);
        assert!(csv.starts_with("experiment,panel,series"));
        assert!(csv.contains("figX,LDET,PURE,2,-100"));
    }

    #[test]
    fn json_round_trips() {
        let e = sample();
        let json = e.to_json();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn ascii_plot_contains_series_glyphs_and_legend() {
        let plot = sample().panels[0].to_ascii_plot(40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("PURE"));
        assert!(plot.contains("ADAPT"));
    }

    #[test]
    fn empty_panel_plot_does_not_panic() {
        let p = Panel {
            title: "empty".into(),
            series: vec![],
        };
        assert!(p.to_ascii_plot(40, 10).contains("no data"));
        assert!(p.to_table().contains("empty"));
    }

    #[test]
    fn violations_are_surfaced_in_tables() {
        let mut e = sample();
        assert!(!e.to_tables().contains("violation"));
        e.panels[0].series[1].violations = 7;
        e.panels[0].series[1].window_violations = Some(5);
        e.panels[0].series[1].schedule_violations = Some(2);
        let table = e.panels[0].to_table();
        assert!(
            table.contains("!! ADAPT: 7 structural violation(s)"),
            "missing violation warning in:\n{table}"
        );
        assert!(
            table.contains("(5 window, 2 schedule)"),
            "missing audit split in:\n{table}"
        );
        // Legacy series without the split keep the unqualified line.
        e.panels[0].series[1].window_violations = None;
        let table = e.panels[0].to_table();
        assert!(table.contains("7 structural violation(s) across replications\n"));
    }

    #[test]
    fn failed_replications_are_surfaced_in_tables() {
        let mut e = sample();
        assert!(!e.to_tables().contains("failed"));
        e.panels[0].series[0].failed = 3;
        let table = e.panels[0].to_table();
        assert!(
            table.contains("!! PURE: 3 replication(s) failed and were excluded"),
            "missing degraded-cell warning in:\n{table}"
        );
    }

    #[test]
    fn series_lookup() {
        let e = sample();
        assert!(e.series("LDET", "PURE").is_some());
        assert!(e.series("LDET", "NOPE").is_none());
        assert!(e.series("HDET", "PURE").is_none());
    }

    #[test]
    fn truncate_labels() {
        assert_eq!(truncate("short", 10), "short");
        let long = truncate("a-very-long-series-label", 10);
        assert!(long.chars().count() <= 10);
    }
}
