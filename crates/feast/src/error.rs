//! Error type for experiment execution.

use std::error::Error;
use std::fmt;

use platform::PlatformError;
use sched::SchedError;
use slicing::SliceError;
use taskgraph::gen::GenerateError;

/// Error produced while running a scenario or experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// The scenario definition is unusable (empty sweep, zero replications).
    InvalidScenario(String),
    /// Workload generation failed.
    Generate(GenerateError),
    /// Deadline distribution failed.
    Slice(SliceError),
    /// The platform could not be constructed or a pinning was invalid.
    Platform(PlatformError),
    /// Scheduling failed.
    Sched(SchedError),
    /// Writing reports to disk failed.
    Io(std::io::Error),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            RunError::Generate(e) => write!(f, "workload generation failed: {e}"),
            RunError::Slice(e) => write!(f, "deadline distribution failed: {e}"),
            RunError::Platform(e) => write!(f, "platform error: {e}"),
            RunError::Sched(e) => write!(f, "scheduling failed: {e}"),
            RunError::Io(e) => write!(f, "report i/o failed: {e}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::InvalidScenario(_) => None,
            RunError::Generate(e) => Some(e),
            RunError::Slice(e) => Some(e),
            RunError::Platform(e) => Some(e),
            RunError::Sched(e) => Some(e),
            RunError::Io(e) => Some(e),
        }
    }
}

impl From<GenerateError> for RunError {
    fn from(e: GenerateError) -> Self {
        RunError::Generate(e)
    }
}

impl From<SliceError> for RunError {
    fn from(e: SliceError) -> Self {
        RunError::Slice(e)
    }
}

impl From<PlatformError> for RunError {
    fn from(e: PlatformError) -> Self {
        RunError::Platform(e)
    }
}

impl From<SchedError> for RunError {
    fn from(e: SchedError) -> Self {
        RunError::Sched(e)
    }
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RunError = SliceError::NoAnchoredPath.into();
        assert!(e.to_string().contains("deadline distribution"));
        assert!(e.source().is_some());

        let e: RunError = PlatformError::NoProcessors.into();
        assert!(e.to_string().contains("platform"));

        let e = RunError::InvalidScenario("empty".into());
        assert!(e.to_string().contains("empty"));
        assert!(e.source().is_none());

        let e: RunError = std::io::Error::other("disk").into();
        assert!(e.to_string().contains("i/o"));
    }
}
