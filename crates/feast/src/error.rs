//! Error types for experiment execution and the admission service, plus
//! the crate-wide [`Error`] that unifies them.

use std::error::Error as StdError;
use std::fmt;
use std::path::PathBuf;

use platform::PlatformError;
use sched::SchedError;
use slicing::{DeltaError, PrefilterReject, SliceError};
use taskgraph::gen::GenerateError;

use crate::ScenarioError;

/// Error produced while running a scenario or experiment.
///
/// Every failure mode of the engine is a typed variant: degenerate
/// scenarios, invalid shards, exhausted workload retries, cancellation,
/// worker panics and checkpoint problems all surface here instead of
/// panicking mid-sweep.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// The scenario definition is unusable (empty sweep, zero
    /// replications, inconsistent workload spec).
    Scenario(ScenarioError),
    /// A shard specification is out of range (`index >= count` or
    /// `count == 0`).
    InvalidShard {
        /// Shard index.
        index: usize,
        /// Shard count.
        count: usize,
    },
    /// [`Runner::run`] was called on a sharded runner; a shard covers only
    /// a subset of the replications, so it must be executed with
    /// [`Runner::run_partial`] and folded with [`PartialResult::merge`].
    ///
    /// [`Runner::run`]: crate::Runner::run
    /// [`Runner::run_partial`]: crate::Runner::run_partial
    /// [`PartialResult::merge`]: crate::PartialResult::merge
    ShardedRun {
        /// Configured shard count.
        count: usize,
    },
    /// Workload generation failed deterministically (invalid spec).
    Generate(GenerateError),
    /// Workload generation kept failing after bounded retries on fresh
    /// sub-streams.
    GenerateRejected {
        /// Replication whose workload could not be generated.
        replication: usize,
        /// Number of sub-stream attempts made.
        attempts: usize,
        /// The last rejection.
        last: GenerateError,
    },
    /// Deadline distribution failed.
    Slice(SliceError),
    /// The platform could not be constructed or a pinning was invalid.
    Platform(PlatformError),
    /// Scheduling failed.
    Sched(SchedError),
    /// The run was cancelled via its [`CancelToken`]; completed
    /// replications are preserved in the checkpoint, if one is configured.
    ///
    /// [`CancelToken`]: crate::CancelToken
    Cancelled,
    /// A worker thread panicked during the named stage.
    WorkerPanic(&'static str),
    /// The checkpoint at `path` belongs to a different scenario (its
    /// header fingerprint does not match).
    CheckpointMismatch {
        /// Checkpoint file.
        path: PathBuf,
    },
    /// The checkpoint at `path` could not be parsed.
    CheckpointCorrupt {
        /// Checkpoint file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// Partial results could not be merged (different scenarios, labels or
    /// sweep shapes).
    MergeMismatch(String),
    /// The merged partial results do not cover every replication of the
    /// sweep.
    MergeIncomplete {
        /// Number of `(system size, replication)` cells missing.
        missing: usize,
    },
    /// The always-on schedule audit found structural violations and the
    /// run was configured with [`Runner::strict_validate`].
    ///
    /// [`Runner::strict_validate`]: crate::Runner::strict_validate
    AuditFailed {
        /// Total violations (window + schedule) across all cells.
        violations: usize,
        /// Number of `(system size, replication)` cells with at least one
        /// violation.
        cells: usize,
    },
    /// Replications degraded to failed outcomes and the run was
    /// configured with [`Runner::fail_fast`] semantics that forbid them
    /// (strict validation also rejects degraded sweeps).
    ///
    /// [`Runner::fail_fast`]: crate::Runner::fail_fast
    DegradedRun {
        /// Number of replication cells recorded as failed.
        failed: usize,
    },
    /// Writing reports or checkpoints to disk failed.
    Io(std::io::Error),
}

impl RunError {
    /// The error's stable kind tag: a short machine-readable label that
    /// identifies the variant without its rendered message. Sealed
    /// refusals in the admission write-ahead log record these tags, not
    /// `Display` strings, so the values are part of the WAL format
    /// contract and must never change.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Scenario(_) => "scenario",
            RunError::InvalidShard { .. } => "invalid-shard",
            RunError::ShardedRun { .. } => "sharded-run",
            RunError::Generate(_) => "generate",
            RunError::GenerateRejected { .. } => "generate-rejected",
            RunError::Slice(_) => "slice",
            RunError::Platform(_) => "platform",
            RunError::Sched(_) => "sched",
            RunError::Cancelled => "cancelled",
            RunError::WorkerPanic(_) => "worker-panic",
            RunError::CheckpointMismatch { .. } => "checkpoint-mismatch",
            RunError::CheckpointCorrupt { .. } => "checkpoint-corrupt",
            RunError::MergeMismatch(_) => "merge-mismatch",
            RunError::MergeIncomplete { .. } => "merge-incomplete",
            RunError::AuditFailed { .. } => "audit-failed",
            RunError::DegradedRun { .. } => "degraded-run",
            RunError::Io(_) => "io",
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            RunError::InvalidShard { index, count } => {
                write!(f, "invalid shard {index}/{count}: index must be < count and count > 0")
            }
            RunError::ShardedRun { count } => write!(
                f,
                "runner is sharded 1-of-{count}: use run_partial() and PartialResult::merge()"
            ),
            RunError::Generate(e) => write!(f, "workload generation failed: {e}"),
            RunError::GenerateRejected {
                replication,
                attempts,
                last,
            } => write!(
                f,
                "workload generation for replication {replication} rejected after {attempts} attempts: {last}"
            ),
            RunError::Slice(e) => write!(f, "deadline distribution failed: {e}"),
            RunError::Platform(e) => write!(f, "platform error: {e}"),
            RunError::Sched(e) => write!(f, "scheduling failed: {e}"),
            RunError::Cancelled => write!(f, "run cancelled"),
            RunError::WorkerPanic(stage) => write!(f, "worker thread panicked during {stage}"),
            RunError::CheckpointMismatch { path } => write!(
                f,
                "checkpoint {} belongs to a different scenario",
                path.display()
            ),
            RunError::CheckpointCorrupt { path, detail } => {
                write!(f, "checkpoint {} is corrupt: {detail}", path.display())
            }
            RunError::MergeMismatch(detail) => {
                write!(f, "partial results cannot be merged: {detail}")
            }
            RunError::MergeIncomplete { missing } => write!(
                f,
                "merged partial results leave {missing} replication cell(s) uncovered"
            ),
            RunError::AuditFailed { violations, cells } => write!(
                f,
                "schedule audit failed: {violations} structural violation(s) across {cells} replication cell(s)"
            ),
            RunError::DegradedRun { failed } => write!(
                f,
                "strict run degraded: {failed} replication cell(s) failed and were excluded from statistics"
            ),
            RunError::Io(e) => write!(f, "report i/o failed: {e}"),
        }
    }
}

impl StdError for RunError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            RunError::Scenario(e) => Some(e),
            RunError::Generate(e) => Some(e),
            RunError::GenerateRejected { last, .. } => Some(last),
            RunError::Slice(e) => Some(e),
            RunError::Platform(e) => Some(e),
            RunError::Sched(e) => Some(e),
            RunError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for RunError {
    fn from(e: ScenarioError) -> Self {
        RunError::Scenario(e)
    }
}

impl From<GenerateError> for RunError {
    fn from(e: GenerateError) -> Self {
        RunError::Generate(e)
    }
}

impl From<SliceError> for RunError {
    fn from(e: SliceError) -> Self {
        RunError::Slice(e)
    }
}

impl From<PlatformError> for RunError {
    fn from(e: PlatformError) -> Self {
        RunError::Platform(e)
    }
}

impl From<SchedError> for RunError {
    fn from(e: SchedError) -> Self {
        RunError::Sched(e)
    }
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io(e)
    }
}

/// Error produced by the admission service
/// ([`AdmissionController`] / [`AdmissionService`]).
///
/// [`AdmissionController`]: crate::AdmissionController
/// [`AdmissionService`]: crate::AdmissionService
#[derive(Debug)]
#[non_exhaustive]
pub enum AdmitError {
    /// The service's bounded request queue is full; the request was
    /// refused without being enqueued (backpressure, not a verdict).
    QueueFull {
        /// Configured queue depth.
        depth: usize,
    },
    /// The service has shut down (or its coordinator terminated); no
    /// further requests are accepted.
    ServiceStopped,
    /// An amendment named a resident the state does not hold (never
    /// admitted, already retired, or already evicted).
    NoResident {
        /// The unknown resident id.
        id: u64,
    },
    /// An admit reused the id of a live resident; ids must be unique so
    /// later amendments are unambiguous.
    DuplicateId {
        /// The already-resident id.
        id: u64,
    },
    /// The trial pipeline itself failed (distribution, platform or
    /// scheduling error) — distinct from a *reject* verdict, which is a
    /// successful trial with a late result.
    Trial(RunError),
    /// The admission fast lane's feasibility pre-filter proved the graph
    /// cannot meet its deadlines under any schedule — a deterministic
    /// refusal issued before any slicing work. Conservative by
    /// construction: every pre-filtered graph would also have been
    /// rejected by the full slice + trial path.
    Prefilter(PrefilterReject),
    /// A graph amendment could not be applied.
    Delta(DeltaError),
    /// The request out-waited its decision budget in the service queue
    /// and was shed before any slicing or trial work was spent on it.
    /// Shed requests leave no trace in committed state.
    Shed {
        /// How long the request had waited when it was shed, µs.
        waited_us: u64,
    },
    /// A slicer worker panicked while processing this request. The
    /// request degrades to this typed outcome, the worker is respawned,
    /// and the service keeps running.
    WorkerFailed {
        /// The pipeline stage the worker died in.
        stage: &'static str,
    },
    /// The admission write-ahead log could not be read or written
    /// (recovery from a missing, foreign or corrupt log file, or an
    /// append failure that survived every bounded retry).
    Log(RunError),
    /// Replaying the write-ahead log reproduced a different outcome or
    /// state digest than the sealed record — the log and the controller
    /// code disagree, so the recovered state cannot be trusted.
    RecoveryDiverged {
        /// Submission sequence of the diverging record.
        seq: u64,
        /// What diverged.
        detail: String,
    },
}

impl AdmitError {
    /// The error's stable kind tag (see [`RunError::kind`] for the
    /// contract: sealed in the admission write-ahead log, never renamed).
    pub fn kind(&self) -> &'static str {
        match self {
            AdmitError::QueueFull { .. } => "queue-full",
            AdmitError::ServiceStopped => "service-stopped",
            AdmitError::NoResident { .. } => "no-resident",
            AdmitError::DuplicateId { .. } => "duplicate-id",
            AdmitError::Trial(_) => "trial",
            AdmitError::Prefilter(_) => "prefilter",
            AdmitError::Delta(_) => "delta",
            AdmitError::Shed { .. } => "shed",
            AdmitError::WorkerFailed { .. } => "worker-failed",
            AdmitError::Log(_) => "log",
            AdmitError::RecoveryDiverged { .. } => "recovery-diverged",
        }
    }
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::QueueFull { depth } => {
                write!(f, "admission queue is full ({depth} request(s) deep)")
            }
            AdmitError::ServiceStopped => write!(f, "admission service has stopped"),
            AdmitError::NoResident { id } => {
                write!(f, "no resident admission with id {id}")
            }
            AdmitError::DuplicateId { id } => {
                write!(f, "admission id {id} is already resident")
            }
            AdmitError::Trial(e) => write!(f, "admission trial failed: {e}"),
            AdmitError::Prefilter(reject) => {
                write!(
                    f,
                    "admission pre-filter ({}) refused: {reject}",
                    reject.kind()
                )
            }
            AdmitError::Delta(e) => write!(f, "admission amendment failed: {e}"),
            AdmitError::Shed { waited_us } => {
                write!(
                    f,
                    "request shed after waiting {waited_us} µs over its decision budget"
                )
            }
            AdmitError::WorkerFailed { stage } => {
                write!(f, "admission worker panicked during {stage}")
            }
            AdmitError::Log(e) => write!(f, "admission log failed: {e}"),
            AdmitError::RecoveryDiverged { seq, detail } => {
                write!(
                    f,
                    "admission log replay diverged at sequence {seq}: {detail}"
                )
            }
        }
    }
}

impl StdError for AdmitError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            AdmitError::Trial(e) => Some(e),
            AdmitError::Delta(e) => Some(e),
            AdmitError::Log(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RunError> for AdmitError {
    fn from(e: RunError) -> Self {
        AdmitError::Trial(e)
    }
}

impl From<DeltaError> for AdmitError {
    fn from(e: DeltaError) -> Self {
        AdmitError::Delta(e)
    }
}

impl From<SchedError> for AdmitError {
    fn from(e: SchedError) -> Self {
        AdmitError::Trial(RunError::Sched(e))
    }
}

/// The crate-wide error: everything fallible in `feast` — scenario
/// construction, workload generation, experiment execution and the
/// admission service — converges here, so callers driving several
/// subsystems can use one `Result<_, feast::Error>` and still match on the
/// precise failure through the variant (or walk [`source`] chains for
/// display).
///
/// [`source`]: std::error::Error::source
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Experiment execution failed ([`RunError`]).
    Run(RunError),
    /// A scenario definition is unusable ([`ScenarioError`]).
    Scenario(ScenarioError),
    /// Workload generation failed ([`GenerateError`]).
    Generate(GenerateError),
    /// The admission service failed ([`AdmitError`]).
    Admit(AdmitError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Run(e) => write!(f, "{e}"),
            Error::Scenario(e) => write!(f, "invalid scenario: {e}"),
            Error::Generate(e) => write!(f, "workload generation failed: {e}"),
            Error::Admit(e) => write!(f, "{e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Run(e) => Some(e),
            Error::Scenario(e) => Some(e),
            Error::Generate(e) => Some(e),
            Error::Admit(e) => Some(e),
        }
    }
}

impl From<RunError> for Error {
    fn from(e: RunError) -> Self {
        Error::Run(e)
    }
}

impl From<ScenarioError> for Error {
    fn from(e: ScenarioError) -> Self {
        Error::Scenario(e)
    }
}

impl From<GenerateError> for Error {
    fn from(e: GenerateError) -> Self {
        Error::Generate(e)
    }
}

impl From<AdmitError> for Error {
    fn from(e: AdmitError) -> Self {
        Error::Admit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RunError = SliceError::NoAnchoredPath.into();
        assert!(e.to_string().contains("deadline distribution"));
        assert!(e.source().is_some());

        let e: RunError = PlatformError::NoProcessors.into();
        assert!(e.to_string().contains("platform"));

        let e: RunError = ScenarioError::NoReplications.into();
        assert!(e.to_string().contains("replication"));
        assert!(e.source().is_some());

        let e: RunError = std::io::Error::other("disk").into();
        assert!(e.to_string().contains("i/o"));
    }

    #[test]
    fn engine_variants_display() {
        assert!(RunError::Cancelled.to_string().contains("cancelled"));
        assert!(RunError::InvalidShard { index: 3, count: 2 }
            .to_string()
            .contains("3/2"));
        assert!(RunError::ShardedRun { count: 4 }
            .to_string()
            .contains("run_partial"));
        assert!(RunError::WorkerPanic("schedule")
            .to_string()
            .contains("schedule"));
        assert!(RunError::MergeIncomplete { missing: 7 }
            .to_string()
            .contains('7'));
        assert!(RunError::MergeMismatch("labels differ".into())
            .to_string()
            .contains("labels differ"));
        let e = RunError::CheckpointMismatch {
            path: PathBuf::from("/tmp/c.jsonl"),
        };
        assert!(e.to_string().contains("c.jsonl"));
        assert!(e.source().is_none());
        let e = RunError::CheckpointCorrupt {
            path: PathBuf::from("/tmp/c.jsonl"),
            detail: "missing header".into(),
        };
        assert!(e.to_string().contains("missing header"));
        let e = RunError::GenerateRejected {
            replication: 5,
            attempts: 8,
            last: GenerateError::InvalidSpec("x".into()),
        };
        assert!(e.to_string().contains("replication 5"));
        assert!(e.source().is_some());
        let e = RunError::AuditFailed {
            violations: 3,
            cells: 2,
        };
        assert!(e.to_string().contains("3 structural violation(s)"));
        assert!(e.source().is_none());
        let e = RunError::DegradedRun { failed: 4 };
        assert!(e.to_string().contains("4 replication cell(s)"));
    }

    #[test]
    fn admit_error_display_and_source() {
        let e = AdmitError::QueueFull { depth: 64 };
        assert!(e.to_string().contains("64"));
        assert!(e.source().is_none());
        assert!(AdmitError::ServiceStopped.to_string().contains("stopped"));
        let e = AdmitError::NoResident { id: 9 };
        assert!(e.to_string().contains('9'));
        let e = AdmitError::DuplicateId { id: 4 };
        assert!(e.to_string().contains("already resident"));
        assert!(e.source().is_none());

        let e: AdmitError = SchedError::RollbackMismatch.into();
        assert!(e.to_string().contains("admission trial failed"));
        // Trial → RunError → SchedError: a two-deep source chain.
        let run = e.source().expect("trial has a source");
        assert!(run.source().is_some());

        let e: AdmitError = DeltaError::UnknownSubtask(taskgraph::SubtaskId::new(3)).into();
        assert!(e.to_string().contains("amendment"));
        assert!(e.source().is_some());

        let e = AdmitError::Prefilter(PrefilterReject::CapacityBound {
            demand: 300,
            capacity: 200,
        });
        assert_eq!(e.kind(), "prefilter");
        assert!(e.to_string().contains("capacity-bound"));
        assert!(e.source().is_none());

        let e = AdmitError::Shed { waited_us: 1500 };
        assert!(e.to_string().contains("1500"));
        assert!(e.source().is_none());
        let e = AdmitError::WorkerFailed { stage: "slice" };
        assert!(e.to_string().contains("slice"));
        assert!(e.source().is_none());
        let e = AdmitError::Log(RunError::CheckpointCorrupt {
            path: PathBuf::from("/tmp/wal.jsonl"),
            detail: "bad crc".into(),
        });
        assert!(e.to_string().contains("admission log failed"));
        assert!(e.to_string().contains("bad crc"));
        assert!(e.source().is_some());
        let e = AdmitError::RecoveryDiverged {
            seq: 42,
            detail: "digest mismatch".into(),
        };
        assert!(e.to_string().contains("sequence 42"));
        assert!(e.to_string().contains("digest mismatch"));
        assert!(e.source().is_none());
    }

    #[test]
    fn top_level_error_wraps_every_subsystem() {
        let e: Error = RunError::Cancelled.into();
        assert!(e.to_string().contains("cancelled"));
        assert!(e.source().is_some());

        let e: Error = ScenarioError::NoReplications.into();
        assert!(e.to_string().contains("invalid scenario"));

        let e: Error = GenerateError::InvalidSpec("x".into()).into();
        assert!(e.to_string().contains("generation"));

        let e: Error = AdmitError::ServiceStopped.into();
        assert!(e.to_string().contains("admission service"));
        assert!(e.source().is_some());
    }
}
