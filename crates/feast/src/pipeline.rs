//! The consolidated slice → trial pipeline facade.
//!
//! Every consumer of the paper's pipeline used to hand-wire the same four
//! steps — build a distributor from the scenario's technique, distribute
//! deadlines, build the scheduler from the scenario's spec, list-schedule —
//! plus the always-on audits and the lateness measurement. [`Pipeline`]
//! owns that wiring once: it is configured from a [`Scenario`], holds the
//! per-worker [`SchedWorkspace`] (and optionally a [`SliceMemo`] for
//! incremental re-slicing), and exposes the whole pipeline as
//!
//! ```text
//! Pipeline::new(&scenario).slice(&graph, &platform)?.trial(&platform)?  →  Verdict
//! ```
//!
//! The sweep engine ([`Runner`]) and the admission service
//! ([`AdmissionController`]) both run on this facade; the pre-existing
//! entry points ([`Slicer::distribute`], [`ListScheduler::schedule_with`])
//! are unchanged and remain the primitives the facade composes, so output
//! is bit-identical to the hand-wired sequence.
//!
//! The two stages are deliberately separable: [`Pipeline::slice`] depends
//! only on the graph and the platform *shape* (never on committed load),
//! so an admission service can slice requests on parallel workers and
//! trial them serially against the platform's [`CommittedState`] — see
//! [`Sliced::into_output`] and [`Pipeline::trial_output_against`].
//!
//! [`Runner`]: crate::Runner
//! [`AdmissionController`]: crate::AdmissionController
//! [`Slicer::distribute`]: slicing::Slicer::distribute
//! [`ListScheduler::schedule_with`]: sched::ListScheduler::schedule_with

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use platform::Platform;
use sched::{
    BusModel, CommittedState, LatenessReport, ListScheduler, MissLog, SchedWorkspace, Schedule,
};
use slicing::{
    distribute_baseline, prefilter, BaselineStrategy, DeadlineAssignment, PrefilterReject,
    RedistributeStats, SliceCache, SliceKey, SliceMemo, Slicer,
};
use taskgraph::{TaskGraph, Time};

use crate::scenario::{PinningPolicy, Scenario, SchedulerSpec, Technique};
use crate::{telemetry, RunError};

/// A cross-request slice cache shared between pipelines (the admission
/// controller and its slicer workers): full-content [`SliceKey`]s mapping
/// to the memoized [`SliceOutput`] plus, when the producing pipeline kept
/// a delta memo, a [`SliceMemo`] snapshot so a later amendment of a
/// cache-hit graph still enters the incremental re-slicing path.
pub type SharedSliceCache = Arc<Mutex<SliceCache<(SliceOutput, Option<SliceMemo>)>>>;

/// How a pipeline distributes deadlines: the scenario's technique,
/// materialized once.
#[derive(Debug)]
enum Distributor {
    /// A slicing technique (§4 of the paper), built with the scenario's
    /// metric, estimate and strictness.
    Slicing(Slicer),
    /// A pre-slicing baseline (UD/ED).
    Baseline(BaselineStrategy),
}

/// The full deadline-distribution pipeline of the paper, configured once
/// from a [`Scenario`] and reusable across graphs: distribute → audit
/// windows → schedule → audit schedule → measure lateness.
///
/// A pipeline owns its scratch state (a [`SchedWorkspace`], plus a
/// [`SliceMemo`] when delta support is enabled), so steady-state runs are
/// allocation-free; hand each worker thread its own pipeline. It is the
/// single entry point both the sweep engine and the admission service
/// drive.
///
/// # Examples
///
/// ```
/// use feast::{Pipeline, Scenario};
/// use platform::Platform;
/// use slicing::{CommEstimate, MetricKind};
/// use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), feast::RunError> {
/// let scenario = Scenario::paper(
///     "ADAPT/CCNE",
///     WorkloadSpec::paper(ExecVariation::Mdet),
///     MetricKind::adapt(),
///     CommEstimate::Ccne,
/// );
/// let graph = generate_seeded(&WorkloadSpec::paper(ExecVariation::Mdet), 7).unwrap();
/// let platform = Platform::paper(8).unwrap();
///
/// let mut pipeline = Pipeline::new(&scenario);
/// let verdict = pipeline.slice(&graph, &platform)?.trial(&platform)?;
/// println!(
///     "max lateness {} → {}",
///     verdict.max_lateness,
///     if verdict.admit { "admit" } else { "reject" }
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Pipeline {
    distributor: Distributor,
    scheduler: ListScheduler,
    spec: SchedulerSpec,
    pinning: PinningPolicy,
    ws: SchedWorkspace,
    memo: Option<SliceMemo>,
    cache: Option<SharedSliceCache>,
}

impl Pipeline {
    /// Builds the pipeline a scenario describes: its technique (slicer or
    /// baseline), scheduler configuration and pinning policy. Only the
    /// pipeline-relevant fields of the scenario are read — sweep shape
    /// (sizes, replications, seeds) stays with the [`Runner`].
    ///
    /// [`Runner`]: crate::Runner
    pub fn new(scenario: &Scenario) -> Pipeline {
        let distributor = match &scenario.technique {
            Technique::Slicing { metric, estimate } => Distributor::Slicing(
                Slicer::new(*metric)
                    .with_estimate(estimate.clone())
                    .with_strict_windows(scenario.strict_windows),
            ),
            Technique::Baseline(strategy) => Distributor::Baseline(*strategy),
        };
        Pipeline {
            distributor,
            scheduler: ListScheduler::new()
                .with_respect_release(scenario.scheduler.respect_release)
                .with_bus_model(scenario.scheduler.bus_model)
                .with_placement(scenario.scheduler.placement),
            spec: scenario.scheduler,
            pinning: scenario.pinning,
            ws: SchedWorkspace::new(),
            memo: None,
            cache: None,
        }
    }

    /// Enables incremental re-slicing: every [`slice`](Pipeline::slice)
    /// call runs through [`Slicer::redistribute`] against a retained
    /// [`SliceMemo`], so re-slicing a lightly-amended graph reuses the
    /// unaffected per-start searches. Output is bit-identical either way;
    /// baselines ignore the memo.
    ///
    /// [`Slicer::redistribute`]: slicing::Slicer::redistribute
    #[must_use]
    pub fn with_delta_memo(mut self) -> Self {
        self.memo = Some(SliceMemo::new());
        self
    }

    /// Attaches a shared cross-request slice cache:
    /// [`slice`](Pipeline::slice) first probes it under a full-content
    /// [`SliceKey`] and returns the memoized product on a hit, skipping
    /// the distribution DP entirely. Hit output is bit-identical to a
    /// fresh run by the key's construction (equal keys pin every slicing
    /// input), so the cache is invisible in admission transcripts.
    /// Baselines never consult the cache.
    #[must_use]
    pub fn with_slice_cache(mut self, cache: SharedSliceCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches (or detaches) a shared [`MissLog`] rate-limiting the
    /// scheduler's deadline-miss warnings across every trial through this
    /// pipeline.
    pub fn set_miss_log(&mut self, log: Option<Arc<MissLog>>) {
        self.ws.set_miss_log(log);
    }

    /// The admission fast lane's feasibility pre-filter: runs the O(V+E)
    /// necessary-condition bounds ([`slicing::prefilter`]) over `graph`
    /// with the pinning this pipeline's trials will use. `Some` proves the
    /// full slice + trial path would reject — under any committed load —
    /// so admission can refuse without slicing.
    ///
    /// Conservatively answers `None` (no claim) when the scheduler spec
    /// does not respect given releases (the bounds' proofs need that
    /// floor), for baseline distributors, and when the pinning policy
    /// fails to build (the trial will surface that error itself).
    pub fn prefilter(&self, graph: &TaskGraph, platform: &Platform) -> Option<PrefilterReject> {
        if !self.spec.respect_release {
            return None;
        }
        if !matches!(self.distributor, Distributor::Slicing(_)) {
            return None;
        }
        let pins = self.pinning.build(graph, platform).ok()?;
        prefilter(graph, platform, Some(&pins))
    }

    /// The cross-request cache key for `graph` on `platform`, when this
    /// pipeline distributes by slicing (`None` for baselines). Workers use
    /// it to group duplicate graphs within a batch.
    /// Detaches the cross-request slice cache, returning it for
    /// [`resume_slice_cache`](Pipeline::resume_slice_cache). Amendment
    /// re-slices run between the two: an amended graph is a per-resident
    /// mutation that essentially never repeats across requests, so
    /// caching it would only pay key/clone overhead and churn useful
    /// fresh-admit entries out of the LRU.
    pub(crate) fn suspend_slice_cache(&mut self) -> Option<SharedSliceCache> {
        self.cache.take()
    }

    /// Reattaches a cache detached by
    /// [`suspend_slice_cache`](Pipeline::suspend_slice_cache).
    pub(crate) fn resume_slice_cache(&mut self, cache: Option<SharedSliceCache>) {
        if cache.is_some() {
            self.cache = cache;
        }
    }

    pub(crate) fn slice_key(&self, graph: &TaskGraph, platform: &Platform) -> Option<SliceKey> {
        match &self.distributor {
            Distributor::Slicing(slicer) => Some(slicer.cache_key(graph, platform)),
            Distributor::Baseline(_) => None,
        }
    }

    /// Stage one: distributes deadlines over `graph` for `platform` and
    /// audits the produced windows, returning a [`Sliced`] handle that
    /// trial-schedules fluently (or detaches into a [`SliceOutput`] for a
    /// pipelined service).
    ///
    /// Slicing reads the platform's processor count and communication
    /// costs but never its committed load, so this stage may run on any
    /// worker, concurrently with other requests' trials.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Slice`] when deadline distribution fails.
    pub fn slice<'p, 'g>(
        &'p mut self,
        graph: &'g TaskGraph,
        platform: &'g Platform,
    ) -> Result<Sliced<'p, 'g>, RunError> {
        let started = Instant::now();
        // Cross-request cache probe: a full-content key hit returns the
        // memoized product verbatim (bit-identical by the key contract)
        // and re-primes the delta memo from the cached snapshot so later
        // amendments keep their incremental path.
        let key = match (&self.distributor, &self.cache) {
            (Distributor::Slicing(slicer), Some(_)) => Some(slicer.cache_key(graph, platform)),
            _ => None,
        };
        if let (Some(key), Some(cache)) = (&key, &self.cache) {
            let hit = cache.lock().ok().and_then(|mut c| c.get(key));
            if let Some((mut output, memo)) = hit {
                telemetry::global().count_slice_cache_hit();
                if let (Some(slot), Some(memo)) = (&mut self.memo, memo) {
                    *slot = memo;
                }
                // The cached timings described the producing run; report
                // this call's (lookup) cost and no redistribute stats so
                // stage accounting stays honest.
                output.distribute = started.elapsed();
                output.window_audit = Duration::ZERO;
                output.redistribute = None;
                return Ok(Sliced {
                    pipeline: self,
                    graph,
                    output,
                });
            }
            telemetry::global().count_slice_cache_miss();
        }
        let (assignment, redistribute) = match (&self.distributor, &mut self.memo) {
            (Distributor::Slicing(slicer), None) => (slicer.distribute(graph, platform)?, None),
            (Distributor::Slicing(slicer), Some(memo)) => {
                let r = slicer.redistribute(graph, platform, memo)?;
                (r.assignment, Some(r.stats))
            }
            (Distributor::Baseline(strategy), _) => (distribute_baseline(graph, *strategy), None),
        };
        let distribute = started.elapsed();

        // Baselines produce deliberately overlapping windows, so
        // structural window validation only applies to slicing.
        let audit_started = Instant::now();
        let window_violations = match &self.distributor {
            Distributor::Slicing(_) => assignment.validate(graph).violations().len(),
            Distributor::Baseline(_) => 0,
        };
        let window_audit = audit_started.elapsed();

        let output = SliceOutput {
            assignment,
            window_violations,
            distribute,
            window_audit,
            redistribute,
        };
        if let (Some(key), Some(cache)) = (key, &self.cache) {
            // After a slicing run the delta memo (when kept) describes
            // exactly this graph's trace — snapshot it alongside the
            // product so a hit can restore both.
            let memo = self.memo.clone();
            if let Ok(mut c) = cache.lock() {
                if c.insert(key, (output.clone(), memo)) {
                    telemetry::global().count_slice_cache_eviction();
                }
            }
        }
        Ok(Sliced {
            pipeline: self,
            graph,
            output,
        })
    }

    /// Stage two against an empty platform: schedules a detached slice
    /// product and measures it. [`Sliced::trial`] is the fluent form.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Platform`] for an invalid pinning and
    /// [`RunError::Sched`] when scheduling fails.
    pub fn trial_output(
        &mut self,
        graph: &TaskGraph,
        platform: &Platform,
        output: SliceOutput,
    ) -> Result<Verdict, RunError> {
        self.trial_inner(graph, platform, output, None)
    }

    /// Stage two against committed load: re-anchors the slice product at
    /// `origin` (every window shifted uniformly), trial-schedules it
    /// around `base`'s reservations, and measures the predicted lateness.
    /// `base` is untouched — an admission service commits the verdict's
    /// schedule only on admit. [`Sliced::trial_against`] is the fluent
    /// form.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Platform`] for an invalid pinning and
    /// [`RunError::Sched`] when scheduling fails (including a `base`
    /// incompatible with the platform or bus model).
    pub fn trial_output_against(
        &mut self,
        graph: &TaskGraph,
        platform: &Platform,
        output: SliceOutput,
        base: &CommittedState,
        origin: Time,
    ) -> Result<Verdict, RunError> {
        self.trial_inner(graph, platform, output, Some((base, origin)))
    }

    /// Stage two as a repair: like
    /// [`trial_output_against`](Pipeline::trial_output_against), but
    /// replays the retained dispatch log of `prev` (the schedule produced
    /// by this pipeline's immediately preceding trial against the same
    /// base content) and recomputes only the dispatches the amendment
    /// disturbed. Falls back to a full trial — silently, with bit-identical
    /// output — whenever the retained state is unusable; the verdict's
    /// [`repair_fell_back`](Verdict::repair_fell_back) reports which path
    /// ran.
    ///
    /// # Errors
    ///
    /// Exactly those of
    /// [`trial_output_against`](Pipeline::trial_output_against).
    pub fn repair_output_against(
        &mut self,
        graph: &TaskGraph,
        platform: &Platform,
        output: SliceOutput,
        prev: &Schedule,
        base: &CommittedState,
        origin: Time,
    ) -> Result<Verdict, RunError> {
        let pinning = self.pinning.build(graph, platform)?;
        let shifted = output.assignment.shifted(origin);
        let schedule_started = Instant::now();
        let outcome = self.scheduler.repair_against(
            graph,
            platform,
            &shifted,
            &pinning,
            prev,
            base,
            &mut self.ws,
        )?;
        let fell_back = outcome.fell_back;
        self.measure(
            graph,
            platform,
            &pinning,
            shifted,
            outcome.schedule,
            output,
            origin,
            schedule_started.elapsed(),
            Some(fell_back),
        )
    }

    fn trial_inner(
        &mut self,
        graph: &TaskGraph,
        platform: &Platform,
        output: SliceOutput,
        base: Option<(&CommittedState, Time)>,
    ) -> Result<Verdict, RunError> {
        let pinning = self.pinning.build(graph, platform)?;
        let schedule_started = Instant::now();
        let (assignment, schedule) = match base {
            None => {
                let schedule = self.scheduler.schedule_with(
                    graph,
                    platform,
                    &output.assignment,
                    &pinning,
                    &mut self.ws,
                )?;
                (output.assignment.clone(), schedule)
            }
            Some((state, origin)) => {
                let shifted = output.assignment.shifted(origin);
                let schedule = self.scheduler.schedule_against(
                    graph,
                    platform,
                    &shifted,
                    &pinning,
                    state,
                    &mut self.ws,
                )?;
                (shifted, schedule)
            }
        };
        let schedule_elapsed = schedule_started.elapsed();
        let origin = base.map_or(Time::ZERO, |(_, origin)| origin);
        self.measure(
            graph,
            platform,
            &pinning,
            assignment,
            schedule,
            output,
            origin,
            schedule_elapsed,
            None,
        )
    }

    /// Shared tail of every trial: schedule audit, lateness measurement,
    /// verdict assembly.
    #[allow(clippy::too_many_arguments)]
    fn measure(
        &mut self,
        graph: &TaskGraph,
        platform: &Platform,
        pinning: &platform::Pinning,
        assignment: DeadlineAssignment,
        schedule: Schedule,
        output: SliceOutput,
        origin: Time,
        schedule_elapsed: Duration,
        repair_fell_back: Option<bool>,
    ) -> Result<Verdict, RunError> {
        let audit_started = Instant::now();
        let schedule_violations = schedule
            .validate(
                graph,
                platform,
                pinning,
                self.spec.bus_model == BusModel::Contention,
            )
            .len();
        let audit = output.window_audit + audit_started.elapsed();

        let report = LatenessReport::new(graph, &assignment, &schedule);
        Ok(Verdict {
            admit: report.is_feasible(),
            max_lateness: report.max_lateness(),
            end_to_end: report.end_to_end_lateness() - origin,
            makespan: report.makespan(),
            window_violations: output.window_violations,
            schedule_violations,
            distribute: output.distribute,
            schedule_time: schedule_elapsed,
            audit,
            redistribute: output.redistribute,
            repair_fell_back,
            assignment,
            schedule,
        })
    }
}

/// A graph with its deadlines distributed, bound to the pipeline that
/// produced it: stage one's result, ready for a trial. Borrow-holds the
/// pipeline so the fluent chain reuses its workspace; a pipelined service
/// detaches the owned product with [`into_output`](Sliced::into_output)
/// instead.
#[derive(Debug)]
pub struct Sliced<'p, 'g> {
    pipeline: &'p mut Pipeline,
    graph: &'g TaskGraph,
    output: SliceOutput,
}

impl Sliced<'_, '_> {
    /// The distributed deadline assignment (graph-local time).
    pub fn assignment(&self) -> &DeadlineAssignment {
        &self.output.assignment
    }

    /// Structural window violations found by the always-on audit.
    pub fn window_violations(&self) -> usize {
        self.output.window_violations
    }

    /// Detaches the owned slice product, releasing the pipeline borrow.
    /// The product is `Send`: an admission service slices on worker
    /// threads and ships products to the coordinator that owns the
    /// committed state.
    pub fn into_output(self) -> SliceOutput {
        self.output
    }

    /// Trial-schedules against an empty platform and measures the result.
    ///
    /// `platform` must be the platform the graph was sliced for.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Pipeline::trial_output`].
    pub fn trial(self, platform: &Platform) -> Result<Verdict, RunError> {
        self.pipeline
            .trial_output(self.graph, platform, self.output)
    }

    /// Trial-schedules around `base`'s committed reservations with every
    /// window re-anchored at `origin`, leaving `base` untouched.
    ///
    /// `platform` must be the platform the graph was sliced for.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Pipeline::trial_output_against`].
    pub fn trial_against(
        self,
        platform: &Platform,
        base: &CommittedState,
        origin: Time,
    ) -> Result<Verdict, RunError> {
        self.pipeline
            .trial_output_against(self.graph, platform, self.output, base, origin)
    }
}

/// The detached product of [`Pipeline::slice`]: the assignment plus the
/// stage's audit result and timings. Owned and `Send`, so it can cross the
/// thread boundary between slicer workers and a trial coordinator.
#[derive(Debug, Clone)]
pub struct SliceOutput {
    /// The distributed deadline assignment, in graph-local time (inputs at
    /// their given releases). Trials against committed load re-anchor it
    /// via [`DeadlineAssignment::shifted`].
    pub assignment: DeadlineAssignment,
    /// Structural window violations found by the always-on audit (always
    /// zero for baselines, whose overlapping windows are intentional).
    pub window_violations: usize,
    /// Wall-clock of the distribution stage alone.
    pub distribute: Duration,
    /// Wall-clock of the window audit (accounted to the audit stage).
    pub window_audit: Duration,
    /// Cache-effectiveness counters when the pipeline re-sliced through a
    /// delta memo ([`Pipeline::with_delta_memo`]); `None` for plain
    /// distribution.
    pub redistribute: Option<RedistributeStats>,
}

/// The measured outcome of one trial: everything the sweep engine records
/// and everything an admission decision needs.
///
/// A verdict is a *prediction under the trialed load*, not a
/// schedulability proof: `admit` says the non-preemptive EDF trial met
/// every assigned deadline given the committed reservations at trial time.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Did the trial meet every assigned deadline? (The paper's
    /// feasibility criterion: maximum task lateness not positive.)
    pub admit: bool,
    /// Maximum task lateness over all subtasks (the paper's figure of
    /// merit; negative values are slack).
    pub max_lateness: Time,
    /// Maximum end-to-end lateness over output subtasks, relative to the
    /// trial's origin (directly comparable across origins).
    pub end_to_end: Time,
    /// Completion time of the last subtask (absolute time).
    pub makespan: Time,
    /// Structural window violations from stage one's audit.
    pub window_violations: usize,
    /// Structural schedule violations from stage two's audit.
    pub schedule_violations: usize,
    /// Wall-clock of the distribution stage.
    pub distribute: Duration,
    /// Wall-clock of the scheduling stage.
    pub schedule_time: Duration,
    /// Wall-clock of both audits combined.
    pub audit: Duration,
    /// Re-slicing cache effectiveness, when stage one ran through a memo.
    pub redistribute: Option<RedistributeStats>,
    /// For repair trials ([`Pipeline::repair_output_against`]): whether
    /// the repair abandoned the retained dispatch log and re-ran in full.
    /// `None` for ordinary trials.
    pub repair_fell_back: Option<bool>,
    /// The assignment the trial measured (shifted to the trial's origin).
    pub assignment: DeadlineAssignment,
    /// The trial schedule. On admit, committing exactly this schedule
    /// reserves what the verdict predicted.
    pub schedule: Schedule,
}

impl Verdict {
    /// Total structural violations found by both audits.
    pub fn violations(&self) -> usize {
        self.window_violations + self.schedule_violations
    }
}

#[cfg(test)]
mod tests {
    use slicing::{CommEstimate, MetricKind};
    use taskgraph::gen::{generate_seeded, ExecVariation, WorkloadSpec};

    use super::*;
    use crate::scenario::Scenario;

    fn paper_scenario() -> Scenario {
        Scenario::paper(
            "PIPE/TEST",
            WorkloadSpec::paper(ExecVariation::Mdet),
            MetricKind::adapt(),
            CommEstimate::Ccne,
        )
    }

    fn workload(seed: u64) -> TaskGraph {
        generate_seeded(&WorkloadSpec::paper(ExecVariation::Mdet), seed).unwrap()
    }

    #[test]
    fn facade_matches_hand_wired_pipeline() {
        let scenario = paper_scenario();
        let graph = workload(3);
        let platform = Platform::paper(8).unwrap();

        let mut pipeline = Pipeline::new(&scenario);
        let verdict = pipeline
            .slice(&graph, &platform)
            .unwrap()
            .trial(&platform)
            .unwrap();

        // The same steps, hand-wired as every consumer wrote them before.
        let assignment = Slicer::new(MetricKind::adapt())
            .with_estimate(CommEstimate::Ccne)
            .distribute(&graph, &platform)
            .unwrap();
        let schedule = ListScheduler::new()
            .schedule(&graph, &platform, &assignment, &platform::Pinning::new())
            .unwrap();
        let report = LatenessReport::new(&graph, &assignment, &schedule);

        assert_eq!(verdict.assignment, assignment);
        assert_eq!(verdict.schedule, schedule);
        assert_eq!(verdict.max_lateness, report.max_lateness());
        assert_eq!(verdict.end_to_end, report.end_to_end_lateness());
        assert_eq!(verdict.makespan, report.makespan());
        assert_eq!(verdict.admit, report.is_feasible());
        assert!(verdict.repair_fell_back.is_none());
        assert!(verdict.redistribute.is_none());
    }

    #[test]
    fn trial_against_empty_state_at_zero_matches_plain_trial() {
        let scenario = paper_scenario();
        let graph = workload(11);
        let platform = Platform::paper(4).unwrap();
        let state = CommittedState::new(4, scenario.scheduler.bus_model);

        let mut pipeline = Pipeline::new(&scenario);
        let plain = pipeline
            .slice(&graph, &platform)
            .unwrap()
            .trial(&platform)
            .unwrap();
        let against = pipeline
            .slice(&graph, &platform)
            .unwrap()
            .trial_against(&platform, &state, Time::ZERO)
            .unwrap();

        assert_eq!(against.schedule, plain.schedule);
        assert_eq!(against.max_lateness, plain.max_lateness);
        assert_eq!(against.end_to_end, plain.end_to_end);
        assert_eq!(against.admit, plain.admit);
    }

    #[test]
    fn shifted_trial_predicts_origin_invariant_lateness() {
        let scenario = paper_scenario();
        let graph = workload(5);
        let platform = Platform::paper(4).unwrap();
        let state = CommittedState::new(4, scenario.scheduler.bus_model);
        let origin = Time::new(10_000);

        let mut pipeline = Pipeline::new(&scenario);
        let at_zero = pipeline
            .slice(&graph, &platform)
            .unwrap()
            .trial_against(&platform, &state, Time::ZERO)
            .unwrap();
        let at_origin = pipeline
            .slice(&graph, &platform)
            .unwrap()
            .trial_against(&platform, &state, origin)
            .unwrap();

        // An empty platform is origin-invariant: the shifted trial is the
        // zero trial translated wholesale.
        assert_eq!(at_origin.max_lateness, at_zero.max_lateness);
        assert_eq!(at_origin.end_to_end, at_zero.end_to_end);
        assert_eq!(at_origin.admit, at_zero.admit);
        assert_eq!(at_origin.makespan, at_zero.makespan + origin);
        assert_eq!(at_origin.assignment, at_zero.assignment.shifted(origin));
    }

    #[test]
    fn trial_leaves_committed_state_untouched() {
        let scenario = paper_scenario();
        let graph = workload(2);
        let platform = Platform::paper(4).unwrap();
        let mut state = CommittedState::new(4, scenario.scheduler.bus_model);
        let mut pipeline = Pipeline::new(&scenario);

        let first = pipeline
            .slice(&graph, &platform)
            .unwrap()
            .trial_against(&platform, &state, Time::ZERO)
            .unwrap();
        state.commit(&first.schedule).unwrap();
        let digest = state.digest();

        // Trials are read-only: same state in, same verdict out, digest
        // unchanged.
        let probe = pipeline
            .slice(&graph, &platform)
            .unwrap()
            .trial_against(&platform, &state, Time::new(50))
            .unwrap();
        assert_eq!(state.digest(), digest);
        assert_eq!(state.residents(), 1);
        let again = pipeline
            .slice(&graph, &platform)
            .unwrap()
            .trial_against(&platform, &state, Time::new(50))
            .unwrap();
        assert_eq!(probe.schedule, again.schedule);
    }

    #[test]
    fn baseline_technique_skips_window_audit() {
        let scenario = Scenario::baseline(
            "UD/BASE",
            WorkloadSpec::paper(ExecVariation::Mdet),
            BaselineStrategy::Ultimate,
        );
        let graph = workload(4);
        let platform = Platform::paper(4).unwrap();
        let mut pipeline = Pipeline::new(&scenario);
        let sliced = pipeline.slice(&graph, &platform).unwrap();
        assert_eq!(sliced.window_violations(), 0);
        let verdict = sliced.trial(&platform).unwrap();
        assert_eq!(verdict.window_violations, 0);
    }

    #[test]
    fn delta_memo_reslice_is_bit_identical() {
        let scenario = paper_scenario();
        let graph = workload(9);
        let platform = Platform::paper(4).unwrap();

        let mut plain = Pipeline::new(&scenario);
        let mut memoized = Pipeline::new(&scenario).with_delta_memo();

        let a = plain.slice(&graph, &platform).unwrap().into_output();
        let b = memoized.slice(&graph, &platform).unwrap().into_output();
        assert_eq!(a.assignment, b.assignment);
        assert!(a.redistribute.is_none());
        assert!(b.redistribute.is_some());

        // Second pass over the same graph: the memo now hits.
        let c = memoized.slice(&graph, &platform).unwrap().into_output();
        assert_eq!(c.assignment, a.assignment);
        let stats = c.redistribute.unwrap();
        assert!(!stats.fell_back);
    }
}
