//! Per-replication seed streams.
//!
//! The experiment harness used to walk a sequential RNG (`base_seed + i`),
//! which makes replication `i` computable only after knowing every index
//! before it and couples nearby streams (adjacent seeds of a counter-based
//! generator are correlated in their low bits). This module replaces that
//! walk with *seed streams*: every replication's seed is derived by mixing
//! its coordinates — `(base_seed, stream, system_size, replication)` —
//! through the SplitMix64 finalizer, so any replication is independently
//! computable, in any order, on any worker.
//!
//! Coordinates:
//!
//! * `base_seed` — the user-chosen root seed of the whole experiment;
//! * `stream` — a domain label separating unrelated random sequences (the
//!   harness hashes the *workload description* here via [`stream_label`],
//!   deliberately **not** the technique, so that competing techniques see
//!   identical graphs — the paired-comparison design of the paper);
//! * `system_size` — the processor count, for workloads drawn per size
//!   (the harness passes `0` because workloads are shared across the size
//!   sweep, again for paired comparison);
//! * `replication` — the replication index.
//!
//! [`sub_stream`] derives bounded-retry sub-streams from a replication seed
//! so a rejected draw can be retried with fresh randomness without
//! disturbing any other replication's stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gen::{generate, generate_shape, GenerateError, Shape, WorkloadSpec};
use crate::TaskGraph;

/// The SplitMix64 finalizer: adds the golden-ratio increment and applies
/// the variant-13 xor-shift-multiply avalanche.
#[inline]
fn mix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of one replication from its stream coordinates.
///
/// The derivation chains the SplitMix64 finalizer over the coordinates, so
/// every coordinate avalanches into the result: two replications differing
/// in any single coordinate receive statistically independent seeds.
///
/// # Examples
///
/// ```
/// use taskgraph::gen::stream_seed;
///
/// let a = stream_seed(0xFEA57, 7, 0, 0);
/// let b = stream_seed(0xFEA57, 7, 0, 1);
/// assert_ne!(a, b);
/// // Pure function of the coordinates: addressable in any order.
/// assert_eq!(a, stream_seed(0xFEA57, 7, 0, 0));
/// ```
pub fn stream_seed(base_seed: u64, stream: u64, system_size: u64, replication: u64) -> u64 {
    let mut s = mix(base_seed);
    s = mix(s ^ stream);
    s = mix(s ^ system_size);
    mix(s ^ replication)
}

/// Derives the seed of retry attempt `attempt` from a replication seed.
///
/// Attempt `0` is the seed itself, so retrying is invisible unless a draw
/// was actually rejected; later attempts re-mix the seed with the attempt
/// index for fresh, reproducible randomness.
pub fn sub_stream(seed: u64, attempt: u64) -> u64 {
    if attempt == 0 {
        seed
    } else {
        mix(seed ^ mix(attempt))
    }
}

/// Hashes an arbitrary byte string into a `stream` coordinate (FNV-1a).
///
/// Used to turn serialized workload descriptions into stable domain labels
/// for [`stream_seed`]; the hash depends only on the bytes, never on
/// process or platform state.
pub fn stream_label(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Generates one random task graph from `spec` at the given stream seed.
///
/// Equivalent to seeding a fresh [`StdRng`] with `seed` and calling
/// [`generate`]; this is the seed-stream entry point used by the sharded
/// experiment engine.
///
/// # Errors
///
/// See [`generate`].
pub fn generate_seeded(spec: &WorkloadSpec, seed: u64) -> Result<TaskGraph, GenerateError> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate(spec, &mut rng)
}

/// Generates one structured task graph at the given stream seed.
///
/// Equivalent to seeding a fresh [`StdRng`] with `seed` and calling
/// [`generate_shape`].
///
/// # Errors
///
/// See [`generate_shape`].
pub fn generate_shape_seeded(
    shape: Shape,
    spec: &WorkloadSpec,
    seed: u64,
) -> Result<TaskGraph, GenerateError> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_shape(shape, spec, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ExecVariation;

    #[test]
    fn seeds_are_pure_functions_of_coordinates() {
        assert_eq!(stream_seed(1, 2, 3, 4), stream_seed(1, 2, 3, 4));
        assert_eq!(sub_stream(9, 5), sub_stream(9, 5));
    }

    #[test]
    fn any_coordinate_change_changes_the_seed() {
        let base = stream_seed(1, 2, 3, 4);
        assert_ne!(base, stream_seed(0, 2, 3, 4));
        assert_ne!(base, stream_seed(1, 0, 3, 4));
        assert_ne!(base, stream_seed(1, 2, 0, 4));
        assert_ne!(base, stream_seed(1, 2, 3, 0));
    }

    #[test]
    fn replication_seeds_have_no_visible_structure() {
        // Adjacent replications must not produce adjacent seeds.
        let a = stream_seed(0xFEA57, 0, 0, 0);
        let b = stream_seed(0xFEA57, 0, 0, 1);
        assert!(a.abs_diff(b) > 1 << 32, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn attempt_zero_is_the_identity() {
        assert_eq!(sub_stream(42, 0), 42);
        assert_ne!(sub_stream(42, 1), 42);
        assert_ne!(sub_stream(42, 1), sub_stream(42, 2));
    }

    #[test]
    fn labels_depend_only_on_bytes() {
        assert_eq!(stream_label(b"abc"), stream_label(b"abc"));
        assert_ne!(stream_label(b"abc"), stream_label(b"abd"));
        // FNV-1a offset basis for the empty string.
        assert_eq!(stream_label(b""), 0xCBF2_9CE4_8422_2325);
    }

    #[test]
    fn seeded_generation_matches_manual_rng() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let spec = WorkloadSpec::paper(ExecVariation::Mdet);
        let seed = stream_seed(7, 11, 0, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let manual = generate(&spec, &mut rng).unwrap();
        let streamed = generate_seeded(&spec, seed).unwrap();
        assert_eq!(manual, streamed);
    }

    #[test]
    fn seeded_shape_generation_works() {
        let spec = WorkloadSpec::paper(ExecVariation::Ldet);
        let shape = Shape::Chain { length: 5 };
        let g = generate_shape_seeded(shape, &spec, stream_seed(1, 2, 0, 0)).unwrap();
        assert_eq!(g.subtask_count(), 5);
    }
}
