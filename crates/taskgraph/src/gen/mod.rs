//! Workload generators.
//!
//! [`generate`] produces the random task graphs of §5.2 of the paper;
//! [`generate_shape`] produces the regular structures (chains, trees,
//! fork–join) discussed as future work in §8. Both are deterministic given a
//! seeded RNG, which the experiment harness uses for paired comparisons.
//!
//! [`stream_seed`] derives per-replication seed streams so any replication
//! of a sweep is independently addressable (the entry point of the sharded
//! experiment engine); [`generate_seeded`] / [`generate_shape_seeded`] run
//! the generators directly at one such seed.

pub(crate) mod random;
mod seed;
mod shapes;
mod spec;

pub use random::{end_to_end_deadline, generate, GenerateError};
pub use seed::{generate_seeded, generate_shape_seeded, stream_label, stream_seed, sub_stream};
pub use shapes::{generate_shape, Shape};
pub use spec::{DeadlineBase, ExecVariation, WorkloadSpec};
