//! Workload generators.
//!
//! [`generate`] produces the random task graphs of §5.2 of the paper;
//! [`generate_shape`] produces the regular structures (chains, trees,
//! fork–join) discussed as future work in §8. Both are deterministic given a
//! seeded RNG, which the experiment harness uses for paired comparisons.

pub(crate) mod random;
mod shapes;
mod spec;

pub use random::{end_to_end_deadline, generate, GenerateError};
pub use shapes::{generate_shape, Shape};
pub use spec::{DeadlineBase, ExecVariation, WorkloadSpec};
