//! Workload specification for the random task-graph generator.
//!
//! Defaults reproduce §5.2 of the paper: 40–60 subtasks, depth 8–12 levels,
//! 1–3 successors/predecessors per subtask, mean execution time (MET) of 20
//! units, an overall laxity ratio (OLR) of 1.5 and a communication-to-
//! computation ratio (CCR) of 1.0.

use std::ops::RangeInclusive;

use serde::{Deserialize, Serialize};

/// How far subtask execution times may deviate from the mean, as a fraction.
///
/// The paper's three scenarios: LDET (±25 %), MDET (±50 %) and HDET (±99 %).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecVariation {
    /// Low distribution of execution times: ±25 % around the MET.
    Ldet,
    /// Medium distribution of execution times: ±50 % around the MET.
    Mdet,
    /// High distribution of execution times: ±99 % around the MET.
    Hdet,
    /// A custom symmetric deviation fraction in `[0, 1)`.
    Custom(f64),
}

impl ExecVariation {
    /// The deviation as a fraction of the mean (e.g. `0.25` for LDET).
    pub fn fraction(self) -> f64 {
        match self {
            ExecVariation::Ldet => 0.25,
            ExecVariation::Mdet => 0.50,
            ExecVariation::Hdet => 0.99,
            ExecVariation::Custom(v) => v,
        }
    }

    /// A short label used in reports ("LDET", "MDET", "HDET", "±x%").
    pub fn label(self) -> String {
        match self {
            ExecVariation::Ldet => "LDET".to_owned(),
            ExecVariation::Mdet => "MDET".to_owned(),
            ExecVariation::Hdet => "HDET".to_owned(),
            ExecVariation::Custom(v) => format!("\u{b1}{:.0}%", v * 100.0),
        }
    }

    /// The three scenarios used in every figure of the paper.
    pub fn paper_scenarios() -> [ExecVariation; 3] {
        [
            ExecVariation::Ldet,
            ExecVariation::Mdet,
            ExecVariation::Hdet,
        ]
    }
}

/// The workload quantity that the overall laxity ratio (OLR) multiplies to
/// obtain the end-to-end deadline.
///
/// The paper fixes the deadline "in such a way that the overall laxity
/// ratio (OLR) between the end-to-end deadline and the accumulated task
/// graph workload corresponded to 1.5" (§5.2). Two readings of "accumulated
/// workload" are implemented:
///
/// * [`DeadlineBase::CriticalPath`] — the workload accumulated **along the
///   longest path**, i.e. `D = OLR × Σc(critical path)`. This is the
///   default: it produces the contention regime of the paper's figures
///   (infeasible schedules on small systems, near-linear improvement with
///   system size, saturation at the parallelism limit). Under the
///   total-work reading, processor utilization is bounded by `1/(OLR·m)`
///   and small systems are never contended, which contradicts the reported
///   curves.
/// * [`DeadlineBase::TotalWork`] — the whole graph's workload,
///   `D = OLR × Σc(all subtasks)`; provided for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlineBase {
    /// `D = OLR × (execution time along the longest path)`.
    CriticalPath,
    /// `D = OLR × (total execution time of all subtasks)`.
    TotalWork,
}

/// Parameters of the random task-graph generator (§5.2).
///
/// Construct with [`WorkloadSpec::paper`] for the paper's configuration and
/// adjust fields with the `with_*` builders.
///
/// # Examples
///
/// ```
/// use taskgraph::gen::{ExecVariation, WorkloadSpec};
///
/// let spec = WorkloadSpec::paper(ExecVariation::Mdet).with_ccr(2.0);
/// assert_eq!(spec.ccr, 2.0);
/// assert_eq!(spec.mean_exec_time, 20);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of subtasks, drawn uniformly from this range.
    pub subtasks: RangeInclusive<usize>,
    /// Graph depth in levels, drawn uniformly from this range.
    pub depth: RangeInclusive<usize>,
    /// Predecessors drawn per non-input subtask, uniformly from this range
    /// (capped by the size of the previous level).
    pub fan_in: RangeInclusive<usize>,
    /// Mean subtask execution time (MET), in time units.
    pub mean_exec_time: i64,
    /// Symmetric deviation of execution times around the MET.
    pub variation: ExecVariation,
    /// Overall laxity ratio: end-to-end deadline = OLR × deadline base.
    pub olr: f64,
    /// Which workload quantity the OLR multiplies.
    pub deadline_base: DeadlineBase,
    /// Communication-to-computation ratio: mean message cost (at one time
    /// unit per item) over the MET.
    pub ccr: f64,
    /// Symmetric deviation of message sizes around their mean (fraction).
    pub message_variation: f64,
}

impl WorkloadSpec {
    /// The paper's configuration (§5.2) with the chosen execution-time
    /// variation scenario.
    pub fn paper(variation: ExecVariation) -> Self {
        WorkloadSpec {
            subtasks: 40..=60,
            depth: 8..=12,
            fan_in: 1..=3,
            mean_exec_time: 20,
            variation,
            olr: 1.5,
            deadline_base: DeadlineBase::CriticalPath,
            ccr: 1.0,
            message_variation: 0.5,
        }
    }

    /// Replaces the subtask-count range.
    #[must_use]
    pub fn with_subtasks(mut self, subtasks: RangeInclusive<usize>) -> Self {
        self.subtasks = subtasks;
        self
    }

    /// Replaces the depth range.
    #[must_use]
    pub fn with_depth(mut self, depth: RangeInclusive<usize>) -> Self {
        self.depth = depth;
        self
    }

    /// Replaces the fan-in range.
    #[must_use]
    pub fn with_fan_in(mut self, fan_in: RangeInclusive<usize>) -> Self {
        self.fan_in = fan_in;
        self
    }

    /// Replaces the mean execution time.
    #[must_use]
    pub fn with_mean_exec_time(mut self, met: i64) -> Self {
        self.mean_exec_time = met;
        self
    }

    /// Replaces the execution-time variation scenario.
    #[must_use]
    pub fn with_variation(mut self, variation: ExecVariation) -> Self {
        self.variation = variation;
        self
    }

    /// Replaces the overall laxity ratio.
    #[must_use]
    pub fn with_olr(mut self, olr: f64) -> Self {
        self.olr = olr;
        self
    }

    /// Replaces the deadline base (what the OLR multiplies).
    #[must_use]
    pub fn with_deadline_base(mut self, base: DeadlineBase) -> Self {
        self.deadline_base = base;
        self
    }

    /// Replaces the communication-to-computation ratio.
    #[must_use]
    pub fn with_ccr(mut self, ccr: f64) -> Self {
        self.ccr = ccr;
        self
    }

    /// Validates that the specification is internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.subtasks.is_empty() {
            return Err("subtask range is empty".to_owned());
        }
        if self.depth.is_empty() {
            return Err("depth range is empty".to_owned());
        }
        if *self.depth.start() == 0 {
            return Err("depth must be at least 1".to_owned());
        }
        if *self.subtasks.start() < *self.depth.end() {
            return Err(format!(
                "minimum subtask count {} cannot fill maximum depth {}",
                self.subtasks.start(),
                self.depth.end()
            ));
        }
        if self.fan_in.is_empty() || *self.fan_in.start() == 0 {
            return Err("fan-in range must start at 1".to_owned());
        }
        if self.mean_exec_time <= 0 {
            return Err("mean execution time must be positive".to_owned());
        }
        let v = self.variation.fraction();
        if !(0.0..1.0).contains(&v) {
            return Err(format!("execution-time variation {v} outside [0, 1)"));
        }
        if self.olr <= 0.0 {
            return Err("overall laxity ratio must be positive".to_owned());
        }
        if self.ccr < 0.0 {
            return Err("communication-to-computation ratio must be non-negative".to_owned());
        }
        if !(0.0..1.0).contains(&self.message_variation) {
            return Err("message variation outside [0, 1)".to_owned());
        }
        Ok(())
    }
}

impl Default for WorkloadSpec {
    /// The paper's MDET configuration.
    fn default() -> Self {
        WorkloadSpec::paper(ExecVariation::Mdet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_2() {
        let spec = WorkloadSpec::paper(ExecVariation::Ldet);
        assert_eq!(spec.subtasks, 40..=60);
        assert_eq!(spec.depth, 8..=12);
        assert_eq!(spec.fan_in, 1..=3);
        assert_eq!(spec.mean_exec_time, 20);
        assert_eq!(spec.olr, 1.5);
        assert_eq!(spec.deadline_base, DeadlineBase::CriticalPath);
        assert_eq!(spec.ccr, 1.0);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn variation_fractions() {
        assert_eq!(ExecVariation::Ldet.fraction(), 0.25);
        assert_eq!(ExecVariation::Mdet.fraction(), 0.50);
        assert_eq!(ExecVariation::Hdet.fraction(), 0.99);
        assert_eq!(ExecVariation::Custom(0.1).fraction(), 0.1);
        assert_eq!(ExecVariation::Ldet.label(), "LDET");
        assert_eq!(ExecVariation::paper_scenarios().len(), 3);
    }

    #[test]
    fn builders_replace_fields() {
        let spec = WorkloadSpec::default()
            .with_subtasks(10..=20)
            .with_depth(2..=4)
            .with_fan_in(1..=2)
            .with_mean_exec_time(40)
            .with_variation(ExecVariation::Hdet)
            .with_olr(2.0)
            .with_ccr(0.5);
        assert_eq!(spec.subtasks, 10..=20);
        assert_eq!(spec.depth, 2..=4);
        assert_eq!(spec.fan_in, 1..=2);
        assert_eq!(spec.mean_exec_time, 40);
        assert_eq!(spec.variation, ExecVariation::Hdet);
        assert_eq!(spec.olr, 2.0);
        assert_eq!(spec.ccr, 0.5);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        assert!(WorkloadSpec::default()
            .with_subtasks(5..=6)
            .with_depth(8..=12)
            .validate()
            .is_err());
        assert!(WorkloadSpec::default()
            .with_mean_exec_time(0)
            .validate()
            .is_err());
        assert!(WorkloadSpec::default().with_olr(0.0).validate().is_err());
        assert!(WorkloadSpec::default().with_ccr(-1.0).validate().is_err());
        assert!(WorkloadSpec::default()
            .with_variation(ExecVariation::Custom(1.0))
            .validate()
            .is_err());
        assert!(WorkloadSpec::default()
            .with_fan_in(0..=2)
            .validate()
            .is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let empty = WorkloadSpec::default().with_depth(4..=2);
        assert!(empty.validate().is_err());
    }
}
