//! The random task-graph generator of §5.2.
//!
//! Generation is layered: a depth is drawn, every level receives at least one
//! subtask, each non-input subtask draws 1–3 predecessors from the previous
//! level, and any interior subtask left without successors is reconnected
//! forward so that only last-level subtasks are outputs of the *construction*
//! (nodes that organically end a chain earlier remain outputs, as in the
//! paper's model where an output is simply a successor-less subtask).
//!
//! Execution times are drawn uniformly in `MET·(1±v)`; message sizes
//! uniformly in `MET·CCR·(1±message_variation)`; the end-to-end deadline
//! grants a slack of `OLR × accumulated workload` over the deadline base
//! (critical path by default — see [`DeadlineBase`]), anchoring every
//! output subtask.
//!
//! [`DeadlineBase`]: crate::gen::DeadlineBase

use rand::Rng;

use crate::gen::WorkloadSpec;
use crate::{GraphError, Subtask, SubtaskId, TaskGraph, Time};

/// Generates one random task graph from `spec` using `rng`.
///
/// Two calls with identically-seeded RNGs produce identical graphs, which the
/// experiment harness relies on for paired comparisons between techniques.
///
/// # Errors
///
/// Returns an error if the specification fails validation (wrapped into a
/// [`GraphError`] is not possible, so the message is carried in
/// [`GenerateError::InvalidSpec`]) or if graph assembly fails (a bug).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), taskgraph::gen::GenerateError> {
/// let spec = WorkloadSpec::paper(ExecVariation::Ldet);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let graph = generate(&spec, &mut rng)?;
/// assert!(graph.subtask_count() >= 40 && graph.subtask_count() <= 60);
/// # Ok(())
/// # }
/// ```
pub fn generate<R: Rng + ?Sized>(
    spec: &WorkloadSpec,
    rng: &mut R,
) -> Result<TaskGraph, GenerateError> {
    spec.validate().map_err(GenerateError::InvalidSpec)?;

    let _span = tracing::debug_span!(
        "generate",
        met = spec.mean_exec_time,
        olr = spec.olr,
        ccr = spec.ccr,
        variation = ?spec.variation
    )
    .entered();

    let depth = rng.gen_range(spec.depth.clone());
    let min_n = (*spec.subtasks.start()).max(depth);
    let max_n = (*spec.subtasks.end()).max(min_n);
    let n = rng.gen_range(min_n..=max_n);

    // Assign one subtask per level, then spread the rest uniformly.
    let mut level_of = Vec::with_capacity(n);
    for l in 0..depth {
        level_of.push(l);
    }
    for _ in depth..n {
        level_of.push(rng.gen_range(0..depth));
    }
    level_of.sort_unstable();

    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); depth];
    for (node, &l) in level_of.iter().enumerate() {
        levels[l].push(node);
    }

    let mut builder = TaskGraph::builder();
    let mut ids = Vec::with_capacity(n);
    for &level in level_of.iter().take(n) {
        let wcet = draw_exec_time(spec, rng);
        let mut subtask = Subtask::new(wcet);
        if level == 0 {
            subtask = subtask.released_at(Time::ZERO);
        }
        ids.push(builder.add_subtask(subtask));
    }

    // Draw predecessors for each non-input subtask from the previous level.
    for l in 1..depth {
        for &node in &levels[l] {
            let prev = &levels[l - 1];
            let max_fan = (*spec.fan_in.end()).min(prev.len());
            let min_fan = (*spec.fan_in.start()).min(max_fan);
            let fan = rng.gen_range(min_fan..=max_fan);
            let preds = sample_distinct(prev, fan, rng);
            for p in preds {
                add_message(&mut builder, spec, rng, ids[p], ids[node])?;
            }
        }
    }

    // Reconnect interior subtasks that ended up without successors so chains
    // do not terminate by accident: attach them to a random node in the next
    // level. (Nodes in the last level legitimately have no successors.)
    for l in 0..depth.saturating_sub(1) {
        let next = levels[l + 1].clone();
        for &node in &levels[l] {
            if builder.out_degree(ids[node]) == 0 {
                let target = next[rng.gen_range(0..next.len())];
                if !builder.has_edge(ids[node], ids[target]) {
                    add_message(&mut builder, spec, rng, ids[node], ids[target])?;
                }
            }
        }
    }

    // Anchor the end-to-end deadline: OLR × accumulated workload (along the
    // critical path, or of the whole graph — see `DeadlineBase`), applied
    // to every input–output pair (inputs release at 0, so the absolute
    // deadline of every output subtask equals the end-to-end deadline).
    let base = deadline_base_work(spec, &builder);
    let deadline = end_to_end_deadline(spec, base);
    for &id in ids.iter().take(n) {
        if builder.out_degree(id) == 0 {
            builder.subtask_mut(id).set_deadline(Some(deadline));
        }
        // Inputs can also occur above level 0 only by construction error;
        // level-0 nodes already carry a release. Interior nodes with no
        // in-edges would be inputs: give them a release as well.
        if builder.in_degree(id) == 0 {
            builder.subtask_mut(id).set_release(Some(Time::ZERO));
        }
    }

    let graph = builder.build().map_err(GenerateError::Graph)?;
    tracing::debug!(
        subtasks = graph.subtask_count(),
        messages = graph.edge_count(),
        depth = depth,
        deadline = %deadline,
        "generated task graph"
    );
    Ok(graph)
}

/// End-to-end deadline the generator would assign for a given deadline-base
/// workload (critical-path or total work, per [`WorkloadSpec::deadline_base`]),
/// exposed so that analyses can recompute the OLR.
///
/// The OLR is a *laxity ratio* in the same family as the slicing metrics:
/// the end-to-end slack is `OLR × base work`, so `D = (1 + OLR) × base`.
///
/// [`WorkloadSpec::deadline_base`]: crate::gen::WorkloadSpec
pub fn end_to_end_deadline(spec: &WorkloadSpec, base_work: Time) -> Time {
    Time::from_f64_rounded((1.0 + spec.olr) * base_work.as_f64())
}

/// The workload quantity the OLR multiplies, computed from a builder.
pub(crate) fn deadline_base_work(spec: &WorkloadSpec, builder: &crate::TaskGraphBuilder) -> Time {
    match spec.deadline_base {
        crate::gen::DeadlineBase::CriticalPath => builder
            .longest_path_work()
            .expect("generators never create cycles"),
        crate::gen::DeadlineBase::TotalWork => {
            let mut total = Time::ZERO;
            for i in 0..builder.subtask_count() as u32 {
                total += builder.subtask(SubtaskId::new(i)).wcet();
            }
            total
        }
    }
}

fn draw_exec_time<R: Rng + ?Sized>(spec: &WorkloadSpec, rng: &mut R) -> Time {
    let v = spec.variation.fraction();
    let met = spec.mean_exec_time as f64;
    let lo = ((met * (1.0 - v)).round() as i64).max(1);
    let hi = ((met * (1.0 + v)).round() as i64).max(lo);
    Time::new(rng.gen_range(lo..=hi))
}

fn draw_message_items<R: Rng + ?Sized>(spec: &WorkloadSpec, rng: &mut R) -> u64 {
    let mean = spec.mean_exec_time as f64 * spec.ccr;
    if mean < 0.5 {
        return 1;
    }
    let v = spec.message_variation;
    let lo = ((mean * (1.0 - v)).round() as u64).max(1);
    let hi = ((mean * (1.0 + v)).round() as u64).max(lo);
    rng.gen_range(lo..=hi)
}

fn add_message<R: Rng + ?Sized>(
    builder: &mut crate::TaskGraphBuilder,
    spec: &WorkloadSpec,
    rng: &mut R,
    src: SubtaskId,
    dst: SubtaskId,
) -> Result<(), GenerateError> {
    let items = draw_message_items(spec, rng);
    builder
        .add_edge(src, dst, items)
        .map_err(GenerateError::Graph)?;
    Ok(())
}

fn sample_distinct<R: Rng + ?Sized>(pool: &[usize], k: usize, rng: &mut R) -> Vec<usize> {
    debug_assert!(k <= pool.len());
    let mut picked: Vec<usize> = pool.to_vec();
    // Partial Fisher–Yates: the first k elements become the sample.
    for i in 0..k {
        let j = rng.gen_range(i..picked.len());
        picked.swap(i, j);
    }
    picked.truncate(k);
    picked
}

/// Error produced by the workload generator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenerateError {
    /// The workload specification is inconsistent; the message names the
    /// violated constraint.
    InvalidSpec(String),
    /// Graph assembly failed (indicates a generator bug).
    Graph(GraphError),
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::InvalidSpec(msg) => write!(f, "invalid workload spec: {msg}"),
            GenerateError::Graph(e) => write!(f, "graph assembly failed: {e}"),
        }
    }
}

impl std::error::Error for GenerateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenerateError::InvalidSpec(_) => None,
            GenerateError::Graph(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::analysis::GraphAnalysis;
    use crate::gen::ExecVariation;

    fn paper_graph(seed: u64, variation: ExecVariation) -> TaskGraph {
        let spec = WorkloadSpec::paper(variation);
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&spec, &mut rng).unwrap()
    }

    #[test]
    fn respects_size_and_depth_ranges() {
        for seed in 0..20 {
            let g = paper_graph(seed, ExecVariation::Mdet);
            assert!(
                (40..=60).contains(&g.subtask_count()),
                "n={}",
                g.subtask_count()
            );
            let depth = GraphAnalysis::new(&g).depth();
            assert!((8..=12).contains(&depth), "depth={depth}");
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = paper_graph(7, ExecVariation::Hdet);
        let b = paper_graph(7, ExecVariation::Hdet);
        assert_eq!(a, b);
        let c = paper_graph(8, ExecVariation::Hdet);
        assert_ne!(a, c);
    }

    #[test]
    fn execution_times_within_variation_bounds() {
        for (variation, lo, hi) in [
            (ExecVariation::Ldet, 15, 25),
            (ExecVariation::Mdet, 10, 30),
            (ExecVariation::Hdet, 1, 40),
        ] {
            let g = paper_graph(3, variation);
            for id in g.subtask_ids() {
                let c = g.subtask(id).wcet().as_i64();
                assert!((lo..=hi).contains(&c), "{variation:?}: wcet={c}");
            }
        }
    }

    #[test]
    fn deadline_matches_olr_times_critical_path() {
        let g = paper_graph(11, ExecVariation::Ldet);
        let an = GraphAnalysis::new(&g);
        let expected = end_to_end_deadline(
            &WorkloadSpec::paper(ExecVariation::Ldet),
            an.longest_path_work(),
        );
        for &out in g.outputs() {
            assert_eq!(g.subtask(out).deadline(), Some(expected));
        }
        for &input in g.inputs() {
            assert_eq!(g.subtask(input).release(), Some(Time::ZERO));
        }
    }

    #[test]
    fn total_work_deadline_base_supported() {
        let spec = WorkloadSpec::paper(ExecVariation::Ldet)
            .with_deadline_base(crate::gen::DeadlineBase::TotalWork);
        let mut rng = StdRng::seed_from_u64(11);
        let g = generate(&spec, &mut rng).unwrap();
        let an = GraphAnalysis::new(&g);
        let expected = end_to_end_deadline(&spec, an.total_work());
        for &out in g.outputs() {
            assert_eq!(g.subtask(out).deadline(), Some(expected));
        }
        // The total-work deadline is much looser than the critical-path one.
        assert!(an.total_work() > an.longest_path_work());
    }

    #[test]
    fn interior_nodes_have_successors() {
        let g = paper_graph(5, ExecVariation::Mdet);
        let an = GraphAnalysis::new(&g);
        let levels = an.levels();
        let depth = an.depth();
        for id in g.subtask_ids() {
            if levels[id.index()] + 1 < depth && g.is_output(id) {
                // The reconnection pass should keep chains alive until the
                // deepest level reached by this node's component; outputs
                // above the last level are only acceptable if they were
                // created at the last *constructed* level. The generator
                // guarantees no interior node is successor-less.
                panic!(
                    "interior node {id} has no successors (level {})",
                    levels[id.index()]
                );
            }
        }
    }

    #[test]
    fn ccr_close_to_spec() {
        let mut total = 0.0;
        let runs = 16;
        for seed in 0..runs {
            let g = paper_graph(seed, ExecVariation::Ldet);
            total += GraphAnalysis::new(&g).realized_ccr(1.0);
        }
        let mean_ccr = total / runs as f64;
        assert!((0.8..=1.25).contains(&mean_ccr), "mean CCR {mean_ccr}");
    }

    #[test]
    fn rejects_invalid_spec() {
        let spec = WorkloadSpec::default().with_olr(-1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            generate(&spec, &mut rng),
            Err(GenerateError::InvalidSpec(_))
        ));
    }

    #[test]
    fn builder_longest_path_matches_analysis() {
        // The builder-side critical path (used to anchor deadlines) must
        // agree with the post-build analysis.
        for seed in 0..6 {
            let g = paper_graph(seed, ExecVariation::Hdet);
            let analysis_cp = GraphAnalysis::new(&g).longest_path_work();
            // Rebuild a builder with the same nodes/edges.
            let mut b = TaskGraph::builder();
            for id in g.subtask_ids() {
                b.add_subtask(g.subtask(id).clone());
            }
            for eid in g.edge_ids() {
                let e = g.edge(eid);
                b.add_edge(e.src(), e.dst(), e.items()).unwrap();
            }
            assert_eq!(b.longest_path_work(), Some(analysis_cp), "seed {seed}");
        }
    }

    #[test]
    fn dot_export_covers_generated_graphs() {
        let g = paper_graph(2, ExecVariation::Mdet);
        let dot = crate::dot::to_dot(&g);
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        for id in g.subtask_ids() {
            assert!(dot.contains(&format!("\"{id}\"")));
        }
    }

    #[test]
    fn generate_error_display() {
        let e = GenerateError::InvalidSpec("bad".to_owned());
        assert!(e.to_string().contains("bad"));
        let g = GenerateError::Graph(GraphError::Empty);
        assert!(g.to_string().contains("graph assembly failed"));
        assert!(std::error::Error::source(&g).is_some());
    }
}
