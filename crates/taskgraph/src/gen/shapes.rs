//! Structured task-graph generators: in-tree, out-tree, fork–join and chain.
//!
//! §8 of the paper lists these commonly-encountered structures as future
//! evaluation targets for AST; the extended experiments in this repository
//! exercise them. All generators draw execution times and message sizes from
//! the same [`WorkloadSpec`] distributions as the random generator and anchor
//! the end-to-end deadline at `OLR × total workload`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gen::{GenerateError, WorkloadSpec};
use crate::{Subtask, SubtaskId, TaskGraph, TaskGraphBuilder, Time};

/// The family of regular graph shapes supported by [`generate_shape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Shape {
    /// A single chain of `length` subtasks.
    Chain {
        /// Number of subtasks in the chain.
        length: usize,
    },
    /// A tree that converges to one root output: `depth` levels with
    /// branching factor `branching` (leaves are inputs).
    InTree {
        /// Number of levels, including the root.
        depth: usize,
        /// Children per node.
        branching: usize,
    },
    /// A tree that diverges from one root input: mirror image of
    /// [`Shape::InTree`].
    OutTree {
        /// Number of levels, including the root.
        depth: usize,
        /// Children per node.
        branching: usize,
    },
    /// Alternating fork and join stages: a source forks into `width` parallel
    /// subtasks which join, repeated `stages` times.
    ForkJoin {
        /// Number of fork–join stages.
        stages: usize,
        /// Parallel subtasks per stage.
        width: usize,
    },
}

impl Shape {
    /// A short label used in reports.
    pub fn label(self) -> String {
        match self {
            Shape::Chain { length } => format!("chain({length})"),
            Shape::InTree { depth, branching } => format!("in-tree(d={depth},b={branching})"),
            Shape::OutTree { depth, branching } => format!("out-tree(d={depth},b={branching})"),
            Shape::ForkJoin { stages, width } => format!("fork-join(s={stages},w={width})"),
        }
    }
}

/// Generates a structured task graph of the given shape.
///
/// Temporal parameters (execution times, message sizes, OLR) come from
/// `spec`; the structural fields of `spec` (`subtasks`, `depth`, `fan_in`)
/// are ignored in favour of the shape parameters.
///
/// # Errors
///
/// Returns [`GenerateError::InvalidSpec`] if the shape parameters are
/// degenerate (zero length, depth or width) or the temporal parameters fail
/// validation.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use taskgraph::gen::{generate_shape, ExecVariation, Shape, WorkloadSpec};
///
/// # fn main() -> Result<(), taskgraph::gen::GenerateError> {
/// let spec = WorkloadSpec::paper(ExecVariation::Ldet);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = generate_shape(Shape::ForkJoin { stages: 3, width: 4 }, &spec, &mut rng)?;
/// assert_eq!(g.inputs().len(), 1);
/// assert_eq!(g.outputs().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn generate_shape<R: Rng + ?Sized>(
    shape: Shape,
    spec: &WorkloadSpec,
    rng: &mut R,
) -> Result<TaskGraph, GenerateError> {
    spec.validate().map_err(GenerateError::InvalidSpec)?;
    let _span = tracing::debug_span!("generate_shape", shape = ?shape).entered();
    match shape {
        Shape::Chain { length } => {
            if length == 0 {
                return Err(GenerateError::InvalidSpec(
                    "chain length must be positive".into(),
                ));
            }
            build(spec, rng, |b, s, r| {
                let mut prev: Option<SubtaskId> = None;
                for _ in 0..length {
                    let id = b.add_subtask(Subtask::new(draw_exec(s, r)));
                    if let Some(p) = prev {
                        add_edge(b, s, r, p, id)?;
                    }
                    prev = Some(id);
                }
                Ok(())
            })
        }
        Shape::InTree { depth, branching } => {
            if depth == 0 || branching == 0 {
                return Err(GenerateError::InvalidSpec(
                    "in-tree depth and branching must be positive".into(),
                ));
            }
            build(spec, rng, |b, s, r| {
                // Level 0 is the root (output); build top-down, edges child -> parent.
                let mut parents = vec![b.add_subtask(Subtask::new(draw_exec(s, r)))];
                for _ in 1..depth {
                    let mut children = Vec::new();
                    for &parent in &parents {
                        for _ in 0..branching {
                            let child = b.add_subtask(Subtask::new(draw_exec(s, r)));
                            add_edge(b, s, r, child, parent)?;
                            children.push(child);
                        }
                    }
                    parents = children;
                }
                Ok(())
            })
        }
        Shape::OutTree { depth, branching } => {
            if depth == 0 || branching == 0 {
                return Err(GenerateError::InvalidSpec(
                    "out-tree depth and branching must be positive".into(),
                ));
            }
            build(spec, rng, |b, s, r| {
                let mut parents = vec![b.add_subtask(Subtask::new(draw_exec(s, r)))];
                for _ in 1..depth {
                    let mut children = Vec::new();
                    for &parent in &parents {
                        for _ in 0..branching {
                            let child = b.add_subtask(Subtask::new(draw_exec(s, r)));
                            add_edge(b, s, r, parent, child)?;
                            children.push(child);
                        }
                    }
                    parents = children;
                }
                Ok(())
            })
        }
        Shape::ForkJoin { stages, width } => {
            if stages == 0 || width == 0 {
                return Err(GenerateError::InvalidSpec(
                    "fork-join stages and width must be positive".into(),
                ));
            }
            build(spec, rng, |b, s, r| {
                let mut join = b.add_subtask(Subtask::new(draw_exec(s, r)));
                for _ in 0..stages {
                    let mut workers = Vec::with_capacity(width);
                    for _ in 0..width {
                        let w = b.add_subtask(Subtask::new(draw_exec(s, r)));
                        add_edge(b, s, r, join, w)?;
                        workers.push(w);
                    }
                    let next_join = b.add_subtask(Subtask::new(draw_exec(s, r)));
                    for w in workers {
                        add_edge(b, s, r, w, next_join)?;
                    }
                    join = next_join;
                }
                Ok(())
            })
        }
    }
}

/// Runs a structural assembly closure, then anchors releases and deadlines
/// the same way the random generator does.
fn build<R, F>(spec: &WorkloadSpec, rng: &mut R, assemble: F) -> Result<TaskGraph, GenerateError>
where
    R: Rng + ?Sized,
    F: FnOnce(&mut TaskGraphBuilder, &WorkloadSpec, &mut R) -> Result<(), GenerateError>,
{
    let mut builder = TaskGraph::builder();
    assemble(&mut builder, spec, rng)?;

    let n = builder.subtask_count();
    let base = crate::gen::random::deadline_base_work(spec, &builder);
    let deadline = crate::gen::end_to_end_deadline(spec, base);
    for i in 0..n as u32 {
        let id = SubtaskId::new(i);
        if builder.in_degree(id) == 0 {
            builder.subtask_mut(id).set_release(Some(Time::ZERO));
        }
        if builder.out_degree(id) == 0 {
            builder.subtask_mut(id).set_deadline(Some(deadline));
        }
    }
    builder.build().map_err(GenerateError::Graph)
}

fn draw_exec<R: Rng + ?Sized>(spec: &WorkloadSpec, rng: &mut R) -> Time {
    let v = spec.variation.fraction();
    let met = spec.mean_exec_time as f64;
    let lo = ((met * (1.0 - v)).round() as i64).max(1);
    let hi = ((met * (1.0 + v)).round() as i64).max(lo);
    Time::new(rng.gen_range(lo..=hi))
}

fn add_edge<R: Rng + ?Sized>(
    builder: &mut TaskGraphBuilder,
    spec: &WorkloadSpec,
    rng: &mut R,
    src: SubtaskId,
    dst: SubtaskId,
) -> Result<(), GenerateError> {
    let mean = spec.mean_exec_time as f64 * spec.ccr;
    let items = if mean < 0.5 {
        1
    } else {
        let v = spec.message_variation;
        let lo = ((mean * (1.0 - v)).round() as u64).max(1);
        let hi = ((mean * (1.0 + v)).round() as u64).max(lo);
        rng.gen_range(lo..=hi)
    };
    builder
        .add_edge(src, dst, items)
        .map_err(GenerateError::Graph)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::analysis::GraphAnalysis;
    use crate::gen::ExecVariation;

    fn gen(shape: Shape) -> TaskGraph {
        let spec = WorkloadSpec::paper(ExecVariation::Ldet);
        let mut rng = StdRng::seed_from_u64(99);
        generate_shape(shape, &spec, &mut rng).unwrap()
    }

    #[test]
    fn chain_is_a_chain() {
        let g = gen(Shape::Chain { length: 6 });
        assert_eq!(g.subtask_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(GraphAnalysis::new(&g).width(), 1);
        assert_eq!(GraphAnalysis::new(&g).depth(), 6);
    }

    #[test]
    fn in_tree_converges() {
        let g = gen(Shape::InTree {
            depth: 3,
            branching: 2,
        });
        assert_eq!(g.subtask_count(), 1 + 2 + 4);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.inputs().len(), 4);
    }

    #[test]
    fn out_tree_diverges() {
        let g = gen(Shape::OutTree {
            depth: 3,
            branching: 3,
        });
        assert_eq!(g.subtask_count(), 1 + 3 + 9);
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 9);
    }

    #[test]
    fn fork_join_structure() {
        let g = gen(Shape::ForkJoin {
            stages: 2,
            width: 3,
        });
        // join0 + (3 workers + join) * 2 stages
        assert_eq!(g.subtask_count(), 1 + 2 * 4);
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(GraphAnalysis::new(&g).width(), 3);
    }

    #[test]
    fn parallelism_ordering_across_shapes() {
        let chain = GraphAnalysis::new(&gen(Shape::Chain { length: 8 })).avg_parallelism();
        assert!((chain - 1.0).abs() < 1e-9);
        let fj = gen(Shape::ForkJoin {
            stages: 2,
            width: 6,
        });
        assert!(GraphAnalysis::new(&fj).avg_parallelism() > 1.5);
    }

    #[test]
    fn anchors_present_on_all_shapes() {
        for shape in [
            Shape::Chain { length: 4 },
            Shape::InTree {
                depth: 3,
                branching: 2,
            },
            Shape::OutTree {
                depth: 2,
                branching: 4,
            },
            Shape::ForkJoin {
                stages: 1,
                width: 2,
            },
        ] {
            let g = gen(shape);
            for &i in g.inputs() {
                assert!(g.subtask(i).release().is_some(), "{}", shape.label());
            }
            for &o in g.outputs() {
                assert!(g.subtask(o).deadline().is_some(), "{}", shape.label());
            }
        }
    }

    #[test]
    fn rejects_degenerate_shapes() {
        let spec = WorkloadSpec::default();
        let mut rng = StdRng::seed_from_u64(0);
        for shape in [
            Shape::Chain { length: 0 },
            Shape::InTree {
                depth: 0,
                branching: 2,
            },
            Shape::OutTree {
                depth: 2,
                branching: 0,
            },
            Shape::ForkJoin {
                stages: 0,
                width: 1,
            },
        ] {
            assert!(
                matches!(
                    generate_shape(shape, &spec, &mut rng),
                    Err(GenerateError::InvalidSpec(_))
                ),
                "{}",
                shape.label()
            );
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Shape::Chain { length: 3 }.label(), "chain(3)");
        assert!(Shape::ForkJoin {
            stages: 2,
            width: 5
        }
        .label()
        .contains("w=5"));
    }
}
