//! Discrete simulation time.
//!
//! The paper's experimental platform (FEAST) simulates in integer *time
//! units*: subtask execution times are drawn as integers around a mean of 20
//! units and the shared bus transfers one data item per unit. [`Time`] is a
//! signed newtype over those units so that derived quantities such as
//! *lateness* (completion time minus absolute deadline, negative for valid
//! schedules) and *slack* can be represented directly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A signed instant or duration in discrete simulation time units.
///
/// `Time` is used both for points in time (release times, absolute
/// deadlines, schedule start/finish times) and for durations (execution
/// times, relative deadlines, slack). This mirrors the paper's unit-based
/// model where all temporal quantities share one integer domain.
///
/// # Examples
///
/// ```
/// use taskgraph::Time;
///
/// let release = Time::new(10);
/// let wcet = Time::new(20);
/// let finish = release + wcet;
/// assert_eq!(finish, Time::new(30));
/// // Lateness is negative when a deadline is met:
/// let deadline = Time::new(45);
/// assert_eq!(finish - deadline, Time::new(-15));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(i64);

impl Time {
    /// The zero instant/duration.
    pub const ZERO: Time = Time(0);
    /// The largest representable time value.
    pub const MAX: Time = Time(i64::MAX);
    /// The smallest (most negative) representable time value.
    pub const MIN: Time = Time(i64::MIN);

    /// Creates a time value from raw units.
    ///
    /// # Examples
    ///
    /// ```
    /// # use taskgraph::Time;
    /// assert_eq!(Time::new(3).as_i64(), 3);
    /// ```
    #[inline]
    pub const fn new(units: i64) -> Self {
        Time(units)
    }

    /// Returns the raw number of time units.
    #[inline]
    pub const fn as_i64(self) -> i64 {
        self.0
    }

    /// Returns the value as a floating-point number of units.
    ///
    /// Used when computing fractional metrics such as laxity ratios.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Creates a time value by rounding a floating-point number of units to
    /// the nearest integer.
    ///
    /// # Panics
    ///
    /// Panics if `units` is not finite or does not fit in `i64`.
    #[inline]
    pub fn from_f64_rounded(units: f64) -> Self {
        assert!(units.is_finite(), "time from non-finite float");
        let rounded = units.round();
        assert!(
            rounded >= i64::MIN as f64 && rounded <= i64::MAX as f64,
            "time out of range: {units}"
        );
        Time(rounded as i64)
    }

    /// Returns `true` if the value is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the value is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Saturating addition; clamps at the numeric bounds instead of
    /// overflowing.
    #[inline]
    pub fn saturating_add(self, other: Time) -> Time {
        Time(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction; clamps at the numeric bounds instead of
    /// overflowing.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Clamps the value to be at least `floor`.
    #[inline]
    pub fn at_least(self, floor: Time) -> Time {
        self.max(floor)
    }

    /// Returns the absolute value.
    #[inline]
    pub const fn abs(self) -> Time {
        Time(self.0.abs())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Time {
    fn from(units: i64) -> Self {
        Time(units)
    }
}

impl From<u32> for Time {
    fn from(units: u32) -> Self {
        Time(i64::from(units))
    }
}

impl From<Time> for i64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for i64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl<'a> Sum<&'a Time> for Time {
    fn sum<I: Iterator<Item = &'a Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Time::new(7).as_i64(), 7);
        assert_eq!(Time::ZERO.as_i64(), 0);
        assert_eq!(Time::from(5u32), Time::new(5));
        assert_eq!(Time::from(-3i64), Time::new(-3));
        assert_eq!(i64::from(Time::new(9)), 9);
    }

    #[test]
    fn arithmetic() {
        let a = Time::new(10);
        let b = Time::new(4);
        assert_eq!(a + b, Time::new(14));
        assert_eq!(a - b, Time::new(6));
        assert_eq!(-a, Time::new(-10));
        assert_eq!(a * 3, Time::new(30));
        assert_eq!(3 * a, Time::new(30));
        assert_eq!(a / 2, Time::new(5));
        let mut c = a;
        c += b;
        assert_eq!(c, Time::new(14));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn sum_over_iterators() {
        let xs = [Time::new(1), Time::new(2), Time::new(3)];
        let owned: Time = xs.iter().copied().sum();
        let borrowed: Time = xs.iter().sum();
        assert_eq!(owned, Time::new(6));
        assert_eq!(borrowed, Time::new(6));
    }

    #[test]
    fn predicates_and_clamps() {
        assert!(Time::new(-1).is_negative());
        assert!(Time::ZERO.is_zero());
        assert!(Time::new(1).is_positive());
        assert_eq!(Time::new(3).max(Time::new(5)), Time::new(5));
        assert_eq!(Time::new(3).min(Time::new(5)), Time::new(3));
        assert_eq!(Time::new(-2).at_least(Time::ZERO), Time::ZERO);
        assert_eq!(Time::new(2).at_least(Time::ZERO), Time::new(2));
        assert_eq!(Time::new(-4).abs(), Time::new(4));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(Time::new(1)), Time::MAX);
        assert_eq!(Time::MIN.saturating_sub(Time::new(1)), Time::MIN);
        assert_eq!(Time::new(1).saturating_add(Time::new(2)), Time::new(3));
    }

    #[test]
    fn float_round_trip() {
        assert_eq!(Time::from_f64_rounded(2.4), Time::new(2));
        assert_eq!(Time::from_f64_rounded(2.5), Time::new(3));
        assert_eq!(Time::from_f64_rounded(-2.5), Time::new(-3));
        assert_eq!(Time::new(8).as_f64(), 8.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn float_nan_panics() {
        let _ = Time::from_f64_rounded(f64::NAN);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Time::new(1) < Time::new(2));
        assert_eq!(format!("{}", Time::new(-7)), "-7");
        assert_eq!(format!("{:?}", Time::new(7)), "Time(7)");
    }
}
