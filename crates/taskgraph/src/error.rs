//! Error types for task-graph construction and validation.

use std::error::Error;
use std::fmt;

use crate::{EdgeId, SubtaskId};

/// Error produced while building or validating a [`TaskGraph`].
///
/// [`TaskGraph`]: crate::TaskGraph
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph contains no subtasks.
    Empty,
    /// An edge references a subtask id that does not exist.
    UnknownSubtask(SubtaskId),
    /// An edge connects a subtask to itself.
    SelfLoop(SubtaskId),
    /// Two edges connect the same ordered pair of subtasks.
    DuplicateEdge(SubtaskId, SubtaskId),
    /// The precedence relation contains a cycle through the given subtask.
    Cycle(SubtaskId),
    /// An input subtask (no predecessors) has no release time.
    MissingRelease(SubtaskId),
    /// An output subtask (no successors) has no end-to-end deadline.
    MissingDeadline(SubtaskId),
    /// A subtask was declared with a non-positive worst-case execution time.
    NonPositiveWcet(SubtaskId),
    /// A message was declared with zero data items.
    EmptyMessage(EdgeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "task graph contains no subtasks"),
            GraphError::UnknownSubtask(id) => {
                write!(f, "edge references unknown subtask {id}")
            }
            GraphError::SelfLoop(id) => write!(f, "subtask {id} has a self-loop"),
            GraphError::DuplicateEdge(src, dst) => {
                write!(f, "duplicate edge from {src} to {dst}")
            }
            GraphError::Cycle(id) => {
                write!(
                    f,
                    "precedence constraints form a cycle through subtask {id}"
                )
            }
            GraphError::MissingRelease(id) => {
                write!(f, "input subtask {id} has no release time")
            }
            GraphError::MissingDeadline(id) => {
                write!(f, "output subtask {id} has no end-to-end deadline")
            }
            GraphError::NonPositiveWcet(id) => {
                write!(f, "subtask {id} has a non-positive execution time")
            }
            GraphError::EmptyMessage(id) => {
                write!(f, "message {id} carries zero data items")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GraphError::Empty,
            GraphError::UnknownSubtask(SubtaskId::new(1)),
            GraphError::SelfLoop(SubtaskId::new(2)),
            GraphError::DuplicateEdge(SubtaskId::new(0), SubtaskId::new(1)),
            GraphError::Cycle(SubtaskId::new(3)),
            GraphError::MissingRelease(SubtaskId::new(4)),
            GraphError::MissingDeadline(SubtaskId::new(5)),
            GraphError::NonPositiveWcet(SubtaskId::new(6)),
            GraphError::EmptyMessage(EdgeId::new(7)),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
