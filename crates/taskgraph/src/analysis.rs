//! Structural and temporal analysis of task graphs.
//!
//! These queries back the adaptive metric of the paper: the *average task
//! graph parallelism* ξ is the total workload divided by the execution-time
//! length of the longest path (§7), and the *mean execution time* (MET)
//! anchors the execution-time threshold c_thres.

use crate::{SubtaskId, TaskGraph, Time};

/// Read-only analysis facade over a [`TaskGraph`].
///
/// All queries are `O(V + E)` and computed on demand; construct once and
/// reuse when several queries are needed.
///
/// # Examples
///
/// ```
/// use taskgraph::{analysis::GraphAnalysis, Subtask, TaskGraph, Time};
///
/// # fn main() -> Result<(), taskgraph::GraphError> {
/// let mut b = TaskGraph::builder();
/// let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
/// let c = b.add_subtask(Subtask::new(Time::new(30)).due_at(Time::new(100)));
/// b.add_edge(a, c, 1)?;
/// let g = b.build()?;
/// let analysis = GraphAnalysis::new(&g);
/// assert_eq!(analysis.total_work(), Time::new(40));
/// assert_eq!(analysis.longest_path_work(), Time::new(40));
/// assert_eq!(analysis.avg_parallelism(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GraphAnalysis<'g> {
    graph: &'g TaskGraph,
}

impl<'g> GraphAnalysis<'g> {
    /// Creates an analysis view over `graph`.
    pub fn new(graph: &'g TaskGraph) -> Self {
        GraphAnalysis { graph }
    }

    /// Total workload: the sum of all subtask execution times.
    pub fn total_work(&self) -> Time {
        self.graph
            .subtask_ids()
            .map(|id| self.graph.subtask(id).wcet())
            .sum()
    }

    /// Mean subtask execution time (MET) over all subtasks.
    ///
    /// # Panics
    ///
    /// Never panics: validated graphs are non-empty.
    pub fn mean_exec_time(&self) -> f64 {
        self.total_work().as_f64() / self.graph.subtask_count() as f64
    }

    /// Execution-time length of the longest path (sum of node execution
    /// times along the heaviest chain). Communication is not included, per
    /// the paper's definition of ξ.
    pub fn longest_path_work(&self) -> Time {
        let mut best = vec![Time::ZERO; self.graph.subtask_count()];
        let mut overall = Time::ZERO;
        for &v in self.graph.topological_order() {
            let own = self.graph.subtask(v).wcet();
            let pred_best = self
                .graph
                .predecessors(v)
                .map(|p| best[p.index()])
                .max()
                .unwrap_or(Time::ZERO);
            best[v.index()] = pred_best + own;
            overall = overall.max(best[v.index()]);
        }
        overall
    }

    /// Average task graph parallelism ξ: total workload divided by the
    /// execution-time length of the longest path (§7 of the paper).
    pub fn avg_parallelism(&self) -> f64 {
        let longest = self.longest_path_work();
        debug_assert!(longest.is_positive(), "validated graphs have positive work");
        self.total_work().as_f64() / longest.as_f64()
    }

    /// Length of the longest path including the communication subtasks
    /// along it, with messages costed at `cost_per_item` time units per
    /// data item.
    ///
    /// In the paper's task model a path alternates computation and
    /// communication subtasks, so the length "in execution time" of a path
    /// includes message costs; this is the denominator used for the
    /// platform-aware parallelism that drives the ADAPT metric.
    pub fn longest_path_span(&self, cost_per_item: f64) -> f64 {
        let mut best = vec![0.0f64; self.graph.subtask_count()];
        let mut overall = 0.0f64;
        for &v in self.graph.topological_order() {
            let own = self.graph.subtask(v).wcet().as_f64();
            let mut pred_best = 0.0f64;
            for &e in self.graph.in_edges(v) {
                let edge = self.graph.edge(e);
                let via = best[edge.src().index()] + edge.items() as f64 * cost_per_item;
                pred_best = pred_best.max(via);
            }
            best[v.index()] = pred_best + own;
            overall = overall.max(best[v.index()]);
        }
        overall
    }

    /// Average parallelism over the communication-inclusive longest path:
    /// `total workload / longest_path_span(cost_per_item)`.
    pub fn avg_parallelism_with_comm(&self, cost_per_item: f64) -> f64 {
        let span = self.longest_path_span(cost_per_item);
        debug_assert!(span > 0.0, "validated graphs have positive work");
        self.total_work().as_f64() / span
    }

    /// The level (maximum edge-count depth from any input) of each subtask,
    /// indexed by [`SubtaskId::index`].
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.graph.subtask_count()];
        for &v in self.graph.topological_order() {
            let l = self
                .graph
                .predecessors(v)
                .map(|p| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[v.index()] = l;
        }
        level
    }

    /// The depth of the graph: number of levels (longest chain measured in
    /// subtasks).
    pub fn depth(&self) -> usize {
        self.levels().into_iter().max().map_or(0, |l| l + 1)
    }

    /// The width of the graph: the size of the most populous level. An upper
    /// bound on exploitable parallelism for level-synchronous workloads.
    pub fn width(&self) -> usize {
        let levels = self.levels();
        let depth = levels.iter().copied().max().map_or(0, |l| l + 1);
        let mut counts = vec![0usize; depth];
        for l in levels {
            counts[l] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// One longest path (by execution time) from an input to an output, as a
    /// sequence of subtask ids. Ties are broken toward lower ids.
    pub fn longest_path(&self) -> Vec<SubtaskId> {
        let n = self.graph.subtask_count();
        let mut best = vec![Time::ZERO; n];
        let mut parent: Vec<Option<SubtaskId>> = vec![None; n];
        let mut end = None;
        let mut end_work = Time::MIN;
        for &v in self.graph.topological_order() {
            let own = self.graph.subtask(v).wcet();
            let mut pred_best = Time::ZERO;
            let mut pred_id = None;
            for p in self.graph.predecessors(v) {
                if best[p.index()] > pred_best
                    || (best[p.index()] == pred_best && pred_id.is_some_and(|q: SubtaskId| p < q))
                {
                    pred_best = best[p.index()];
                    pred_id = Some(p);
                }
            }
            best[v.index()] = pred_best + own;
            parent[v.index()] = pred_id;
            if self.graph.is_output(v) && best[v.index()] > end_work {
                end_work = best[v.index()];
                end = Some(v);
            }
        }
        let mut path = Vec::new();
        let mut cursor = end;
        while let Some(v) = cursor {
            path.push(v);
            cursor = parent[v.index()];
        }
        path.reverse();
        path
    }

    /// Sum of all message sizes (data items) over all edges.
    pub fn total_message_items(&self) -> u64 {
        self.graph
            .edge_ids()
            .map(|e| self.graph.edge(e).items())
            .sum()
    }

    /// Mean message size in data items, or 0.0 for graphs without edges.
    pub fn mean_message_items(&self) -> f64 {
        if self.graph.edge_count() == 0 {
            return 0.0;
        }
        self.total_message_items() as f64 / self.graph.edge_count() as f64
    }

    /// The communication-to-computation ratio realized by this graph under a
    /// cost of `cost_per_item` time units per transmitted item: mean message
    /// communication cost over mean subtask execution time (§5.2).
    pub fn realized_ccr(&self, cost_per_item: f64) -> f64 {
        self.mean_message_items() * cost_per_item / self.mean_exec_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Subtask, TaskGraph};

    /// a(10) -> b(20) -> d(5); a -> c(40) -> d  (diamond)
    fn diamond() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let x = b.add_subtask(Subtask::new(Time::new(20)));
        let y = b.add_subtask(Subtask::new(Time::new(40)));
        let d = b.add_subtask(Subtask::new(Time::new(5)).due_at(Time::new(1000)));
        b.add_edge(a, x, 10).unwrap();
        b.add_edge(a, y, 20).unwrap();
        b.add_edge(x, d, 30).unwrap();
        b.add_edge(y, d, 40).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn totals_and_met() {
        let g = diamond();
        let an = GraphAnalysis::new(&g);
        assert_eq!(an.total_work(), Time::new(75));
        assert!((an.mean_exec_time() - 18.75).abs() < 1e-12);
        assert_eq!(an.total_message_items(), 100);
        assert!((an.mean_message_items() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn comm_inclusive_path_span() {
        let g = diamond();
        let an = GraphAnalysis::new(&g);
        // Free communication: same as node-weight longest path.
        assert_eq!(an.longest_path_span(0.0), 55.0);
        // One unit per item: a(10) +20 items+ y(40) +40 items+ d(5) = 115.
        assert_eq!(an.longest_path_span(1.0), 115.0);
        let xi = an.avg_parallelism_with_comm(1.0);
        assert!((xi - 75.0 / 115.0).abs() < 1e-12);
        // Communication-inclusive parallelism is never larger than the
        // computation-only figure.
        assert!(xi <= an.avg_parallelism());
    }

    #[test]
    fn longest_path_metrics() {
        let g = diamond();
        let an = GraphAnalysis::new(&g);
        assert_eq!(an.longest_path_work(), Time::new(55)); // a + y + d
        let xi = an.avg_parallelism();
        assert!((xi - 75.0 / 55.0).abs() < 1e-12);
        let path = an.longest_path();
        let works: Time = path.iter().map(|&v| g.subtask(v).wcet()).sum();
        assert_eq!(works, Time::new(55));
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], g.inputs()[0]);
        assert_eq!(*path.last().unwrap(), g.outputs()[0]);
    }

    #[test]
    fn levels_depth_width() {
        let g = diamond();
        let an = GraphAnalysis::new(&g);
        assert_eq!(an.levels(), vec![0, 1, 1, 2]);
        assert_eq!(an.depth(), 3);
        assert_eq!(an.width(), 2);
    }

    #[test]
    fn realized_ccr_matches_hand_computation() {
        let g = diamond();
        let an = GraphAnalysis::new(&g);
        // mean message = 25 items, MET = 18.75 => CCR = 25/18.75
        assert!((an.realized_ccr(1.0) - 25.0 / 18.75).abs() < 1e-12);
    }

    #[test]
    fn single_node_graph() {
        let mut b = TaskGraph::builder();
        b.add_subtask(
            Subtask::new(Time::new(9))
                .released_at(Time::ZERO)
                .due_at(Time::new(20)),
        );
        let g = b.build().unwrap();
        let an = GraphAnalysis::new(&g);
        assert_eq!(an.total_work(), Time::new(9));
        assert_eq!(an.longest_path_work(), Time::new(9));
        assert_eq!(an.avg_parallelism(), 1.0);
        assert_eq!(an.depth(), 1);
        assert_eq!(an.width(), 1);
        assert_eq!(an.mean_message_items(), 0.0);
        assert_eq!(an.longest_path().len(), 1);
    }
}
