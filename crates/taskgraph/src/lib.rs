//! Task-graph model and workload generators for distributed hard real-time
//! systems.
//!
//! This crate provides the *task model* of Jonsson & Shin, "Deadline
//! Assignment in Distributed Hard Real-Time Systems with Relaxed Locality
//! Constraints" (ICDCS 1997), §3:
//!
//! * a real-time application is a directed acyclic [`TaskGraph`] whose nodes
//!   are [`Subtask`]s characterised by worst-case execution times and whose
//!   arcs carry *messages* ([`Edge`]) of a given size in data items;
//! * *input* subtasks (no predecessors) carry release times and *output*
//!   subtasks (no successors) carry absolute end-to-end deadlines;
//! * all temporal quantities are integer [`Time`] units.
//!
//! The [`gen`] module reproduces the paper's random workload generator
//! (§5.2) and adds the structured shapes of §8; [`analysis`] computes the
//! aggregates that drive the adaptive slicing metric (total workload, longest
//! path, average parallelism ξ, MET).
//!
//! # Examples
//!
//! Build a small pipeline by hand:
//!
//! ```
//! use taskgraph::{Subtask, TaskGraph, Time};
//!
//! # fn main() -> Result<(), taskgraph::GraphError> {
//! let mut b = TaskGraph::builder();
//! let sample = b.add_subtask(Subtask::new(Time::new(10)).named("sample").released_at(Time::ZERO));
//! let filter = b.add_subtask(Subtask::new(Time::new(25)).named("filter"));
//! let actuate = b.add_subtask(Subtask::new(Time::new(8)).named("actuate").due_at(Time::new(120)));
//! b.add_edge(sample, filter, 16)?;
//! b.add_edge(filter, actuate, 4)?;
//! let graph = b.build()?;
//! assert_eq!(graph.topological_order().len(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! Generate one of the paper's random workloads:
//!
//! ```
//! use rand::SeedableRng;
//! use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
//!
//! # fn main() -> Result<(), taskgraph::gen::GenerateError> {
//! let spec = WorkloadSpec::paper(ExecVariation::Hdet);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
//! let graph = generate(&spec, &mut rng)?;
//! assert!(graph.subtask_count() >= 40);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod dot;
mod error;
pub mod gen;
mod graph;
mod time;

pub use error::GraphError;
pub use graph::{Edge, EdgeId, Subtask, SubtaskId, TaskGraph, TaskGraphBuilder};
pub use time::Time;

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_and_sync() {
        assert_send_sync::<Time>();
        assert_send_sync::<TaskGraph>();
        assert_send_sync::<TaskGraphBuilder>();
        assert_send_sync::<Subtask>();
        assert_send_sync::<Edge>();
        assert_send_sync::<GraphError>();
        assert_send_sync::<gen::WorkloadSpec>();
    }
}
