//! Graphviz DOT export for task graphs.
//!
//! Useful for visually inspecting generated workloads and for documentation.

use std::fmt::Write as _;

use crate::TaskGraph;

/// Renders the graph in Graphviz DOT syntax.
///
/// Nodes are labelled with their id, optional name and execution time; input
/// and output anchors are annotated with release time and deadline; edges
/// carry the message size in data items.
///
/// # Examples
///
/// ```
/// use taskgraph::{dot::to_dot, Subtask, TaskGraph, Time};
///
/// # fn main() -> Result<(), taskgraph::GraphError> {
/// let mut b = TaskGraph::builder();
/// let a = b.add_subtask(Subtask::new(Time::new(5)).named("src").released_at(Time::ZERO));
/// let z = b.add_subtask(Subtask::new(Time::new(7)).due_at(Time::new(50)));
/// b.add_edge(a, z, 3)?;
/// let dot = to_dot(&b.build()?);
/// assert!(dot.starts_with("digraph taskgraph"));
/// assert!(dot.contains("src"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(graph: &TaskGraph) -> String {
    let mut out = String::new();
    out.push_str("digraph taskgraph {\n");
    out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for id in graph.subtask_ids() {
        let st = graph.subtask(id);
        let mut label = match st.name() {
            Some(name) => format!("{id} {name}\\nc={}", st.wcet()),
            None => format!("{id}\\nc={}", st.wcet()),
        };
        if let Some(r) = st.release() {
            let _ = write!(label, "\\nr={r}");
        }
        if let Some(d) = st.deadline() {
            let _ = write!(label, "\\nD={d}");
        }
        let shape = if graph.is_input(id) {
            ", style=filled, fillcolor=\"#e8f4ea\""
        } else if graph.is_output(id) {
            ", style=filled, fillcolor=\"#f4e8e8\""
        } else {
            ""
        };
        let _ = writeln!(out, "  \"{id}\" [label=\"{label}\"{shape}];");
    }
    for eid in graph.edge_ids() {
        let e = graph.edge(eid);
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"m={}\"];",
            e.src(),
            e.dst(),
            e.items()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Subtask, Time};

    #[test]
    fn renders_all_nodes_and_edges() {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(1)).released_at(Time::ZERO));
        let c = b.add_subtask(Subtask::new(Time::new(2)));
        let z = b.add_subtask(Subtask::new(Time::new(3)).due_at(Time::new(30)));
        b.add_edge(a, c, 4).unwrap();
        b.add_edge(c, z, 5).unwrap();
        let dot = to_dot(&b.build().unwrap());
        for needle in ["digraph", "t0", "t1", "t2", "m=4", "m=5", "r=0", "D=30"] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
        assert_eq!(dot.matches(" -> ").count(), 2);
    }

    #[test]
    fn input_and_output_highlighted() {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(1)).released_at(Time::ZERO));
        let z = b.add_subtask(Subtask::new(Time::new(1)).due_at(Time::new(10)));
        b.add_edge(a, z, 1).unwrap();
        let dot = to_dot(&b.build().unwrap());
        assert_eq!(dot.matches("fillcolor").count(), 2);
    }
}
