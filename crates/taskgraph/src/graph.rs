//! The task-graph data model.
//!
//! A real-time application is modelled as a directed acyclic graph whose
//! nodes are *subtasks* and whose arcs are precedence constraints carrying
//! *messages* (see §3 of the paper). Input subtasks (no predecessors) carry
//! release times; output subtasks (no successors) carry end-to-end deadlines.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GraphError, Time};

/// Identifier of a subtask (a node) within one [`TaskGraph`].
///
/// Ids are dense indices assigned in insertion order, so they can be used to
/// index per-subtask side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SubtaskId(u32);

impl SubtaskId {
    /// Creates an id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        SubtaskId(index)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SubtaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a precedence edge (and its message) within one
/// [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A subtask: the unit of computation in the task model.
///
/// A subtask is characterised by the tuple ⟨cᵢ, rᵢ, dᵢ⟩ in the paper. Here
/// only the *given* temporal attributes are stored: the worst-case execution
/// time, plus a release time for inputs and an end-to-end (absolute) deadline
/// for outputs. Per-subtask release times and relative deadlines for interior
/// subtasks are *produced* by deadline distribution and live in
/// `slicing::DeadlineAssignment`, not here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subtask {
    name: Option<String>,
    wcet: Time,
    release: Option<Time>,
    deadline: Option<Time>,
}

impl Subtask {
    /// Creates a subtask with the given worst-case execution time.
    pub fn new(wcet: Time) -> Self {
        Subtask {
            name: None,
            wcet,
            release: None,
            deadline: None,
        }
    }

    /// Sets a human-readable name (used in reports and DOT output).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the given release time (for input subtasks).
    #[must_use]
    pub fn released_at(mut self, release: Time) -> Self {
        self.release = Some(release);
        self
    }

    /// Sets the given absolute end-to-end deadline (for output subtasks).
    #[must_use]
    pub fn due_at(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The worst-case execution time cᵢ.
    #[inline]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// The given release time, if this subtask has one.
    #[inline]
    pub fn release(&self) -> Option<Time> {
        self.release
    }

    /// The given absolute end-to-end deadline, if this subtask has one.
    #[inline]
    pub fn deadline(&self) -> Option<Time> {
        self.deadline
    }

    /// The human-readable name, if one was set.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Sets or clears the release time in place.
    ///
    /// Useful when anchoring inputs after the graph structure is known (the
    /// workload generators set end-to-end deadlines this way once the total
    /// workload has been computed).
    #[inline]
    pub fn set_release(&mut self, release: Option<Time>) {
        self.release = release;
    }

    /// Sets or clears the absolute end-to-end deadline in place.
    #[inline]
    pub fn set_deadline(&mut self, deadline: Option<Time>) {
        self.deadline = deadline;
    }

    /// Sets the worst-case execution time in place.
    ///
    /// The new value is validated the same way [`TaskGraphBuilder::build`]
    /// validates original WCETs — a rebuilt graph rejects non-positive
    /// values — so delta application (perturbing one node's cᵢ) can edit a
    /// cloned subtask without round-tripping through the constructor.
    #[inline]
    pub fn set_wcet(&mut self, wcet: Time) {
        self.wcet = wcet;
    }
}

/// A precedence edge carrying a message of `items` data items from `src` to
/// `dst` (the communication subtask χ of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    src: SubtaskId,
    dst: SubtaskId,
    items: u64,
}

impl Edge {
    /// The producing subtask.
    #[inline]
    pub fn src(self) -> SubtaskId {
        self.src
    }

    /// The consuming subtask.
    #[inline]
    pub fn dst(self) -> SubtaskId {
        self.dst
    }

    /// The maximum message size in data items (mᵢⱼ).
    #[inline]
    pub fn items(self) -> u64 {
        self.items
    }
}

/// An immutable, validated task graph.
///
/// Construct one through [`TaskGraph::builder`]. A valid graph is a non-empty
/// DAG where every input subtask has a release time and every output subtask
/// has an end-to-end deadline.
///
/// # Examples
///
/// ```
/// use taskgraph::{Subtask, TaskGraph, Time};
///
/// # fn main() -> Result<(), taskgraph::GraphError> {
/// let mut b = TaskGraph::builder();
/// let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
/// let c = b.add_subtask(Subtask::new(Time::new(20)).due_at(Time::new(100)));
/// b.add_edge(a, c, 15)?;
/// let graph = b.build()?;
/// assert_eq!(graph.subtask_count(), 2);
/// assert_eq!(graph.inputs(), &[a]);
/// assert_eq!(graph.outputs(), &[c]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    nodes: Vec<Subtask>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node, ordered by insertion.
    succ: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node, ordered by insertion.
    pred: Vec<Vec<EdgeId>>,
    /// Node ids in a topological order.
    topo: Vec<SubtaskId>,
    inputs: Vec<SubtaskId>,
    outputs: Vec<SubtaskId>,
}

impl TaskGraph {
    /// Returns a builder for incrementally constructing a graph.
    pub fn builder() -> TaskGraphBuilder {
        TaskGraphBuilder::new()
    }

    /// Number of subtasks (nodes).
    #[inline]
    pub fn subtask_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of precedence edges (messages).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The subtask with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[inline]
    pub fn subtask(&self, id: SubtaskId) -> &Subtask {
        &self.nodes[id.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Updates subtask attributes in place, then re-checks the attribute
    /// invariants ([`TaskGraphBuilder::build`] enforces on construction):
    /// every WCET positive, every input released, every output
    /// deadline-anchored. The graph's structure — and therefore its
    /// derived adjacency, topological order and input/output sets — is
    /// untouched, which is what makes the in-place form sound: only the
    /// attribute invariants can be violated by `f`.
    ///
    /// This is the cheap path for attribute-only graph amendments
    /// (WCET re-estimation, anchor shifts), avoiding a full rebuild.
    ///
    /// # Errors
    ///
    /// Returns the same [`GraphError`] a full rebuild would report for the
    /// violated invariant. The graph is left with `f` applied even on
    /// error; callers treating the update as a transaction should apply it
    /// to a clone.
    pub fn try_update_subtasks<F>(&mut self, f: F) -> Result<(), GraphError>
    where
        F: FnOnce(&mut [Subtask]),
    {
        f(&mut self.nodes);
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.wcet.is_positive() {
                return Err(GraphError::NonPositiveWcet(SubtaskId::new(i as u32)));
            }
        }
        for &id in &self.inputs {
            if self.nodes[id.index()].release.is_none() {
                return Err(GraphError::MissingRelease(id));
            }
        }
        for &id in &self.outputs {
            if self.nodes[id.index()].deadline.is_none() {
                return Err(GraphError::MissingDeadline(id));
            }
        }
        Ok(())
    }

    /// Iterates over all subtask ids in insertion order.
    pub fn subtask_ids(&self) -> impl ExactSizeIterator<Item = SubtaskId> + '_ {
        (0..self.nodes.len() as u32).map(SubtaskId::new)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId::new)
    }

    /// Outgoing edges of `id`.
    #[inline]
    pub fn out_edges(&self, id: SubtaskId) -> &[EdgeId] {
        &self.succ[id.index()]
    }

    /// Incoming edges of `id`.
    #[inline]
    pub fn in_edges(&self, id: SubtaskId) -> &[EdgeId] {
        &self.pred[id.index()]
    }

    /// Successor subtasks of `id`.
    pub fn successors(&self, id: SubtaskId) -> impl Iterator<Item = SubtaskId> + '_ {
        self.succ[id.index()]
            .iter()
            .map(|&e| self.edges[e.index()].dst)
    }

    /// Predecessor subtasks of `id`.
    pub fn predecessors(&self, id: SubtaskId) -> impl Iterator<Item = SubtaskId> + '_ {
        self.pred[id.index()]
            .iter()
            .map(|&e| self.edges[e.index()].src)
    }

    /// Input subtasks (no predecessors), in insertion order.
    #[inline]
    pub fn inputs(&self) -> &[SubtaskId] {
        &self.inputs
    }

    /// Output subtasks (no successors), in insertion order.
    #[inline]
    pub fn outputs(&self) -> &[SubtaskId] {
        &self.outputs
    }

    /// Subtask ids in a topological order (predecessors before successors).
    #[inline]
    pub fn topological_order(&self) -> &[SubtaskId] {
        &self.topo
    }

    /// Returns `true` if `id` is an input subtask.
    #[inline]
    pub fn is_input(&self, id: SubtaskId) -> bool {
        self.pred[id.index()].is_empty()
    }

    /// Returns `true` if `id` is an output subtask.
    #[inline]
    pub fn is_output(&self, id: SubtaskId) -> bool {
        self.succ[id.index()].is_empty()
    }
}

/// Incremental builder for [`TaskGraph`] (see `C-BUILDER`).
///
/// Subtasks are added first, then edges between them; [`build`] validates the
/// result (acyclicity, anchored inputs/outputs, positive execution times).
///
/// [`build`]: TaskGraphBuilder::build
#[derive(Debug, Default, Clone)]
pub struct TaskGraphBuilder {
    nodes: Vec<Subtask>,
    edges: Vec<Edge>,
}

impl TaskGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TaskGraphBuilder::default()
    }

    /// Adds a subtask and returns its id.
    pub fn add_subtask(&mut self, subtask: Subtask) -> SubtaskId {
        let id = SubtaskId::new(self.nodes.len() as u32);
        self.nodes.push(subtask);
        id
    }

    /// Adds a precedence edge carrying a message of `items` data items.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownSubtask`] if either endpoint has not been
    /// added, [`GraphError::SelfLoop`] if `src == dst`,
    /// [`GraphError::DuplicateEdge`] if the pair is already connected, and
    /// [`GraphError::EmptyMessage`] if `items` is zero.
    pub fn add_edge(
        &mut self,
        src: SubtaskId,
        dst: SubtaskId,
        items: u64,
    ) -> Result<EdgeId, GraphError> {
        if src.index() >= self.nodes.len() {
            return Err(GraphError::UnknownSubtask(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(GraphError::UnknownSubtask(dst));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(GraphError::DuplicateEdge(src, dst));
        }
        let id = EdgeId::new(self.edges.len() as u32);
        if items == 0 {
            return Err(GraphError::EmptyMessage(id));
        }
        self.edges.push(Edge { src, dst, items });
        Ok(id)
    }

    /// Returns `true` if an edge `src → dst` already exists.
    pub fn has_edge(&self, src: SubtaskId, dst: SubtaskId) -> bool {
        self.edges.iter().any(|e| e.src == src && e.dst == dst)
    }

    /// Number of subtasks added so far.
    pub fn subtask_count(&self) -> usize {
        self.nodes.len()
    }

    /// Mutable access to a subtask added earlier (e.g. to set a deadline once
    /// the total workload is known).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder.
    pub fn subtask_mut(&mut self, id: SubtaskId) -> &mut Subtask {
        &mut self.nodes[id.index()]
    }

    /// Read access to a subtask added earlier.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder.
    pub fn subtask(&self, id: SubtaskId) -> &Subtask {
        &self.nodes[id.index()]
    }

    /// Current out-degree of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder.
    pub fn out_degree(&self, id: SubtaskId) -> usize {
        assert!(id.index() < self.nodes.len(), "unknown subtask {id}");
        self.edges.iter().filter(|e| e.src == id).count()
    }

    /// Current in-degree of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder.
    pub fn in_degree(&self, id: SubtaskId) -> usize {
        assert!(id.index() < self.nodes.len(), "unknown subtask {id}");
        self.edges.iter().filter(|e| e.dst == id).count()
    }

    /// The execution-time length of the longest path through the subtasks
    /// added so far, or `None` if the current edges contain a cycle.
    ///
    /// Workload generators use this to anchor end-to-end deadlines that are
    /// proportional to the critical-path workload before the graph is
    /// finalized.
    pub fn longest_path_work(&self) -> Option<Time> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            succ[e.src.index()].push(e.dst.index());
            indeg[e.dst.index()] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut best: Vec<Time> = (0..n).map(|v| self.nodes[v].wcet).collect();
        let mut head = 0;
        let mut overall = Time::ZERO;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            overall = overall.max(best[v]);
            for &w in &succ[v] {
                best[w] = best[w].max(best[v] + self.nodes[w].wcet);
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if queue.len() != n {
            return None;
        }
        Some(overall)
    }

    /// Validates and finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty, cyclic, a subtask has a
    /// non-positive execution time, an input lacks a release time, or an
    /// output lacks a deadline.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.wcet.is_positive() {
                return Err(GraphError::NonPositiveWcet(SubtaskId::new(i as u32)));
            }
        }

        let n = self.nodes.len();
        let mut succ: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut pred: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId::new(i as u32);
            succ[e.src.index()].push(id);
            pred[e.dst.index()].push(id);
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<usize> = pred.iter().map(Vec::len).collect();
        let mut queue: Vec<SubtaskId> = (0..n as u32)
            .map(SubtaskId::new)
            .filter(|id| indeg[id.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            topo.push(v);
            for &e in &succ[v.index()] {
                let w = self.edges[e.index()].dst;
                indeg[w.index()] -= 1;
                if indeg[w.index()] == 0 {
                    queue.push(w);
                }
            }
        }
        if topo.len() != n {
            let offender = (0..n as u32)
                .map(SubtaskId::new)
                .find(|id| indeg[id.index()] > 0)
                .expect("cycle implies a node with remaining in-degree");
            return Err(GraphError::Cycle(offender));
        }

        let inputs: Vec<SubtaskId> = (0..n as u32)
            .map(SubtaskId::new)
            .filter(|id| pred[id.index()].is_empty())
            .collect();
        let outputs: Vec<SubtaskId> = (0..n as u32)
            .map(SubtaskId::new)
            .filter(|id| succ[id.index()].is_empty())
            .collect();

        for &id in &inputs {
            if self.nodes[id.index()].release.is_none() {
                return Err(GraphError::MissingRelease(id));
            }
        }
        for &id in &outputs {
            if self.nodes[id.index()].deadline.is_none() {
                return Err(GraphError::MissingDeadline(id));
            }
        }

        Ok(TaskGraph {
            nodes: self.nodes,
            edges: self.edges,
            succ,
            pred,
            topo,
            inputs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(wcet: i64) -> Subtask {
        Subtask::new(Time::new(wcet))
    }

    fn anchored(wcet: i64) -> Subtask {
        node(wcet).released_at(Time::ZERO).due_at(Time::new(1000))
    }

    #[test]
    fn builds_simple_chain() {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(node(10).released_at(Time::ZERO));
        let c = b.add_subtask(node(20));
        let d = b.add_subtask(node(30).due_at(Time::new(200)));
        b.add_edge(a, c, 5).unwrap();
        b.add_edge(c, d, 5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.subtask_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.inputs(), &[a]);
        assert_eq!(g.outputs(), &[d]);
        assert_eq!(g.topological_order(), &[a, c, d]);
        assert!(g.is_input(a) && !g.is_input(c));
        assert!(g.is_output(d) && !g.is_output(c));
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.edge(EdgeId::new(0)).items(), 5);
    }

    #[test]
    fn set_wcet_edits_in_place() {
        let mut s = anchored(10);
        assert_eq!(s.wcet(), Time::new(10));
        s.set_wcet(Time::new(25));
        assert_eq!(s.wcet(), Time::new(25));
        // Anchors are untouched by a WCET edit.
        assert_eq!(s.release(), Some(Time::ZERO));
        assert_eq!(s.deadline(), Some(Time::new(1000)));
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(TaskGraph::builder().build(), Err(GraphError::Empty));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = TaskGraph::builder();
        let x = b.add_subtask(anchored(1));
        let y = b.add_subtask(anchored(1));
        b.add_edge(x, y, 1).unwrap();
        b.add_edge(y, x, 1).unwrap();
        assert!(matches!(b.build(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut b = TaskGraph::builder();
        let x = b.add_subtask(anchored(1));
        let y = b.add_subtask(anchored(1));
        assert_eq!(b.add_edge(x, x, 1), Err(GraphError::SelfLoop(x)));
        b.add_edge(x, y, 1).unwrap();
        assert_eq!(b.add_edge(x, y, 2), Err(GraphError::DuplicateEdge(x, y)));
        assert!(b.has_edge(x, y));
        assert!(!b.has_edge(y, x));
    }

    #[test]
    fn rejects_unknown_endpoints_and_zero_items() {
        let mut b = TaskGraph::builder();
        let x = b.add_subtask(anchored(1));
        let ghost = SubtaskId::new(99);
        assert_eq!(
            b.add_edge(x, ghost, 1),
            Err(GraphError::UnknownSubtask(ghost))
        );
        assert_eq!(
            b.add_edge(ghost, x, 1),
            Err(GraphError::UnknownSubtask(ghost))
        );
        let y = b.add_subtask(anchored(1));
        assert!(matches!(
            b.add_edge(x, y, 0),
            Err(GraphError::EmptyMessage(_))
        ));
    }

    #[test]
    fn rejects_missing_anchors() {
        let mut b = TaskGraph::builder();
        let x = b.add_subtask(node(1).due_at(Time::new(10)));
        let _ = x;
        assert!(matches!(b.build(), Err(GraphError::MissingRelease(_))));

        let mut b = TaskGraph::builder();
        let _ = b.add_subtask(node(1).released_at(Time::ZERO));
        assert!(matches!(b.build(), Err(GraphError::MissingDeadline(_))));
    }

    #[test]
    fn rejects_non_positive_wcet() {
        let mut b = TaskGraph::builder();
        b.add_subtask(anchored(0));
        assert!(matches!(b.build(), Err(GraphError::NonPositiveWcet(_))));
    }

    #[test]
    fn topological_order_respects_edges() {
        // Diamond: a -> {b, c} -> d
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(node(1).released_at(Time::ZERO));
        let x = b.add_subtask(node(1));
        let y = b.add_subtask(node(1));
        let d = b.add_subtask(node(1).due_at(Time::new(100)));
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(a, y, 1).unwrap();
        b.add_edge(x, d, 1).unwrap();
        b.add_edge(y, d, 1).unwrap();
        let g = b.build().unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.subtask_count()];
            for (i, &v) in g.topological_order().iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        for e in g.edge_ids().map(|e| g.edge(e)) {
            assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }

    #[test]
    fn builder_mutation_and_degrees() {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(node(5).released_at(Time::ZERO));
        let z = b.add_subtask(node(5));
        b.add_edge(a, z, 3).unwrap();
        assert_eq!(b.out_degree(a), 1);
        assert_eq!(b.in_degree(z), 1);
        assert_eq!(b.subtask_count(), 2);
        // Deadlines can be anchored after the structure is known.
        b.subtask_mut(z).set_deadline(Some(Time::new(500)));
        let g = b.build().unwrap();
        assert_eq!(g.subtask(z).deadline(), Some(Time::new(500)));
        assert_eq!(g.subtask(a).name(), None);
    }

    #[test]
    fn named_subtasks_round_trip() {
        let s = Subtask::new(Time::new(3)).named("sensor");
        assert_eq!(s.name(), Some("sensor"));
    }
}
