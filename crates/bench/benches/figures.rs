//! Benchmarks that regenerate every figure of the paper's evaluation.
//!
//! Each benchmark runs the figure's full pipeline — workload generation,
//! deadline distribution, list scheduling and lateness aggregation — at a
//! reduced replication count so `cargo bench` stays fast. The full-scale
//! regeneration (128 replications, sizes 2–16) is
//! `cargo run --release -p feast --bin figures -- all`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use feast::experiments::{
    all_experiments, ext_baselines, ext_bus, ext_ccr, ext_locality, ext_met, ext_par,
    ext_placement, ext_shapes, ext_topo, fig2, fig3, fig4, fig5, ExperimentConfig,
};

fn bench_cfg() -> ExperimentConfig {
    ExperimentConfig {
        replications: 4,
        base_seed: 0xFEA57,
        system_sizes: vec![2, 8, 16],
        threads: 1,
    }
}

fn figures(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig2_bst_metrics", |b| {
        b.iter(|| fig2(black_box(&cfg)).expect("fig2 runs"))
    });
    group.bench_function("fig3_surplus_factor", |b| {
        b.iter(|| fig3(black_box(&cfg)).expect("fig3 runs"))
    });
    group.bench_function("fig4_threshold", |b| {
        b.iter(|| fig4(black_box(&cfg)).expect("fig4 runs"))
    });
    group.bench_function("fig5_adapt_vs_pure", |b| {
        b.iter(|| fig5(black_box(&cfg)).expect("fig5 runs"))
    });
    group.finish();
}

fn extensions(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);

    group.bench_function("ext_met", |b| {
        b.iter(|| ext_met(black_box(&cfg)).expect("ext-met runs"))
    });
    group.bench_function("ext_par", |b| {
        b.iter(|| ext_par(black_box(&cfg)).expect("ext-par runs"))
    });
    group.bench_function("ext_ccr", |b| {
        b.iter(|| ext_ccr(black_box(&cfg)).expect("ext-ccr runs"))
    });
    group.bench_function("ext_topo", |b| {
        b.iter(|| ext_topo(black_box(&cfg)).expect("ext-topo runs"))
    });
    group.bench_function("ext_shapes", |b| {
        b.iter(|| ext_shapes(black_box(&cfg)).expect("ext-shapes runs"))
    });
    group.bench_function("ext_locality", |b| {
        b.iter(|| ext_locality(black_box(&cfg)).expect("ext-locality runs"))
    });
    group.bench_function("ext_bus", |b| {
        b.iter(|| ext_bus(black_box(&cfg)).expect("ext-bus runs"))
    });
    group.bench_function("ext_baselines", |b| {
        b.iter(|| ext_baselines(black_box(&cfg)).expect("ext-baselines runs"))
    });
    group.bench_function("ext_placement", |b| {
        b.iter(|| ext_placement(black_box(&cfg)).expect("ext-placement runs"))
    });
    group.finish();
}

fn registry_sanity(c: &mut Criterion) {
    // Keep the benchmark list in sync with the experiment registry: if an
    // experiment is added without a bench, this assertion fires at bench
    // time.
    assert_eq!(all_experiments().len(), 13, "update figures.rs benches");
    let _ = c;
}

criterion_group!(benches, figures, extensions, registry_sanity);
criterion_main!(benches);
