//! End-to-end scheduling benchmark over the paper's operating points:
//! one paper-size task graph scheduled on {2, 8, 32} processors under
//! both bus models. Complements `scheduler.rs` (which varies policies at
//! a fixed size) by sweeping the size × contention grid the experiments
//! actually exercise.
//!
//! Two axes isolate the hot-path optimisations individually:
//! `scheduling/{delay,contention}` measures the estimate-once dispatch
//! (under delay the bus is never snapshotted at all, so the delay/
//! contention gap is the cost of bus simulation), and
//! `scheduling/workspace/{fresh,reused}` measures the allocation savings
//! of holding a [`SchedWorkspace`] across calls, as the runner's worker
//! threads do.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use platform::{Pinning, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{BusModel, ListScheduler, SchedWorkspace};
use slicing::{DeadlineAssignment, Slicer};
use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
use taskgraph::TaskGraph;

fn prepared(nproc: usize) -> (TaskGraph, Platform, DeadlineAssignment) {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let mut rng = StdRng::seed_from_u64(11);
    let graph = generate(&spec, &mut rng).expect("paper spec is valid");
    let platform = Platform::paper(nproc).expect("valid platform");
    let assignment = Slicer::ast_adapt()
        .distribute(&graph, &platform)
        .expect("distribution succeeds");
    (graph, platform, assignment)
}

fn scheduling_grid(c: &mut Criterion) {
    for (bus_name, bus) in [
        ("delay", BusModel::Delay),
        ("contention", BusModel::Contention),
    ] {
        let mut group = c.benchmark_group(format!("scheduling/{bus_name}"));
        for nproc in [2usize, 8, 32] {
            let (graph, platform, assignment) = prepared(nproc);
            group.bench_with_input(BenchmarkId::from_parameter(nproc), &nproc, |b, _| {
                let scheduler = ListScheduler::new().with_bus_model(bus);
                let mut ws = SchedWorkspace::new();
                b.iter(|| {
                    scheduler
                        .schedule_with(
                            black_box(&graph),
                            black_box(&platform),
                            black_box(&assignment),
                            &Pinning::new(),
                            &mut ws,
                        )
                        .unwrap()
                })
            });
        }
        group.finish();
    }
}

fn workspace_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling/workspace");
    for nproc in [8usize, 32] {
        let (graph, platform, assignment) = prepared(nproc);
        let scheduler = ListScheduler::new().with_bus_model(BusModel::Contention);

        // Fresh buffers every call: what `schedule` does internally.
        group.bench_with_input(BenchmarkId::new("fresh", nproc), &nproc, |b, _| {
            b.iter(|| {
                scheduler
                    .schedule(
                        black_box(&graph),
                        black_box(&platform),
                        black_box(&assignment),
                        &Pinning::new(),
                    )
                    .unwrap()
            })
        });

        // One long-lived workspace: the runner's per-worker steady state.
        group.bench_with_input(BenchmarkId::new("reused", nproc), &nproc, |b, _| {
            let mut ws = SchedWorkspace::new();
            b.iter(|| {
                scheduler
                    .schedule_with(
                        black_box(&graph),
                        black_box(&platform),
                        black_box(&assignment),
                        &Pinning::new(),
                        &mut ws,
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, scheduling_grid, workspace_reuse);
criterion_main!(benches);
