//! Micro-benchmarks of the deadline-driven list scheduler: system-size
//! scaling, placement policies and communication models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use platform::{Pinning, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{BusModel, ListScheduler, PlacementPolicy};
use slicing::{DeadlineAssignment, Slicer};
use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
use taskgraph::TaskGraph;

fn prepared(nproc: usize) -> (TaskGraph, Platform, DeadlineAssignment) {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let mut rng = StdRng::seed_from_u64(7);
    let graph = generate(&spec, &mut rng).expect("paper spec is valid");
    let platform = Platform::paper(nproc).expect("valid platform");
    let assignment = Slicer::ast_adapt()
        .distribute(&graph, &platform)
        .expect("distribution succeeds");
    (graph, platform, assignment)
}

fn system_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/system_size");
    for nproc in [2usize, 4, 8, 16] {
        let (graph, platform, assignment) = prepared(nproc);
        group.bench_with_input(BenchmarkId::from_parameter(nproc), &nproc, |b, _| {
            let scheduler = ListScheduler::new();
            b.iter(|| {
                scheduler
                    .schedule(
                        black_box(&graph),
                        black_box(&platform),
                        black_box(&assignment),
                        &Pinning::new(),
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn placement_policies(c: &mut Criterion) {
    let (graph, platform, assignment) = prepared(4);
    let mut group = c.benchmark_group("scheduler/placement");
    for (name, policy) in [
        ("insertion", PlacementPolicy::Insertion),
        ("append", PlacementPolicy::Append),
    ] {
        group.bench_function(name, |b| {
            let scheduler = ListScheduler::new().with_placement(policy);
            b.iter(|| {
                scheduler
                    .schedule(&graph, &platform, black_box(&assignment), &Pinning::new())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bus_models(c: &mut Criterion) {
    let (graph, platform, assignment) = prepared(4);
    let mut group = c.benchmark_group("scheduler/bus");
    for (name, bus) in [
        ("delay", BusModel::Delay),
        ("contention", BusModel::Contention),
    ] {
        group.bench_function(name, |b| {
            let scheduler = ListScheduler::new().with_bus_model(bus);
            b.iter(|| {
                scheduler
                    .schedule(&graph, &platform, black_box(&assignment), &Pinning::new())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, system_sizes, placement_policies, bus_models);
criterion_main!(benches);
