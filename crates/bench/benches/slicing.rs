//! Micro-benchmarks of the deadline-distribution algorithm: each metric and
//! estimation strategy over increasing workload sizes, plus an ablation of
//! the critical-path search cost.
//!
//! §8 of the paper states AST's complexity is O(n³) for n subtasks, equal
//! to BST's up to a constant; the `scaling` group lets that growth be
//! checked empirically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use platform::Platform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing::{CommEstimate, MetricKind, Slicer};
use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
use taskgraph::TaskGraph;

fn paper_graph(seed: u64) -> TaskGraph {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&spec, &mut rng).expect("paper spec is valid")
}

fn sized_graph(subtasks: usize, seed: u64) -> TaskGraph {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet)
        .with_subtasks(subtasks..=subtasks)
        .with_depth(subtasks / 5..=subtasks / 5 + 2);
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&spec, &mut rng).expect("spec is valid")
}

fn metrics(c: &mut Criterion) {
    let graph = paper_graph(1);
    let platform = Platform::paper(8).expect("valid platform");
    let mut group = c.benchmark_group("slicing/metrics");
    for (name, metric) in [
        ("norm", MetricKind::norm()),
        ("pure", MetricKind::pure()),
        ("thres", MetricKind::thres(1.0)),
        ("adapt", MetricKind::adapt()),
    ] {
        group.bench_function(name, |b| {
            let slicer = Slicer::new(metric);
            b.iter(|| {
                slicer
                    .distribute(black_box(&graph), black_box(&platform))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn estimates(c: &mut Criterion) {
    let graph = paper_graph(2);
    let platform = Platform::paper(8).expect("valid platform");
    let mut group = c.benchmark_group("slicing/estimates");
    for (name, estimate) in [("ccne", CommEstimate::Ccne), ("ccaa", CommEstimate::Ccaa)] {
        group.bench_function(name, |b| {
            let slicer = Slicer::bst_pure().with_estimate(estimate.clone());
            b.iter(|| {
                slicer
                    .distribute(black_box(&graph), black_box(&platform))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn scaling(c: &mut Criterion) {
    let platform = Platform::paper(8).expect("valid platform");
    let mut group = c.benchmark_group("slicing/scaling");
    group.sample_size(20);
    for n in [25usize, 50, 100, 200] {
        let graph = sized_graph(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            let slicer = Slicer::ast_adapt();
            b.iter(|| {
                slicer
                    .distribute(black_box(g), black_box(&platform))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, metrics, estimates, scaling);
criterion_main!(benches);
